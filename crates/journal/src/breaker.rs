//! Journal circuit breaker: fail fast on a dead disk instead of letting
//! every publish pay an I/O error on the executor path.
//!
//! The breaker is shared by every [`crate::SessionJournal`] of one
//! [`crate::Journal`]: journal write/fsync failures are a property of the
//! directory's backing device, not of one session. It follows the classic
//! three-state protocol:
//!
//! * **Closed** — writes flow to disk. `trip_after` *consecutive* failures
//!   trip it open (one success resets the streak).
//! * **Open** — appends are suppressed without touching the disk; the
//!   affected sessions keep publishing in memory only (`durable: false`).
//!   After `probe_after` has elapsed, exactly one append is admitted as a
//!   half-open probe.
//! * **Half-open** — the probe append is in flight. Success closes the
//!   breaker (journaling re-attaches); failure re-opens it and restarts
//!   the probe timer. Concurrent appends during the probe stay suppressed.
//!
//! Setting `probe_after` to [`Duration::ZERO`] makes every transition a
//! pure function of the append/outcome sequence — the deterministic mode
//! the chaos soaks rely on for byte-for-byte reproducible summaries.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Tuning knobs of one [`CircuitBreaker`].
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive write/fsync failures that trip the breaker open.
    pub trip_after: u32,
    /// How long the breaker stays open before admitting one half-open
    /// probe. [`Duration::ZERO`] probes on the very next append
    /// (deterministic; used by the chaos soaks).
    pub probe_after: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            trip_after: 3,
            probe_after: Duration::from_millis(250),
        }
    }
}

/// Where the breaker currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Writes flow to disk.
    Closed,
    /// Writes are suppressed; waiting to probe.
    Open,
    /// One probe append is in flight.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase label (metric/JSON value).
    pub fn as_str(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }

    fn to_tag(self) -> u8 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        }
    }

    fn from_tag(tag: u8) -> Self {
        match tag {
            1 => BreakerState::Open,
            2 => BreakerState::HalfOpen,
            _ => BreakerState::Closed,
        }
    }
}

/// What [`CircuitBreaker::admit`] decided for one append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteAdmit {
    /// Breaker closed: perform the write normally.
    Write,
    /// Breaker half-open: perform the write as the recovery probe.
    Probe,
    /// Breaker open: skip the disk entirely; the record is lost.
    Suppress,
}

/// State transition reported by [`CircuitBreaker::record_outcome`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerEvent {
    /// No transition.
    None,
    /// Closed → Open: the consecutive-failure threshold was reached.
    Tripped,
    /// Half-open → Closed: the probe succeeded; journaling re-attaches.
    Recovered,
    /// Half-open → Open: the probe failed; back to suppressing.
    Reopened,
}

struct BreakerInner {
    consecutive_failures: u32,
    /// When the breaker last entered `Open` (or re-opened).
    opened_at: Option<Instant>,
    /// A half-open probe has been admitted and not yet resolved.
    probe_in_flight: bool,
}

/// Shared, thread-safe journal circuit breaker. See the module docs for
/// the protocol.
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: Mutex<BreakerInner>,
    /// Mirror of the state for lock-free reads (`/healthz`, pollers).
    state_tag: AtomicU8,
    trips: AtomicU64,
    recoveries: AtomicU64,
}

impl CircuitBreaker {
    /// A closed breaker with `config`.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            inner: Mutex::new(BreakerInner {
                consecutive_failures: 0,
                opened_at: None,
                probe_in_flight: false,
            }),
            state_tag: AtomicU8::new(BreakerState::Closed.to_tag()),
            trips: AtomicU64::new(0),
            recoveries: AtomicU64::new(0),
        }
    }

    /// The breaker's configuration.
    pub fn config(&self) -> &BreakerConfig {
        &self.config
    }

    /// Current state (lock-free; may be momentarily stale under races).
    pub fn state(&self) -> BreakerState {
        BreakerState::from_tag(self.state_tag.load(Ordering::Acquire))
    }

    /// Times the breaker has tripped Closed → Open (re-opens after a
    /// failed probe are not counted as new trips).
    pub fn trips(&self) -> u64 {
        self.trips.load(Ordering::Relaxed)
    }

    /// Times a half-open probe succeeded and the breaker closed again.
    pub fn recoveries(&self) -> u64 {
        self.recoveries.load(Ordering::Relaxed)
    }

    /// Decide the fate of one append. Every call must be paired with a
    /// [`record_outcome`](Self::record_outcome) unless it returned
    /// [`WriteAdmit::Suppress`].
    pub fn admit(&self) -> WriteAdmit {
        let mut inner = self.inner.lock().expect("breaker poisoned");
        match self.state() {
            BreakerState::Closed => WriteAdmit::Write,
            BreakerState::HalfOpen => WriteAdmit::Suppress,
            BreakerState::Open => {
                let due = match inner.opened_at {
                    Some(at) => at.elapsed() >= self.config.probe_after,
                    None => true,
                };
                if due && !inner.probe_in_flight {
                    inner.probe_in_flight = true;
                    self.set_state(BreakerState::HalfOpen);
                    WriteAdmit::Probe
                } else {
                    WriteAdmit::Suppress
                }
            }
        }
    }

    /// Report how an admitted append went. Returns the state transition,
    /// if any, so the caller can log/count it exactly once.
    pub fn record_outcome(&self, admit: WriteAdmit, ok: bool) -> BreakerEvent {
        let mut inner = self.inner.lock().expect("breaker poisoned");
        match admit {
            WriteAdmit::Suppress => BreakerEvent::None,
            WriteAdmit::Probe => {
                inner.probe_in_flight = false;
                if ok {
                    inner.consecutive_failures = 0;
                    inner.opened_at = None;
                    self.set_state(BreakerState::Closed);
                    self.recoveries.fetch_add(1, Ordering::Relaxed);
                    BreakerEvent::Recovered
                } else {
                    inner.opened_at = Some(Instant::now());
                    self.set_state(BreakerState::Open);
                    BreakerEvent::Reopened
                }
            }
            WriteAdmit::Write => {
                if ok {
                    inner.consecutive_failures = 0;
                    BreakerEvent::None
                } else {
                    inner.consecutive_failures += 1;
                    if self.state() == BreakerState::Closed
                        && inner.consecutive_failures >= self.config.trip_after.max(1)
                    {
                        inner.opened_at = Some(Instant::now());
                        self.set_state(BreakerState::Open);
                        self.trips.fetch_add(1, Ordering::Relaxed);
                        BreakerEvent::Tripped
                    } else {
                        BreakerEvent::None
                    }
                }
            }
        }
    }

    fn set_state(&self, state: BreakerState) {
        self.state_tag.store(state.to_tag(), Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instant_probe() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            trip_after: 3,
            probe_after: Duration::ZERO,
        })
    }

    #[test]
    fn trips_after_consecutive_failures_only() {
        let b = instant_probe();
        // Interleaved success resets the streak.
        assert_eq!(b.record_outcome(b.admit(), false), BreakerEvent::None);
        assert_eq!(b.record_outcome(b.admit(), false), BreakerEvent::None);
        assert_eq!(b.record_outcome(b.admit(), true), BreakerEvent::None);
        assert_eq!(b.record_outcome(b.admit(), false), BreakerEvent::None);
        assert_eq!(b.record_outcome(b.admit(), false), BreakerEvent::None);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.record_outcome(b.admit(), false), BreakerEvent::Tripped);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn full_open_half_open_closed_cycle() {
        let b = instant_probe();
        for _ in 0..3 {
            b.record_outcome(b.admit(), false);
        }
        assert_eq!(b.state(), BreakerState::Open);
        // Zero probe delay: the next append is the probe.
        let admit = b.admit();
        assert_eq!(admit, WriteAdmit::Probe);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Concurrent appends during the probe stay suppressed.
        assert_eq!(b.admit(), WriteAdmit::Suppress);
        // Failed probe re-opens without counting a new trip.
        assert_eq!(b.record_outcome(admit, false), BreakerEvent::Reopened);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        // Successful probe closes and counts a recovery.
        let admit = b.admit();
        assert_eq!(admit, WriteAdmit::Probe);
        assert_eq!(b.record_outcome(admit, true), BreakerEvent::Recovered);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.recoveries(), 1);
        assert_eq!(b.admit(), WriteAdmit::Write);
    }

    #[test]
    fn open_with_long_probe_delay_suppresses() {
        let b = CircuitBreaker::new(BreakerConfig {
            trip_after: 1,
            probe_after: Duration::from_secs(3600),
        });
        assert_eq!(b.record_outcome(b.admit(), false), BreakerEvent::Tripped);
        assert_eq!(b.admit(), WriteAdmit::Suppress);
        assert_eq!(b.admit(), WriteAdmit::Suppress);
        assert_eq!(b.state(), BreakerState::Open);
    }
}
