//! The write side: per-session append-only journals under one directory,
//! with segment rotation, a configurable fsync policy, a retention budget,
//! and a crash-point seam for deterministic process-death simulation.

use crate::breaker::{BreakerConfig, BreakerEvent, BreakerState, CircuitBreaker, WriteAdmit};
use crate::metrics::JournalMetrics;
use crate::record::{Record, SegmentHeader, SessionMeta, TerminalRecord, FORMAT_VERSION};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// When journal appends are forced to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Never fsync (OS flush order only). Fastest; a crash can lose
    /// everything since the last kernel writeback.
    Never,
    /// Fsync after every N snapshot records (and always on terminal).
    EveryN(u32),
    /// Fsync only on terminal-state and clean-shutdown records. The
    /// default: mid-run snapshots are reconstructible telemetry, terminal
    /// states are the contract.
    OnTerminal,
}

/// Crash-point seam: lets a chaos harness declare, per session, the exact
/// journal byte offset at which the writing process "dies". The record
/// crossing the boundary is torn mid-write — exactly what a real crash
/// leaves — and every later append (terminal record and clean-shutdown
/// sentinel included) is silently lost.
pub trait WriteCrashPoint: Send + Sync {
    /// Total journal bytes (headers included) after which writes are lost
    /// for the session named `session_key`. `None` = never crashes.
    fn crash_after_bytes(&self, session_key: &str) -> Option<u64>;
}

/// Write-fault seam: lets a chaos harness fail individual journal appends
/// as if the backing device returned an I/O error. Unlike
/// [`WriteCrashPoint`] (which silently loses writes, simulating process
/// death), an injected fault surfaces as a real `Err` on the append path —
/// the input the circuit breaker is built to absorb.
pub trait JournalFaultInjector: Send + Sync {
    /// Whether the `nth` logical append (0-based, meta record included) of
    /// the session named `session_key` fails with an I/O error.
    fn append_fails(&self, session_key: &str, nth: u64) -> bool;
}

/// Configuration of one [`Journal`].
#[derive(Clone)]
pub struct JournalConfig {
    /// Directory holding every session's segment files.
    pub dir: PathBuf,
    /// Fsync policy for all writers.
    pub fsync: FsyncPolicy,
    /// Rotate a session's segment once it exceeds this many bytes.
    pub segment_max_bytes: u64,
    /// Disk budget: [`Journal::sweep_retention`] deletes oldest
    /// prior-epoch session journals until the directory fits. `None` keeps
    /// everything.
    pub retention_max_bytes: Option<u64>,
    /// Deterministic process-death simulation (chaos testing).
    pub crash: Option<std::sync::Arc<dyn WriteCrashPoint>>,
    /// Deterministic append-failure injection (chaos testing).
    pub fault: Option<std::sync::Arc<dyn JournalFaultInjector>>,
    /// Circuit-breaker tuning for the journal's write path.
    pub breaker: BreakerConfig,
}

impl JournalConfig {
    /// A config with default policy: fsync on terminal, 1 MiB segments,
    /// unbounded retention, no crash faults.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        JournalConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::OnTerminal,
            segment_max_bytes: 1 << 20,
            retention_max_bytes: None,
            crash: None,
            fault: None,
            breaker: BreakerConfig::default(),
        }
    }

    /// Set the fsync policy.
    pub fn with_fsync(mut self, fsync: FsyncPolicy) -> Self {
        self.fsync = fsync;
        self
    }

    /// Set the segment rotation threshold.
    pub fn with_segment_max_bytes(mut self, bytes: u64) -> Self {
        self.segment_max_bytes = bytes.max(crate::record::SEGMENT_HEADER_BYTES + 16);
        self
    }

    /// Set the retention disk budget.
    pub fn with_retention_max_bytes(mut self, bytes: u64) -> Self {
        self.retention_max_bytes = Some(bytes);
        self
    }

    /// Attach a crash-point plan (chaos testing).
    pub fn with_crash(mut self, crash: std::sync::Arc<dyn WriteCrashPoint>) -> Self {
        self.crash = Some(crash);
        self
    }

    /// Attach a write-fault plan (chaos testing).
    pub fn with_write_fault(mut self, fault: std::sync::Arc<dyn JournalFaultInjector>) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Tune the journal write-path circuit breaker.
    pub fn with_breaker(mut self, breaker: BreakerConfig) -> Self {
        self.breaker = breaker;
        self
    }
}

/// Segment file name for `(epoch, session, segment)`. Zero-padded so
/// lexicographic directory order equals numeric order.
pub fn segment_file_name(epoch: u32, session_id: u64, segment: u32) -> String {
    format!("e{epoch:05}-s{session_id:08}-g{segment:04}.lqsj")
}

/// Parse a segment file name back to `(epoch, session, segment)`.
pub fn parse_segment_file_name(name: &str) -> Option<(u32, u64, u32)> {
    let rest = name.strip_prefix('e')?.strip_suffix(".lqsj")?;
    let (epoch, rest) = rest.split_once("-s")?;
    let (session, segment) = rest.split_once("-g")?;
    Some((
        epoch.parse().ok()?,
        session.parse().ok()?,
        segment.parse().ok()?,
    ))
}

/// Result of one retention sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetentionSweep {
    /// Directory size before the sweep.
    pub bytes_before: u64,
    /// Directory size after the sweep.
    pub bytes_after: u64,
    /// Whole session journals deleted.
    pub sessions_deleted: usize,
}

/// One journal directory, shared by every session of one service
/// incarnation. Opening assigns this incarnation the next *epoch* — prior
/// epochs' files are left untouched for recovery to scan.
pub struct Journal {
    config: JournalConfig,
    epoch: u32,
    metrics: Option<JournalMetrics>,
    breaker: Arc<CircuitBreaker>,
}

impl Journal {
    /// Create or reopen the journal directory, claiming the next epoch.
    pub fn open(config: JournalConfig) -> std::io::Result<Journal> {
        std::fs::create_dir_all(&config.dir)?;
        let mut max_epoch = None;
        for entry in std::fs::read_dir(&config.dir)? {
            let entry = entry?;
            if let Some((epoch, _, _)) =
                parse_segment_file_name(&entry.file_name().to_string_lossy())
            {
                max_epoch = Some(max_epoch.map_or(epoch, |m: u32| m.max(epoch)));
            }
        }
        Ok(Journal {
            epoch: max_epoch.map_or(0, |m| m + 1),
            breaker: Arc::new(CircuitBreaker::new(config.breaker)),
            config,
            metrics: None,
        })
    }

    /// Record journal telemetry into `metrics`.
    pub fn with_metrics(mut self, metrics: JournalMetrics) -> Journal {
        self.metrics = Some(metrics);
        self
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.config.dir
    }

    /// This incarnation's epoch.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// The journal's metrics, if attached.
    pub fn metrics(&self) -> Option<&JournalMetrics> {
        self.metrics.as_ref()
    }

    /// The write-path circuit breaker shared by every writer of this
    /// journal (a failing disk is a directory-level property).
    pub fn breaker(&self) -> &Arc<CircuitBreaker> {
        &self.breaker
    }

    /// Open the journal of one session and write its meta record. The
    /// returned writer is `Sync`; hand an `Arc` to the session handle.
    pub fn writer(&self, meta: SessionMeta) -> std::io::Result<SessionJournal> {
        let crash_at = self
            .config
            .crash
            .as_ref()
            .and_then(|c| c.crash_after_bytes(&meta.name));
        let mut w = SessionJournal {
            inner: Mutex::new(WriterInner {
                dir: self.config.dir.clone(),
                epoch: self.epoch,
                session_id: meta.session_id,
                session_key: meta.name.clone(),
                segment: 0,
                file: None,
                seg_bytes: 0,
                total_bytes: 0,
                snapshots_since_fsync: 0,
                crash_at,
                dead: false,
                needs_rotate: false,
                append_index: 0,
                write_errors: 0,
                fault: self.config.fault.clone(),
                fsync_policy: self.config.fsync,
                segment_max_bytes: self.config.segment_max_bytes,
            }),
            metrics: self.metrics.clone(),
            breaker: Arc::clone(&self.breaker),
            lost: AtomicU64::new(0),
        };
        w.open_first_segment(&meta)?;
        Ok(w)
    }

    /// Enforce the retention budget: delete whole prior-epoch session
    /// journals, oldest `(epoch, session)` first, until the directory fits.
    /// The current epoch's files are never deleted (its writers may still
    /// be live). Updates the `lqs_journal_bytes` gauge.
    pub fn sweep_retention(&self) -> std::io::Result<RetentionSweep> {
        use std::collections::BTreeMap;
        // (epoch, session) -> (bytes, files)
        let mut groups: BTreeMap<(u32, u64), (u64, Vec<PathBuf>)> = BTreeMap::new();
        let mut total = 0u64;
        for entry in std::fs::read_dir(&self.config.dir)? {
            let entry = entry?;
            let Some((epoch, session, _)) =
                parse_segment_file_name(&entry.file_name().to_string_lossy())
            else {
                continue;
            };
            let size = entry.metadata()?.len();
            total += size;
            let g = groups.entry((epoch, session)).or_default();
            g.0 += size;
            g.1.push(entry.path());
        }
        let bytes_before = total;
        let mut sessions_deleted = 0usize;
        if let Some(budget) = self.config.retention_max_bytes {
            for ((epoch, _), (bytes, files)) in &groups {
                if total <= budget || *epoch >= self.epoch {
                    break;
                }
                for f in files {
                    std::fs::remove_file(f)?;
                }
                total -= bytes;
                sessions_deleted += 1;
            }
        }
        if let Some(m) = &self.metrics {
            m.set_journal_bytes(total);
        }
        Ok(RetentionSweep {
            bytes_before,
            bytes_after: total,
            sessions_deleted,
        })
    }
}

struct WriterInner {
    dir: PathBuf,
    epoch: u32,
    session_id: u64,
    /// Session name, the key fault injectors address sessions by.
    session_key: String,
    segment: u32,
    file: Option<File>,
    seg_bytes: u64,
    total_bytes: u64,
    snapshots_since_fsync: u32,
    /// Simulated process death: once `total_bytes` reaches this, writes
    /// are torn/lost.
    crash_at: Option<u64>,
    /// True once the simulated crash has fired.
    dead: bool,
    /// Set after a failed append: the segment may end in a torn frame, so
    /// the next admitted write must rotate to a fresh segment before
    /// appending (re-attach never appends after a tear).
    needs_rotate: bool,
    /// Logical appends attempted so far (fault-injection key).
    append_index: u64,
    write_errors: u64,
    fault: Option<std::sync::Arc<dyn JournalFaultInjector>>,
    fsync_policy: FsyncPolicy,
    segment_max_bytes: u64,
}

impl WriterInner {
    /// Write `bytes`, honoring the crash point: a chunk crossing the crash
    /// offset is written only up to it (a torn record), and everything
    /// after is dropped. Returns `Err` only on real I/O failure.
    fn write_chunk(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        if self.dead {
            return Ok(());
        }
        let mut to_write = bytes;
        if let Some(crash_at) = self.crash_at {
            let remaining = crash_at.saturating_sub(self.total_bytes);
            if (bytes.len() as u64) >= remaining {
                to_write = &bytes[..remaining as usize];
                self.dead = true;
            }
        }
        if let Some(file) = &mut self.file {
            file.write_all(to_write)?;
        }
        self.seg_bytes += to_write.len() as u64;
        self.total_bytes += to_write.len() as u64;
        Ok(())
    }

    fn open_segment(&mut self) -> std::io::Result<()> {
        let name = segment_file_name(self.epoch, self.session_id, self.segment);
        let file = OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(self.dir.join(name))?;
        self.file = Some(file);
        self.seg_bytes = 0;
        let header = SegmentHeader {
            version: FORMAT_VERSION,
            epoch: self.epoch,
            session_id: self.session_id,
            segment: self.segment,
        }
        .encode();
        self.write_chunk(&header)
    }

    fn append_frame(&mut self, frame: &[u8]) -> std::io::Result<()> {
        if self.dead {
            self.append_index += 1;
            return Ok(());
        }
        let nth = self.append_index;
        self.append_index += 1;
        if let Some(fault) = &self.fault {
            if fault.append_fails(&self.session_key, nth) {
                return Err(std::io::Error::other(format!(
                    "injected journal write fault (session {}, append {nth})",
                    self.session_key
                )));
            }
        }
        // Rotate before the append if this frame would overflow the
        // segment (never rotate an empty segment — oversized single
        // records just get their own long segment).
        if self.seg_bytes > crate::record::SEGMENT_HEADER_BYTES
            && self.seg_bytes + frame.len() as u64 > self.segment_max_bytes
        {
            self.segment += 1;
            self.open_segment()?;
        }
        self.write_chunk(frame)
    }

    fn fsync(&mut self) -> std::io::Result<Option<f64>> {
        if self.dead {
            return Ok(None);
        }
        if let Some(file) = &self.file {
            let started = Instant::now();
            file.sync_all()?;
            return Ok(Some(started.elapsed().as_secs_f64()));
        }
        Ok(None)
    }
}

/// The append side of one session's journal. All methods are `&self`
/// (internal mutex) so the writer can hang off a shared session handle;
/// I/O errors are absorbed — counted, routed through the journal's shared
/// [`CircuitBreaker`] — because a failing disk must degrade durability,
/// never the query. While the breaker is open, appends are suppressed
/// without touching the disk; a successful half-open probe re-attaches
/// journaling on a fresh segment.
pub struct SessionJournal {
    inner: Mutex<WriterInner>,
    metrics: Option<JournalMetrics>,
    breaker: Arc<CircuitBreaker>,
    /// Logical records lost to failed or suppressed appends. Non-zero
    /// means this session's journal has a gap: `durable: false`.
    lost: AtomicU64,
}

impl SessionJournal {
    fn open_first_segment(&mut self, meta: &SessionMeta) -> std::io::Result<()> {
        let inner = self.inner.get_mut().expect("journal writer poisoned");
        inner.open_segment()?;
        inner.append_frame(&Record::Meta(Box::new(meta.clone())).encode_frame())?;
        Ok(())
    }

    /// Run one append under the breaker. Returns whether the record made
    /// it to the file (regardless of fsync policy).
    fn with_inner(&self, f: impl FnOnce(&mut WriterInner) -> std::io::Result<()>) -> bool {
        let admit = self.breaker.admit();
        if admit == WriteAdmit::Suppress {
            self.lost.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = &self.metrics {
                m.records_suppressed.inc();
            }
            return false;
        }
        let mut inner = self.inner.lock().expect("journal writer poisoned");
        let result = rotate_and_run(&mut inner, f);
        let ok = result.is_ok();
        if result.is_err() {
            inner.needs_rotate = true;
            inner.write_errors += 1;
            self.lost.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = &self.metrics {
                m.write_errors.inc();
            }
        }
        let session_id = inner.session_id;
        drop(inner);
        match self.breaker.record_outcome(admit, ok) {
            BreakerEvent::Tripped => {
                if let Some(m) = &self.metrics {
                    m.breaker_trips.inc();
                    m.set_breaker_state(BreakerState::Open);
                }
                if let Err(e) = &result {
                    eprintln!(
                        "lqs-journal: circuit breaker tripped open after repeated I/O \
                         errors (last: session {session_id}: {e}); journaling suppressed \
                         until a probe succeeds"
                    );
                }
            }
            BreakerEvent::Recovered => {
                if let Some(m) = &self.metrics {
                    m.breaker_recoveries.inc();
                    m.set_breaker_state(BreakerState::Closed);
                }
            }
            BreakerEvent::Reopened => {
                if let Some(m) = &self.metrics {
                    m.set_breaker_state(BreakerState::Open);
                }
            }
            BreakerEvent::None => {}
        }
        ok
    }

    fn record_fsync(&self, seconds: Option<f64>) {
        if let (Some(m), Some(s)) = (&self.metrics, seconds) {
            m.fsync_seconds.observe(s);
        }
    }

    /// Append one published DMV snapshot, fsyncing per policy.
    pub fn append_snapshot(&self, snapshot: &lqs_exec::DmvSnapshot) {
        let frame = Record::Snapshot(snapshot.clone()).encode_frame();
        let mut fsynced = None;
        let ok = self.with_inner(|inner| {
            inner.append_frame(&frame)?;
            if let FsyncPolicy::EveryN(n) = inner.fsync_policy {
                inner.snapshots_since_fsync += 1;
                if inner.snapshots_since_fsync >= n.max(1) {
                    inner.snapshots_since_fsync = 0;
                    fsynced = inner.fsync()?;
                }
            }
            Ok(())
        });
        self.record_fsync(fsynced);
        if let (Some(m), true) = (&self.metrics, ok) {
            m.records_appended.inc();
        }
    }

    /// Append the terminal-state record and force it to disk (any policy
    /// except `Never`) — the terminal state is the recovery contract.
    pub fn append_terminal(&self, terminal: &TerminalRecord) {
        let frame = Record::Terminal(terminal.clone()).encode_frame();
        let mut fsynced = None;
        let ok = self.with_inner(|inner| {
            inner.append_frame(&frame)?;
            if inner.fsync_policy != FsyncPolicy::Never {
                fsynced = inner.fsync()?;
            }
            Ok(())
        });
        self.record_fsync(fsynced);
        if let (Some(m), true) = (&self.metrics, ok) {
            m.records_appended.inc();
        }
    }

    /// Append a watchdog alert annotation. Fsyncs per the snapshot policy's
    /// spirit: alerts are diagnostics, not the recovery contract, so they
    /// ride the next forced flush rather than forcing one themselves.
    pub fn append_alert(&self, alert: &crate::record::AlertRecord) {
        let frame = Record::Alert(alert.clone()).encode_frame();
        let ok = self.with_inner(|inner| inner.append_frame(&frame));
        if let (Some(m), true) = (&self.metrics, ok) {
            m.records_appended.inc();
        }
    }

    /// Append the session's final ensemble estimator selection. Written at
    /// terminal time (selection is only settled once the run ends); like
    /// alerts it is an annotation, not the recovery contract, so it rides
    /// the next forced flush.
    pub fn append_estimator(&self, sel: &crate::record::EstimatorRecord) {
        let frame = Record::Estimator(sel.clone()).encode_frame();
        let ok = self.with_inner(|inner| inner.append_frame(&frame));
        if let (Some(m), true) = (&self.metrics, ok) {
            m.records_appended.inc();
        }
    }

    /// Append the clean-shutdown sentinel and flush — called by the service
    /// at orderly shutdown so recovery can tell a clean exit from a crash.
    pub fn append_clean_shutdown(&self) {
        let frame = Record::CleanShutdown.encode_frame();
        let mut fsynced = None;
        let ok = self.with_inner(|inner| {
            inner.append_frame(&frame)?;
            if inner.fsync_policy != FsyncPolicy::Never {
                fsynced = inner.fsync()?;
            }
            Ok(())
        });
        self.record_fsync(fsynced);
        if let (Some(m), true) = (&self.metrics, ok) {
            m.records_appended.inc();
        }
    }

    /// Force buffered appends to stable storage. Bypasses the breaker (no
    /// record rides on it); an fsync failure is counted but changes no
    /// breaker state.
    pub fn flush(&self) {
        let mut inner = self.inner.lock().expect("journal writer poisoned");
        let fsynced = match inner.fsync() {
            Ok(seconds) => seconds,
            Err(_) => {
                inner.write_errors += 1;
                if let Some(m) = &self.metrics {
                    m.write_errors.inc();
                }
                None
            }
        };
        drop(inner);
        self.record_fsync(fsynced);
    }

    /// Total bytes this writer has persisted (headers included; stops
    /// advancing at the crash point).
    pub fn bytes_written(&self) -> u64 {
        self.inner
            .lock()
            .expect("journal writer poisoned")
            .total_bytes
    }

    /// Whether the simulated crash point has fired for this writer.
    pub fn crashed(&self) -> bool {
        self.inner.lock().expect("journal writer poisoned").dead
    }

    /// I/O errors absorbed so far on this session's write path.
    pub fn write_errors(&self) -> u64 {
        self.inner
            .lock()
            .expect("journal writer poisoned")
            .write_errors
    }

    /// Logical records lost to failed or suppressed appends. Lock-free, so
    /// pollers and HTTP handlers can read it off the hot path.
    pub fn lost_records(&self) -> u64 {
        self.lost.load(Ordering::Relaxed)
    }

    /// Whether every record this session tried to journal reached the
    /// file. `false` means the journal has a gap (breaker suppression or
    /// write errors) and recovery cannot treat it as the full story.
    pub fn is_durable(&self) -> bool {
        self.lost_records() == 0
    }

    /// The journal-wide circuit breaker this writer routes through.
    pub fn breaker(&self) -> &Arc<CircuitBreaker> {
        &self.breaker
    }
}

/// Rotate to a fresh segment if the previous append failed (the old
/// segment may end in a torn frame), then run the append.
fn rotate_and_run(
    inner: &mut WriterInner,
    f: impl FnOnce(&mut WriterInner) -> std::io::Result<()>,
) -> std::io::Result<()> {
    if inner.needs_rotate {
        inner.segment += 1;
        inner.open_segment()?;
        inner.needs_rotate = false;
    }
    f(inner)
}

/// A session journal is itself a snapshot sink, so it composes with
/// [`lqs_exec::TeePublisher`]: tee the engine's publishes into the live DMV
/// slot and the journal in one hook.
impl lqs_exec::SnapshotPublisher for SessionJournal {
    fn publish(&self, snapshot: &lqs_exec::DmvSnapshot) {
        self.append_snapshot(snapshot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::scan_dir;
    use crate::record::TerminalKind;
    use lqs_exec::{DmvSnapshot, NodeCounters};
    use lqs_plan::CostModel;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("lqs-journal-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn meta(id: u64, name: &str) -> SessionMeta {
        SessionMeta {
            session_id: id,
            name: name.into(),
            workload: "w".into(),
            n_nodes: 1,
            plan_fingerprint: 1,
            snapshot_target: 8,
            snapshot_interval_ns: None,
            cost_model: CostModel::default(),
            exec_mode: crate::record::JournalExecMode::Unknown,
            estimator: None,
        }
    }

    fn snap(ts: u64, rows: u64) -> DmvSnapshot {
        DmvSnapshot {
            ts_ns: ts,
            nodes: vec![NodeCounters {
                rows_output: rows,
                ..NodeCounters::default()
            }],
        }
    }

    #[test]
    fn file_name_roundtrip() {
        let name = segment_file_name(3, 12, 7);
        assert_eq!(parse_segment_file_name(&name), Some((3, 12, 7)));
        assert_eq!(parse_segment_file_name("junk.lqsj"), None);
        assert_eq!(parse_segment_file_name("e1-s2-g3.other"), None);
    }

    #[test]
    fn write_read_roundtrip_with_rotation() {
        let dir = tmpdir("rotate");
        let journal = Journal::open(
            JournalConfig::new(&dir).with_segment_max_bytes(256), // force many segments
        )
        .unwrap();
        let w = journal.writer(meta(0, "q0")).unwrap();
        for i in 0..50 {
            w.append_snapshot(&snap(i * 10, i));
        }
        w.append_terminal(&TerminalRecord {
            kind: TerminalKind::Succeeded,
            at_ns: 500,
            rows_returned: 49,
            message: String::new(),
        });
        w.append_clean_shutdown();

        let segments = std::fs::read_dir(&dir).unwrap().count();
        assert!(segments > 1, "expected rotation, got {segments} segment(s)");

        let scan = scan_dir(&dir).unwrap();
        assert_eq!(scan.corrupt_records, 0);
        assert_eq!(scan.sessions.len(), 1);
        let s = &scan.sessions[0];
        assert_eq!(s.meta.as_ref().unwrap().name, "q0");
        assert_eq!(s.snapshots.len(), 50);
        assert_eq!(s.snapshots[49].node(0).rows_output, 49);
        assert_eq!(s.terminal.as_ref().unwrap().kind, TerminalKind::Succeeded);
        assert!(s.clean_shutdown);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn epochs_advance_across_opens() {
        let dir = tmpdir("epoch");
        let j0 = Journal::open(JournalConfig::new(&dir)).unwrap();
        assert_eq!(j0.epoch(), 0);
        let w = j0.writer(meta(0, "q0")).unwrap();
        w.flush();
        let j1 = Journal::open(JournalConfig::new(&dir)).unwrap();
        assert_eq!(j1.epoch(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    struct CrashAt(u64);
    impl WriteCrashPoint for CrashAt {
        fn crash_after_bytes(&self, _key: &str) -> Option<u64> {
            Some(self.0)
        }
    }

    #[test]
    fn crash_point_tears_the_tail_and_drops_the_rest() {
        let dir = tmpdir("crash");
        let journal =
            Journal::open(JournalConfig::new(&dir).with_crash(std::sync::Arc::new(CrashAt(400))))
                .unwrap();
        let w = journal.writer(meta(0, "q0")).unwrap();
        for i in 0..50 {
            w.append_snapshot(&snap(i * 10, i));
        }
        assert!(w.crashed());
        w.append_terminal(&TerminalRecord {
            kind: TerminalKind::Succeeded,
            at_ns: 500,
            rows_returned: 49,
            message: String::new(),
        });
        w.append_clean_shutdown();

        let scan = scan_dir(&dir).unwrap();
        let s = &scan.sessions[0];
        // The prefix before the crash offset survives; the terminal record
        // and sentinel are gone; the torn record was counted.
        assert!(s.meta.is_some());
        assert!(s.snapshots.len() < 50);
        assert!(s.terminal.is_none());
        assert!(!s.clean_shutdown);
        assert_eq!(s.corrupt_records, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    struct FailWindow {
        from: u64,
        to: u64,
    }
    impl JournalFaultInjector for FailWindow {
        fn append_fails(&self, _key: &str, nth: u64) -> bool {
            nth >= self.from && nth < self.to
        }
    }

    #[test]
    fn breaker_trips_and_reattaches_on_successful_probe() {
        let dir = tmpdir("breaker-cycle");
        let journal = Journal::open(
            JournalConfig::new(&dir)
                .with_breaker(BreakerConfig {
                    trip_after: 2,
                    probe_after: std::time::Duration::ZERO,
                })
                // Appends 3..6 fail: meta is append 0, so snapshots 2..=5
                // are the faulted ones.
                .with_write_fault(Arc::new(FailWindow { from: 3, to: 7 })),
        )
        .unwrap();
        let w = journal.writer(meta(0, "q0")).unwrap();
        for i in 0..10 {
            w.append_snapshot(&snap(i * 10, i));
        }
        w.append_terminal(&TerminalRecord {
            kind: TerminalKind::Succeeded,
            at_ns: 100,
            rows_returned: 9,
            message: String::new(),
        });
        // Appends 3,4 fail → trip; appends 5,6 are failing probes (reopen,
        // no new trip); append 7 probes successfully → recovery, and the
        // re-attach lands on a fresh segment.
        assert_eq!(journal.breaker().trips(), 1);
        assert_eq!(journal.breaker().recoveries(), 1);
        assert_eq!(journal.breaker().state(), BreakerState::Closed);
        assert_eq!(w.lost_records(), 4);
        assert!(!w.is_durable());
        assert_eq!(w.write_errors(), 4);

        let scan = scan_dir(&dir).unwrap();
        let s = &scan.sessions[0];
        assert_eq!(s.snapshots.len(), 6, "4 of 10 snapshots lost to faults");
        assert_eq!(s.terminal.as_ref().unwrap().kind, TerminalKind::Succeeded);
        assert_eq!(s.corrupt_records, 0, "injected faults never tear frames");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_breaker_suppresses_terminal_without_touching_disk() {
        let dir = tmpdir("breaker-open");
        let journal = Journal::open(
            JournalConfig::new(&dir)
                .with_breaker(BreakerConfig {
                    trip_after: 1,
                    probe_after: std::time::Duration::from_secs(3600),
                })
                .with_write_fault(Arc::new(FailWindow { from: 2, to: 3 })),
        )
        .unwrap();
        let w = journal.writer(meta(0, "q0")).unwrap();
        for i in 0..5 {
            w.append_snapshot(&snap(i * 10, i));
        }
        w.append_terminal(&TerminalRecord {
            kind: TerminalKind::Succeeded,
            at_ns: 50,
            rows_returned: 4,
            message: String::new(),
        });
        // Append 2 (snapshot 1) fails and trips; the hour-long probe delay
        // keeps the breaker open, so everything after is suppressed —
        // terminal record included.
        assert_eq!(journal.breaker().state(), BreakerState::Open);
        assert_eq!(w.write_errors(), 1, "suppressed appends are not I/O errors");
        assert_eq!(w.lost_records(), 5);
        let scan = scan_dir(&dir).unwrap();
        let s = &scan.sessions[0];
        assert_eq!(s.snapshots.len(), 1);
        assert!(
            s.terminal.is_none(),
            "a suppressed terminal must be absent so recovery reports Orphaned"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_sweep_deletes_oldest_prior_epochs_only() {
        let dir = tmpdir("retention");
        // Epoch 0: two sessions.
        let j0 = Journal::open(JournalConfig::new(&dir)).unwrap();
        for id in 0..2 {
            let w = j0.writer(meta(id, &format!("old-{id}"))).unwrap();
            for i in 0..20 {
                w.append_snapshot(&snap(i, i));
            }
            w.append_clean_shutdown();
        }
        // Epoch 1: one session, tight budget.
        let j1 = Journal::open(
            JournalConfig::new(&dir).with_retention_max_bytes(1), // force deletion of all prior epochs
        )
        .unwrap();
        let w = j1.writer(meta(0, "new-0")).unwrap();
        w.append_snapshot(&snap(1, 1));
        w.flush();
        let sweep = j1.sweep_retention().unwrap();
        assert_eq!(sweep.sessions_deleted, 2);
        assert!(sweep.bytes_after < sweep.bytes_before);
        // The current epoch's session survives even over budget.
        let scan = scan_dir(&dir).unwrap();
        assert_eq!(scan.sessions.len(), 1);
        assert_eq!(scan.sessions[0].meta.as_ref().unwrap().name, "new-0");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
