//! # lqs-prof — per-operator time attribution and flamegraph export
//!
//! The engine's virtual clock makes profiling exact instead of sampled:
//! every clock advance — CPU, I/O, injected stall — is credited to the plan
//! node that charged it ([`lqs_exec::QueryRun::node_elapsed_ns`]), so a
//! completed run carries a complete self-time account whose entries sum to
//! the run's total duration *by construction*. This crate turns that
//! account into a [`ProfileReport`]:
//!
//! * **exclusive (self) time** per node — the attributed nanoseconds;
//! * **inclusive time** per node — the node's subtree sum, the number a
//!   flamegraph frame width shows;
//! * **collapsed-stack text** ([`ProfileReport::collapsed_stacks`]) —
//!   root-first `frame;frame weight` lines rendered through
//!   [`lqs_obs::to_collapsed_stacks`], loadable in `flamegraph.pl`,
//!   inferno, or speedscope;
//! * **a terminal table** ([`ProfileReport::render_text`]) for the
//!   `lqs_live --profile` view and smoke tests.
//!
//! Two invariants hold for every report and are proptested across the REAL
//! workloads in both exec modes:
//! `Σ self_ns == total_ns` and `inclusive(node) == self(node) + Σ
//! inclusive(children)` (hence `inclusive(root) == total_ns`).
//!
//! Reports profile *executions the engine attributed*: a run reconstructed
//! from a journal has no attribution vector (the journal carries counters,
//! not self-times), and [`ProfileReport::from_run`] answers `None` for it —
//! an explicit no-profile, never a fabricated one.

#![warn(missing_docs)]

use lqs_exec::QueryRun;
use lqs_plan::{NodeId, PhysicalPlan};

/// One plan node's profile entry.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeProfile {
    /// The node's id (index into the plan).
    pub node: usize,
    /// Operator display name.
    pub name: String,
    /// Parent node id; `None` for the root.
    pub parent: Option<usize>,
    /// Exclusive self-time: virtual nanoseconds of clock advance this node
    /// charged (CPU + I/O + stalls).
    pub self_ns: u64,
    /// Inclusive time: `self_ns` plus the inclusive time of every child.
    pub inclusive_ns: u64,
    /// Rows the node output over the run.
    pub rows_output: u64,
    /// CPU nanoseconds charged (a component of `self_ns`).
    pub cpu_ns: u64,
    /// Logical page reads charged.
    pub logical_reads: u64,
    /// Times the node was opened (rewinds included).
    pub executions: u64,
}

/// A completed run's per-operator time profile. Build with
/// [`ProfileReport::from_run`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// Total virtual duration of the run; equals the sum of all `self_ns`.
    pub total_ns: u64,
    /// Per-node entries, indexed by node id.
    pub nodes: Vec<NodeProfile>,
    /// The plan root's node id.
    pub root: usize,
}

impl ProfileReport {
    /// Build the profile of `run`, executed under `plan`.
    ///
    /// Returns `None` when the run carries no attribution vector of the
    /// plan's arity — runs reconstructed from journals, or a plan/run
    /// mismatch. The caller gets an explicit no-profile answer instead of
    /// zeros that would masquerade as "this query cost nothing".
    pub fn from_run(plan: &PhysicalPlan, run: &QueryRun) -> Option<ProfileReport> {
        let n = plan.len();
        if run.node_elapsed_ns.len() != n || run.final_counters.len() != n {
            return None;
        }
        let mut parent: Vec<Option<usize>> = vec![None; n];
        for (i, node) in plan.nodes().iter().enumerate() {
            for c in &node.children {
                parent[c.0] = Some(i);
            }
        }
        // Inclusive time bottom-up: every child's id is distinct from its
        // parent's and the tree is finite, so iterate nodes in an order
        // that resolves children first via an explicit post-order walk.
        let mut inclusive = vec![0u64; n];
        let mut visited = vec![false; n];
        let mut stack: Vec<(usize, bool)> = vec![(plan.root().0, false)];
        while let Some((i, children_done)) = stack.pop() {
            if children_done {
                inclusive[i] = run.node_elapsed_ns[i]
                    + plan.nodes()[i]
                        .children
                        .iter()
                        .map(|c| inclusive[c.0])
                        .sum::<u64>();
                continue;
            }
            if visited[i] {
                continue;
            }
            visited[i] = true;
            stack.push((i, true));
            for c in &plan.nodes()[i].children {
                stack.push((c.0, false));
            }
        }
        let nodes = (0..n)
            .map(|i| NodeProfile {
                node: i,
                name: plan.nodes()[i].op.display_name().to_owned(),
                parent: parent[i],
                self_ns: run.node_elapsed_ns[i],
                inclusive_ns: inclusive[i],
                rows_output: run.final_counters[i].rows_output,
                cpu_ns: run.final_counters[i].cpu_ns,
                logical_reads: run.final_counters[i].logical_reads,
                executions: run.final_counters[i].executions,
            })
            .collect();
        Some(ProfileReport {
            total_ns: run.duration_ns,
            nodes,
            root: plan.root().0,
        })
    }

    /// The root-first frame path of `node`: every ancestor's frame label
    /// down to the node itself. Frame labels are `name#id` — the id keeps
    /// two same-named siblings (e.g. two Filters) from merging into one
    /// flamegraph frame.
    pub fn stack_of(&self, node: usize) -> Vec<String> {
        let mut path = Vec::new();
        let mut cur = Some(node);
        while let Some(i) = cur {
            let n = &self.nodes[i];
            path.push(format!("{}#{}", n.name, n.node));
            cur = n.parent;
        }
        path.reverse();
        path
    }

    /// Collapsed-stack (flamegraph) text: one line per node with non-zero
    /// self-time, weighted in virtual nanoseconds. Because self-times sum
    /// to `total_ns`, the rendered flame's total width is exactly the
    /// query's virtual duration.
    pub fn collapsed_stacks(&self) -> String {
        let stacks: Vec<(Vec<String>, u64)> = self
            .nodes
            .iter()
            .map(|n| (self.stack_of(n.node), n.self_ns))
            .collect();
        lqs_obs::to_collapsed_stacks(&stacks)
    }

    /// Fixed-width terminal table, hottest node first (ties broken by node
    /// id, so equal inputs always render byte-identically).
    pub fn render_text(&self) -> String {
        let mut order: Vec<usize> = (0..self.nodes.len()).collect();
        order.sort_by(|&a, &b| {
            self.nodes[b]
                .self_ns
                .cmp(&self.nodes[a].self_ns)
                .then(a.cmp(&b))
        });
        let mut out = format!("total {} ns\n", self.total_ns);
        out.push_str("     self_ns  self%      incl_ns    rows_out       reads  node\n");
        for i in order {
            let n = &self.nodes[i];
            let pct = if self.total_ns == 0 {
                0.0
            } else {
                n.self_ns as f64 * 100.0 / self.total_ns as f64
            };
            out.push_str(&format!(
                "{:>12}  {:>5.1}  {:>11}  {:>10}  {:>10}  {}#{}\n",
                n.self_ns, pct, n.inclusive_ns, n.rows_output, n.logical_reads, n.name, n.node
            ));
        }
        out
    }

    /// Check the two attribution invariants, returning the first violation
    /// as a message (test helper; release builds can call it cheaply).
    pub fn check_exact(&self) -> Result<(), String> {
        let sum: u64 = self.nodes.iter().map(|n| n.self_ns).sum();
        if sum != self.total_ns {
            return Err(format!(
                "self-times sum to {sum}, total is {}",
                self.total_ns
            ));
        }
        if self.nodes[self.root].inclusive_ns != self.total_ns {
            return Err(format!(
                "root inclusive {} != total {}",
                self.nodes[self.root].inclusive_ns, self.total_ns
            ));
        }
        for n in &self.nodes {
            if let Some(p) = n.parent {
                if self.nodes[p].inclusive_ns < n.inclusive_ns {
                    return Err(format!(
                        "node {} inclusive {} exceeds parent {} inclusive {}",
                        n.node, n.inclusive_ns, p, self.nodes[p].inclusive_ns
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Convenience: `NodeId`-typed accessor.
impl std::ops::Index<NodeId> for ProfileReport {
    type Output = NodeProfile;

    fn index(&self, id: NodeId) -> &NodeProfile {
        &self.nodes[id.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lqs_exec::{execute, ExecMode, ExecOptions};
    use lqs_plan::{Expr, PlanBuilder, SortKey};
    use lqs_storage::{Column, DataType, Database, Schema, Table, Value};

    fn db() -> (Database, lqs_storage::TableId) {
        let mut t = Table::new(
            "t",
            Schema::new(vec![
                Column::new("a", DataType::Int),
                Column::new("b", DataType::Int),
            ]),
        );
        for i in 0..4000 {
            t.insert(vec![Value::Int(i), Value::Int(i % 97)]).unwrap();
        }
        let mut db = Database::new();
        let id = db.add_table_analyzed(t);
        (db, id)
    }

    fn plan(db: &Database, t: lqs_storage::TableId) -> PhysicalPlan {
        let mut b = PlanBuilder::new(db);
        let scan = b.table_scan_filtered(t, Expr::col(1).lt(Expr::lit(48i64)), true);
        let sort = b.sort(scan, vec![SortKey::desc(0)]);
        b.finish(sort)
    }

    #[test]
    fn report_is_exact_in_both_modes() {
        let (db, t) = db();
        let plan = plan(&db, t);
        for mode in [ExecMode::Tuple, ExecMode::Batch] {
            let opts = ExecOptions {
                mode,
                ..ExecOptions::default()
            };
            let run = execute(&db, &plan, &opts);
            let report = ProfileReport::from_run(&plan, &run).expect("attributed run");
            report.check_exact().unwrap();
            assert_eq!(report.total_ns, run.duration_ns);
            assert!(report.nodes.iter().any(|n| n.self_ns > 0));
        }
    }

    #[test]
    fn modes_attribute_identically() {
        let (db, t) = db();
        let plan = plan(&db, t);
        let tuple = execute(
            &db,
            &plan,
            &ExecOptions {
                mode: ExecMode::Tuple,
                ..ExecOptions::default()
            },
        );
        let batch = execute(
            &db,
            &plan,
            &ExecOptions {
                mode: ExecMode::Batch,
                ..ExecOptions::default()
            },
        );
        assert_eq!(tuple.node_elapsed_ns, batch.node_elapsed_ns);
    }

    #[test]
    fn collapsed_stacks_cover_total() {
        let (db, t) = db();
        let plan = plan(&db, t);
        let run = execute(&db, &plan, &ExecOptions::default());
        let report = ProfileReport::from_run(&plan, &run).unwrap();
        let text = report.collapsed_stacks();
        let total: u64 = text
            .lines()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(total, run.duration_ns);
        // Leaf frames sit under their ancestors.
        assert!(text.lines().all(|l| l.contains('#')));
    }

    #[test]
    fn journal_reconstructed_runs_have_no_profile() {
        let (db, t) = db();
        let plan = plan(&db, t);
        let mut run = execute(&db, &plan, &ExecOptions::default());
        run.node_elapsed_ns.clear(); // what a journal reconstruction looks like
        assert!(ProfileReport::from_run(&plan, &run).is_none());
    }

    #[test]
    fn render_text_is_deterministic_and_sorted() {
        let (db, t) = db();
        let plan = plan(&db, t);
        let run = execute(&db, &plan, &ExecOptions::default());
        let report = ProfileReport::from_run(&plan, &run).unwrap();
        let a = report.render_text();
        let b = report.render_text();
        assert_eq!(a, b);
        let selfs: Vec<u64> = a
            .lines()
            .skip(2)
            .map(|l| l.split_whitespace().next().unwrap().parse().unwrap())
            .collect();
        assert!(selfs.windows(2).all(|w| w[0] >= w[1]));
    }
}
