//! Attribution exactness over the REAL workloads, both execution modes:
//! for every profiled run, per-node self-times sum *exactly* to the total
//! virtual elapsed, inclusive times equal their subtree sums, collapsed
//! flamegraph weights conserve the total — and tuple and batch mode
//! attribute identically, node for node. No sampling error, no clock
//! skew: the virtual clock makes profiling a conservation law.

use lqs_exec::{execute, ExecMode, ExecOptions};
use lqs_prof::ProfileReport;
use lqs_workloads::real::{workload, RealProfile};
use lqs_workloads::{Workload, WorkloadScale};
use proptest::prelude::*;
use std::sync::OnceLock;

/// The three REAL workloads at smoke scale, built once per process (the
/// generators are deterministic, so every proptest case sees the same
/// databases and plans).
fn workloads() -> &'static [Workload] {
    static WORKLOADS: OnceLock<Vec<Workload>> = OnceLock::new();
    WORKLOADS.get_or_init(|| {
        [RealProfile::Real1, RealProfile::Real2, RealProfile::Real3]
            .into_iter()
            .map(|p| workload(p, WorkloadScale::smoke()))
            .collect()
    })
}

/// Sum of the collapsed-stack line weights (`frame;frame weight`).
fn collapsed_weight_sum(collapsed: &str) -> u64 {
    collapsed
        .lines()
        .map(|l| {
            l.rsplit(' ')
                .next()
                .and_then(|w| w.parse::<u64>().ok())
                .unwrap_or_else(|| panic!("malformed collapsed line {l:?}"))
        })
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn attribution_is_exact_across_real_workloads_and_modes(
        w in 0usize..3,
        q in 0usize..64,
    ) {
        let wl = &workloads()[w];
        let nq = &wl.queries[q % wl.queries.len()];
        let mut per_mode = Vec::new();
        for mode in [ExecMode::Tuple, ExecMode::Batch] {
            let opts = ExecOptions {
                mode,
                ..ExecOptions::default()
            };
            let run = execute(&wl.db, &nq.plan, &opts);
            let report = ProfileReport::from_run(&nq.plan, &run)
                .expect("live runs always carry attribution");
            // The conservation laws, checked by the report itself:
            // Σ self == total, root inclusive == total, child inclusive
            // bounded by parent.
            if let Err(e) = report.check_exact() {
                prop_assert!(false, "{} / {} ({:?}): {}", wl.name, nq.name, mode, e);
            }
            prop_assert_eq!(
                report.total_ns, run.duration_ns,
                "total must be the run's virtual duration"
            );
            // The flamegraph view conserves the total too: collapsed
            // weights are self-times, zero-weight frames skipped.
            prop_assert_eq!(
                collapsed_weight_sum(&report.collapsed_stacks()),
                report.total_ns,
                "collapsed stacks lost or invented time"
            );
            per_mode.push(report);
        }
        // Tuple and batch credit identical self-time everywhere — the
        // profiling layer inherits the batch-equivalence contract.
        let (t, b) = (&per_mode[0], &per_mode[1]);
        prop_assert_eq!(t.total_ns, b.total_ns);
        for (tn, bn) in t.nodes.iter().zip(b.nodes.iter()) {
            prop_assert_eq!(tn.self_ns, bn.self_ns, "node {} self", tn.node);
            prop_assert_eq!(tn.inclusive_ns, bn.inclusive_ns, "node {} inclusive", tn.node);
        }
    }
}
