//! # lqs-workloads — the five evaluation workloads
//!
//! Scaled-down, seeded reproductions of the workload suite in the paper's
//! §5: TPC-H (with Zipf z=1 skew, in both a row-store and a columnstore
//! physical design), a TPC-DS-shaped decision-support workload, and three
//! synthetic analogs of the proprietary REAL-1/2/3 customer workloads,
//! matched on the characteristics the paper reports (query counts, join
//! counts, relative database sizes).
//!
//! All generation is deterministic in the seed; plans are authored through
//! `lqs-plan`'s builder, mirroring how the real LQS consumes compiled
//! showplans rather than SQL text.

#![warn(missing_docs)]

pub mod real;
pub mod rng;
pub mod suite;
pub mod tpcds;
pub mod tpch;

pub use suite::{standard_five, NamedQuery, Workload, WorkloadScale};
pub use tpch::PhysicalDesign;
