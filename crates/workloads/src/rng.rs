//! Deterministic data-generation helpers: Zipf sampling, string pools.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A seeded RNG for reproducible workload generation.
pub fn seeded(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Zipf-distributed sampler over `0..n` with exponent `z`.
///
/// `z = 0` is uniform; `z = 1` matches the skewed TPC-H generator the paper
/// uses ("data generated with a skew-parameter of Z = 1"). Sampling is by
/// binary search over the precomputed CDF.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `0..n` with exponent `z ≥ 0`.
    pub fn new(n: usize, z: f64) -> Self {
        assert!(n > 0, "Zipf domain must be non-empty");
        assert!(z >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(z);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Draw one value in `0..n`.
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Domain size.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }
}

/// A fixed pool of generated strings (for comment/name columns), so string
/// columns have realistic repeated values without unbounded memory.
pub fn string_pool(rng: &mut SmallRng, count: usize, len: usize) -> Vec<String> {
    const WORDS: &[&str] = &[
        "alpha", "bravo", "carbon", "delta", "ember", "fjord", "gamma", "harbor", "iris", "joule",
        "karma", "lumen", "meadow", "nickel", "onyx", "prism", "quartz", "raven", "sable",
        "tundra",
    ];
    (0..count)
        .map(|_| {
            let mut s = String::new();
            while s.len() < len {
                if !s.is_empty() {
                    s.push(' ');
                }
                s.push_str(WORDS[rng.gen_range(0..WORDS.len())]);
            }
            s.truncate(len);
            s
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_uniform_when_z_zero() {
        let z = Zipf::new(10, 0.0);
        let mut rng = seeded(1);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((1600..2400).contains(&c), "count {c} not near 2000");
        }
    }

    #[test]
    fn zipf_skewed_when_z_one() {
        let z = Zipf::new(100, 1.0);
        let mut rng = seeded(2);
        let mut counts = [0usize; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Value 0 should be drawn roughly 1/H(100) ≈ 19% of the time; value
        // 99 about 0.19%.
        assert!(counts[0] > 8_000, "head count {}", counts[0]);
        assert!(counts[99] < 500, "tail count {}", counts[99]);
        // Monotone-ish decay head vs mid vs tail.
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
    }

    #[test]
    fn zipf_deterministic_for_seed() {
        let z = Zipf::new(50, 1.0);
        let a: Vec<usize> = {
            let mut rng = seeded(7);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = seeded(7);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn string_pool_shape() {
        let mut rng = seeded(3);
        let pool = string_pool(&mut rng, 20, 24);
        assert_eq!(pool.len(), 20);
        assert!(pool.iter().all(|s| s.len() <= 24));
    }
}
