//! Synthetic analogs of the paper's proprietary REAL-1/2/3 customer
//! workloads.
//!
//! The paper characterizes them only by aggregate properties, which we
//! match:
//!
//! * **REAL-1** — 9 GB sales database; 477 distinct decision-support
//!   queries, "joins of 5–8 tables as well as nested subqueries".
//! * **REAL-2** — 12 GB; 632 queries, "even more complex … a typical query
//!   involving 12 joins".
//! * **REAL-3** — 97 GB (largest); 40 join + group-by queries.
//!
//! Databases are seeded-random snowflake schemas; queries are random valid
//! plans over them (join chains following foreign keys, mixed join
//! algorithms, pushed filters, exchanges, aggregate subqueries through
//! spools). Generation is deterministic in the workload seed.

use crate::rng::{seeded, Zipf};
use crate::suite::{NamedQuery, Workload, WorkloadScale};
use lqs_plan::{
    AggFunc, Aggregate, ExchangeKind, Expr, JoinKind, NodeId, PlanBuilder, SeekKey, SeekRange,
    SortKey,
};
use lqs_storage::{Column, DataType, Database, IndexId, Schema, Table, TableId, Value};
use rand::rngs::SmallRng;
use rand::Rng;

/// Which REAL workload to synthesize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RealProfile {
    /// 477 queries, 5–8-table joins, nested subqueries; smallest data.
    Real1,
    /// 632 queries, ~12 joins.
    Real2,
    /// 40 join+group-by queries; largest data.
    Real3,
}

struct Profile {
    name: &'static str,
    tables: usize,
    /// Base rows of the largest fact table (scaled by `data_scale`).
    max_rows: usize,
    queries: usize,
    joins: (usize, usize),
    subquery_prob: f64,
    groupby_prob: f64,
    seed_salt: u64,
}

fn profile(p: RealProfile) -> Profile {
    match p {
        RealProfile::Real1 => Profile {
            name: "REAL-1",
            tables: 12,
            max_rows: 12_000,
            queries: 477,
            joins: (5, 8),
            subquery_prob: 0.35,
            groupby_prob: 0.6,
            seed_salt: 0x0111,
        },
        RealProfile::Real2 => Profile {
            name: "REAL-2",
            tables: 18,
            max_rows: 16_000,
            queries: 632,
            joins: (10, 13),
            subquery_prob: 0.15,
            groupby_prob: 0.5,
            seed_salt: 0x0222,
        },
        RealProfile::Real3 => Profile {
            name: "REAL-3",
            tables: 10,
            max_rows: 60_000,
            queries: 40,
            joins: (2, 5),
            subquery_prob: 0.0,
            groupby_prob: 1.0,
            seed_salt: 0x0333,
        },
    }
}

/// Schema metadata for one generated table.
struct TableInfo {
    id: TableId,
    pk_index: IndexId,
    rows: usize,
    /// (column ordinal, referenced table index) for each FK.
    fks: Vec<(usize, usize)>,
    /// Ordinals of filterable attribute columns, with their domain sizes.
    attrs: Vec<(usize, i64)>,
    arity: usize,
}

/// Generate the database + query set for a profile.
pub fn workload(p: RealProfile, scale: WorkloadScale) -> Workload {
    let prof = profile(p);
    let mut rng = seeded(scale.seed ^ prof.seed_salt);
    let (db, infos) = build_schema(&prof, scale.data_scale, &mut rng);
    let query_target = prof.queries.min(scale.query_limit);
    let mut queries = Vec::new();
    while queries.len() < query_target {
        let name = format!("{}-q{:03}", prof.name.to_lowercase(), queries.len());
        let plan = gen_query(&db, &infos, &prof, &mut rng);
        queries.push(NamedQuery { name, plan });
    }
    Workload {
        name: prof.name,
        db,
        queries,
    }
}

fn build_schema(prof: &Profile, data_scale: f64, rng: &mut SmallRng) -> (Database, Vec<TableInfo>) {
    let mut db = Database::new();
    let mut infos: Vec<TableInfo> = Vec::new();
    for t in 0..prof.tables {
        // Row counts grow with table index: early tables are dimensions.
        let frac = ((t + 1) as f64 / prof.tables as f64).powi(2);
        let rows = ((prof.max_rows as f64 * frac * data_scale) as usize).max(40);
        let mut columns = vec![Column::new("pk", DataType::Int)];
        // FKs to up to two earlier tables.
        let nfk = if t == 0 {
            0
        } else {
            rng.gen_range(1..=2.min(t))
        };
        let mut fks = Vec::new();
        for f in 0..nfk {
            let target = rng.gen_range(0..t);
            columns.push(Column::new(format!("fk{f}"), DataType::Int));
            fks.push((1 + f, target));
        }
        // Attribute columns.
        let nattr = rng.gen_range(2..=4);
        let mut attrs = Vec::new();
        for a in 0..nattr {
            let domain = [10i64, 50, 200, 1000][rng.gen_range(0..4)];
            columns.push(Column::new(format!("attr{a}"), DataType::Int));
            attrs.push((1 + nfk + a, domain));
        }
        // A measure column.
        columns.push(Column::new("measure", DataType::Float));
        let arity = columns.len();

        let mut table = Table::new(format!("t{t}"), Schema::new(columns));
        // Zipf-skew FK values against the referenced tables' domains.
        let fk_samplers: Vec<Zipf> = fks
            .iter()
            .map(|&(_, target)| {
                Zipf::new(
                    infos[target].rows,
                    if rng.gen_bool(0.5) { 1.0 } else { 0.3 },
                )
            })
            .collect();
        for i in 0..rows {
            let mut row = vec![Value::Int(i as i64)];
            for z in &fk_samplers {
                row.push(Value::Int(z.sample(rng) as i64));
            }
            for &(_, domain) in &attrs {
                // Mix of uniform and quadratic (skewed) attribute values.
                let v = if rng.gen_bool(0.5) {
                    rng.gen_range(0..domain)
                } else {
                    let x = rng.gen_range(0..domain);
                    (x * x) % domain
                };
                row.push(Value::Int(v));
            }
            row.push(Value::Float(rng.gen_range(0.0..1000.0)));
            table.insert(row).unwrap();
        }
        let id = db.add_table_analyzed(table);
        let pk_index = db.create_btree_index(format!("pk_t{t}"), id, vec![0], true);
        infos.push(TableInfo {
            id,
            pk_index,
            rows,
            fks,
            attrs,
            arity,
        });
    }
    (db, infos)
}

/// Tracks the (table, base-column) provenance of the current intermediate
/// result, so join keys can be located by output ordinal.
struct Shape {
    node: NodeId,
    /// For each output column: `Some((table_idx, col))` if it carries a base
    /// column, else None.
    cols: Vec<Option<(usize, usize)>>,
}

impl Shape {
    fn of_table(node: NodeId, t: usize, info: &TableInfo) -> Shape {
        Shape {
            node,
            cols: (0..info.arity).map(|c| Some((t, c))).collect(),
        }
    }

    /// Find the output ordinal carrying `(table, col)`.
    fn find(&self, t: usize, c: usize) -> Option<usize> {
        self.cols.iter().position(|p| *p == Some((t, c)))
    }

    fn tables(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.cols.iter().flatten().map(|&(t, _)| t).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// A join opportunity between the current shape and a new table.
struct JoinEdge {
    /// Output ordinal of the key in the current shape.
    shape_key: usize,
    /// The new table index.
    table: usize,
    /// Key column in the new table.
    table_key: usize,
    /// True when shape-side is the FK and the new table's PK is the key
    /// (enables an index NL seek into the new table).
    fk_to_pk: bool,
}

fn join_edges(shape: &Shape, infos: &[TableInfo]) -> Vec<JoinEdge> {
    let included = shape.tables();
    let mut edges = Vec::new();
    for (t, info) in infos.iter().enumerate() {
        if included.contains(&t) {
            continue;
        }
        // Included table's FK → new table's PK.
        for &inc in &included {
            for &(fk_col, target) in &infos[inc].fks {
                if target == t {
                    if let Some(ord) = shape.find(inc, fk_col) {
                        edges.push(JoinEdge {
                            shape_key: ord,
                            table: t,
                            table_key: 0,
                            fk_to_pk: true,
                        });
                    }
                }
            }
        }
        // New table's FK → included table's PK.
        for &(fk_col, target) in &info.fks {
            if included.contains(&target) {
                if let Some(ord) = shape.find(target, 0) {
                    edges.push(JoinEdge {
                        shape_key: ord,
                        table: t,
                        table_key: fk_col,
                        fk_to_pk: false,
                    });
                }
            }
        }
    }
    edges
}

/// Random filter on a random attribute of the given table block.
fn random_filter(rng: &mut SmallRng, infos: &[TableInfo], shape: &Shape) -> Option<Expr> {
    let tables = shape.tables();
    let t = tables[rng.gen_range(0..tables.len())];
    let attrs = &infos[t].attrs;
    if attrs.is_empty() {
        return None;
    }
    let (col, domain) = attrs[rng.gen_range(0..attrs.len())];
    let ord = shape.find(t, col)?;
    let e = match rng.gen_range(0..3) {
        0 => Expr::col(ord).eq(Expr::lit(rng.gen_range(0..domain))),
        1 => Expr::col(ord).lt(Expr::lit(rng.gen_range(1..=domain))),
        _ => Expr::col(ord).ge(Expr::lit(rng.gen_range(0..domain))),
    };
    Some(e)
}

fn access_table(b: &mut PlanBuilder, rng: &mut SmallRng, infos: &[TableInfo], t: usize) -> Shape {
    let info = &infos[t];
    // 50%: pushed filter on an attribute.
    let node = if rng.gen_bool(0.5) && !info.attrs.is_empty() {
        let (col, domain) = info.attrs[rng.gen_range(0..info.attrs.len())];
        let pred = match rng.gen_range(0..3) {
            0 => Expr::col(col).eq(Expr::lit(rng.gen_range(0..domain))),
            1 => Expr::col(col).lt(Expr::lit(rng.gen_range(1..=domain))),
            _ => Expr::col(col).ge(Expr::lit(rng.gen_range(0..domain))),
        };
        b.table_scan_filtered(info.id, pred, true)
    } else {
        b.table_scan(info.id)
    };
    Shape::of_table(node, t, info)
}

fn gen_query(
    db: &Database,
    infos: &[TableInfo],
    prof: &Profile,
    rng: &mut SmallRng,
) -> lqs_plan::PhysicalPlan {
    let mut b = PlanBuilder::new(db);
    // Start from one of the larger tables.
    let start = rng.gen_range(infos.len() / 2..infos.len());
    let mut shape = access_table(&mut b, rng, infos, start);
    let njoins = rng.gen_range(prof.joins.0..=prof.joins.1);
    // Rough running cardinality estimate: fk→pk joins preserve row counts,
    // pk←fk joins multiply by the referencing table's average fan-out. Used
    // only to veto joins that would explode the intermediate result.
    let mut est_rows = infos[start].rows as f64;
    const MAX_INTERMEDIATE: f64 = 80_000.0;
    // Skew-aware fan-out for pk←fk joins: Zipf-skewed foreign keys make the
    // hot key's duplicate run enormous, and chaining two skewed facts
    // through a shared dimension multiplies on that hot key. The geometric
    // mean of the average and the hottest-key fan-out is a cheap estimate
    // that vetoes those Zipf² blow-ups without forbidding skewed joins
    // entirely.
    let fanout_of = |e: &JoinEdge| -> f64 {
        if e.fk_to_pk {
            return 1.0;
        }
        let target = infos[e.table]
            .fks
            .iter()
            .find(|&&(c, _)| c == e.table_key)
            .map(|&(_, t)| t)
            .unwrap_or(0);
        let avg = infos[e.table].rows as f64 / infos[target].rows.max(1) as f64;
        let hot = db.stats(infos[e.table].id).columns[e.table_key]
            .histogram
            .buckets()
            .iter()
            .map(|b| b.eq_rows)
            .fold(1.0f64, f64::max);
        (avg * hot).sqrt().max(avg)
    };

    for _ in 0..njoins {
        let edges = join_edges(&shape, infos);
        // Veto edges whose projected cardinality explodes.
        let edges: Vec<JoinEdge> = edges
            .into_iter()
            .filter(|e| est_rows * fanout_of(e) <= MAX_INTERMEDIATE)
            .collect();
        if edges.is_empty() {
            break;
        }
        let e = &edges[rng.gen_range(0..edges.len())];
        est_rows *= fanout_of(e);
        let info = &infos[e.table];
        shape = if e.fk_to_pk && rng.gen_bool(0.5) {
            // Index nested loops into the new table's PK.
            let seek = b.index_seek(
                info.pk_index,
                SeekRange::eq(vec![SeekKey::OuterRef(e.shape_key)]),
            );
            let buffer = if rng.gen_bool(0.3) { 512 } else { 1 };
            let node = b.nested_loops(JoinKind::Inner, shape.node, seek, None, buffer);
            let mut cols = shape.cols.clone();
            cols.extend((0..info.arity).map(|c| Some((e.table, c))));
            Shape { node, cols }
        } else if rng.gen_bool(0.15) {
            // Merge join over explicit sorts.
            let new_scan = access_table(&mut b, rng, infos, e.table);
            let ls = b.sort(shape.node, vec![SortKey::asc(e.shape_key)]);
            let rs = b.sort(new_scan.node, vec![SortKey::asc(e.table_key)]);
            let node = b.merge_join(
                JoinKind::Inner,
                ls,
                rs,
                vec![e.shape_key],
                vec![e.table_key],
            );
            let mut cols = shape.cols.clone();
            cols.extend(new_scan.cols);
            Shape { node, cols }
        } else {
            // Hash join; new table is the build side.
            let new_scan = access_table(&mut b, rng, infos, e.table);
            let node = b.hash_join(
                JoinKind::Inner,
                new_scan.node,
                shape.node,
                vec![e.table_key],
                vec![e.shape_key],
            );
            // probe (shape) ++ build (new table)
            let mut cols = shape.cols.clone();
            cols.extend(new_scan.cols);
            Shape { node, cols }
        };
        // Occasional residual filter / exchange between joins.
        if rng.gen_bool(0.25) {
            if let Some(pred) = random_filter(rng, infos, &shape) {
                let node = b.filter(shape.node, pred);
                shape = Shape {
                    node,
                    cols: shape.cols,
                };
            }
        }
        if rng.gen_bool(0.12) {
            let node = b.exchange(shape.node, ExchangeKind::RepartitionStreams, 4);
            shape = Shape {
                node,
                cols: shape.cols,
            };
        }
    }

    // Nested aggregate subquery through a spool (REAL-1's signature shape):
    // aggregate a related table by its FK and join the result back.
    if rng.gen_bool(prof.subquery_prob) {
        let included = shape.tables();
        // Find a table with an FK to an included table.
        let candidate = infos.iter().enumerate().find_map(|(t, info)| {
            info.fks
                .iter()
                .find(|&&(_, target)| included.contains(&target))
                .map(|&(fk_col, target)| (t, fk_col, target))
        });
        if let Some((t, fk_col, target)) = candidate {
            if let Some(ord) = shape.find(target, 0) {
                let sub = b.table_scan(infos[t].id);
                let agg = b.hash_aggregate(
                    sub,
                    vec![fk_col],
                    vec![Aggregate::of_col(AggFunc::Count, 0)],
                );
                let spool = b.spool(agg, false);
                // probe shape ++ build (grouped subquery): +2 columns.
                let node = b.hash_join(JoinKind::Inner, spool, shape.node, vec![0], vec![ord]);
                let mut cols = shape.cols.clone();
                cols.extend([None, None]);
                shape = Shape { node, cols };
            }
        }
    }

    // Final shaping: group-by (possibly) + order.
    let root = if rng.gen_bool(prof.groupby_prob) {
        // Group on 1–2 attribute columns present in the output.
        let mut group_cols = Vec::new();
        let tables = shape.tables();
        for _ in 0..rng.gen_range(1..=2) {
            let t = tables[rng.gen_range(0..tables.len())];
            if infos[t].attrs.is_empty() {
                continue;
            }
            let (c, _) = infos[t].attrs[rng.gen_range(0..infos[t].attrs.len())];
            if let Some(ord) = shape.find(t, c) {
                group_cols.push(ord);
            }
        }
        group_cols.sort_unstable();
        group_cols.dedup();
        if group_cols.is_empty() {
            group_cols.push(0);
        }
        let n_groups = group_cols.len();
        let agg = b.hash_aggregate(shape.node, group_cols, vec![Aggregate::count_star()]);
        if rng.gen_bool(0.5) {
            b.sort(agg, vec![SortKey::desc(n_groups)])
        } else {
            agg
        }
    } else if rng.gen_bool(0.4) {
        b.top_n_sort(shape.node, 100, vec![SortKey::asc(0)])
    } else {
        shape.node
    };
    b.finish(root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lqs_exec::{execute, ExecOptions};
    use lqs_plan::PhysicalOp;

    fn small_scale() -> WorkloadScale {
        WorkloadScale {
            data_scale: 0.15,
            query_limit: usize::MAX,
            seed: 11,
        }
    }

    #[test]
    fn real1_profile_counts() {
        let mut scale = small_scale();
        scale.query_limit = 25;
        let w = workload(RealProfile::Real1, scale);
        assert_eq!(w.name, "REAL-1");
        assert_eq!(w.queries.len(), 25);
        // Queries have the advertised join complexity: count join nodes.
        let avg_joins: f64 = w
            .queries
            .iter()
            .map(|q| {
                q.plan
                    .nodes()
                    .iter()
                    .filter(|n| {
                        matches!(
                            n.op,
                            PhysicalOp::HashJoin { .. }
                                | PhysicalOp::MergeJoin { .. }
                                | PhysicalOp::NestedLoops { .. }
                        )
                    })
                    .count() as f64
            })
            .sum::<f64>()
            / w.queries.len() as f64;
        assert!(avg_joins >= 3.0, "avg joins {avg_joins}");
    }

    #[test]
    fn real_queries_execute() {
        for p in [RealProfile::Real1, RealProfile::Real2, RealProfile::Real3] {
            let mut scale = small_scale();
            scale.query_limit = 8;
            let w = workload(p, scale);
            for q in &w.queries {
                let run = execute(&w.db, &q.plan, &ExecOptions::default());
                assert!(run.duration_ns > 0, "{} did no work", q.name);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut s = small_scale();
        s.query_limit = 3;
        let a = workload(RealProfile::Real3, s);
        let b = workload(RealProfile::Real3, s);
        assert_eq!(a.queries.len(), b.queries.len());
        for (qa, qb) in a.queries.iter().zip(&b.queries) {
            assert_eq!(qa.plan.display_tree(), qb.plan.display_tree());
        }
    }

    #[test]
    fn real3_always_groups() {
        let mut s = small_scale();
        s.query_limit = 10;
        let w = workload(RealProfile::Real3, s);
        for q in &w.queries {
            assert!(
                q.plan
                    .nodes()
                    .iter()
                    .any(|n| matches!(n.op, PhysicalOp::HashAggregate { .. })),
                "{} lacks a group-by",
                q.name
            );
        }
    }
}
