//! TPC-DS-shaped decision-support workload: a retail star schema with the
//! query shapes the paper's figures single out — Q13 (a high-reduction hash
//! aggregate, Figure 11), Q21 (a 6-pipeline plan whose pipeline weights
//! differ by over an order of magnitude, Figure 12) and Q36 (Figure 13) —
//! plus a broader mix of star joins.

use crate::rng::{seeded, Zipf};
use crate::suite::{NamedQuery, Workload, WorkloadScale};
use lqs_plan::{
    AggFunc, Aggregate, ExchangeKind, Expr, JoinKind, PlanBuilder, SeekKey, SeekRange, SortKey,
};
use lqs_storage::{Column, DataType, Database, IndexId, Schema, Table, TableId, Value};
use rand::Rng;

/// Catalog handles for the generated TPC-DS-shaped database.
pub struct TpcdsDb {
    /// The database.
    pub db: Database,
    /// date_dim(d_datekey, d_year, d_moy, d_dom) — 1825 days.
    pub date_dim: TableId,
    /// item(i_itemkey, i_brand, i_category, i_price)
    pub item: TableId,
    /// customer(cu_custkey, cu_demo, cu_state, cu_income)
    pub customer: TableId,
    /// store(st_storekey, st_state, st_size)
    pub store: TableId,
    /// promotion(p_promokey, p_channel)
    pub promotion: TableId,
    /// warehouse(w_warehousekey, w_state)
    pub warehouse: TableId,
    /// store_sales(ss_datekey, ss_itemkey, ss_custkey, ss_storekey,
    /// ss_promokey, ss_qty, ss_price, ss_netpaid)
    pub store_sales: TableId,
    /// inventory(inv_datekey, inv_itemkey, inv_warehousekey, inv_qty)
    pub inventory: TableId,
    /// Clustered PK indexes on the dimension tables.
    pub customer_pk: IndexId,
    /// Clustered PK index on item.
    pub item_pk: IndexId,
    /// Clustered PK index on store.
    pub store_pk: IndexId,
    /// NC index store_sales(ss_itemkey).
    pub ss_item: IndexId,
}

/// Number of days in date_dim (5 years).
pub const DAYS: i64 = 1825;

/// Generate the database.
pub fn build_db(scale: WorkloadScale) -> TpcdsDb {
    let s = scale.data_scale;
    let n_ss = (40_000.0 * s) as i64;
    let n_inv = (30_000.0 * s) as i64;
    let n_item = (1_000.0 * s).max(80.0) as i64;
    let n_cust = (2_000.0 * s).max(100.0) as i64;
    let mut rng = seeded(scale.seed ^ 0xd5);

    let mut date_dim = Table::new(
        "date_dim",
        Schema::new(vec![
            Column::new("d_datekey", DataType::Int),
            Column::new("d_year", DataType::Int),
            Column::new("d_moy", DataType::Int),
            Column::new("d_dom", DataType::Int),
        ]),
    );
    for d in 0..DAYS {
        date_dim
            .insert(vec![
                Value::Int(d),
                Value::Int(2019 + d / 365),
                Value::Int((d / 30) % 12 + 1),
                Value::Int(d % 30 + 1),
            ])
            .unwrap();
    }

    let mut item = Table::new(
        "item",
        Schema::new(vec![
            Column::new("i_itemkey", DataType::Int),
            Column::new("i_brand", DataType::Int),
            Column::new("i_category", DataType::Int),
            Column::new("i_price", DataType::Float),
        ]),
    );
    for i in 0..n_item {
        item.insert(vec![
            Value::Int(i),
            Value::Int(rng.gen_range(0..50)),
            Value::Int(rng.gen_range(0..10)),
            Value::Float(rng.gen_range(1.0..300.0)),
        ])
        .unwrap();
    }

    let mut customer = Table::new(
        "customer",
        Schema::new(vec![
            Column::new("cu_custkey", DataType::Int),
            Column::new("cu_demo", DataType::Int),
            Column::new("cu_state", DataType::Int),
            Column::new("cu_income", DataType::Int),
        ]),
    );
    for i in 0..n_cust {
        customer
            .insert(vec![
                Value::Int(i),
                Value::Int(rng.gen_range(0..20)),
                Value::Int(rng.gen_range(0..50)),
                Value::Int(rng.gen_range(0..120_000)),
            ])
            .unwrap();
    }

    let mut store = Table::new(
        "store",
        Schema::new(vec![
            Column::new("st_storekey", DataType::Int),
            Column::new("st_state", DataType::Int),
            Column::new("st_size", DataType::Int),
        ]),
    );
    for i in 0..20 {
        store
            .insert(vec![
                Value::Int(i),
                Value::Int(rng.gen_range(0..50)),
                Value::Int(rng.gen_range(1000..50_000)),
            ])
            .unwrap();
    }

    let mut promotion = Table::new(
        "promotion",
        Schema::new(vec![
            Column::new("p_promokey", DataType::Int),
            Column::new("p_channel", DataType::Int),
        ]),
    );
    for i in 0..60 {
        promotion
            .insert(vec![Value::Int(i), Value::Int(rng.gen_range(0..4))])
            .unwrap();
    }

    let mut warehouse = Table::new(
        "warehouse",
        Schema::new(vec![
            Column::new("w_warehousekey", DataType::Int),
            Column::new("w_state", DataType::Int),
        ]),
    );
    for i in 0..15 {
        warehouse
            .insert(vec![Value::Int(i), Value::Int(rng.gen_range(0..50))])
            .unwrap();
    }

    let item_zipf = Zipf::new(n_item as usize, 1.0);
    let cust_zipf = Zipf::new(n_cust as usize, 1.0);
    let mut store_sales = Table::new(
        "store_sales",
        Schema::new(vec![
            Column::new("ss_datekey", DataType::Int),
            Column::new("ss_itemkey", DataType::Int),
            Column::new("ss_custkey", DataType::Int),
            Column::new("ss_storekey", DataType::Int),
            Column::new("ss_promokey", DataType::Int),
            Column::new("ss_qty", DataType::Int),
            Column::new("ss_price", DataType::Float),
            Column::new("ss_netpaid", DataType::Float),
        ]),
    );
    for _ in 0..n_ss {
        let qty = rng.gen_range(1..100);
        let price: f64 = rng.gen_range(1.0..300.0);
        store_sales
            .insert(vec![
                Value::Int(rng.gen_range(0..DAYS)),
                Value::Int(item_zipf.sample(&mut rng) as i64),
                Value::Int(cust_zipf.sample(&mut rng) as i64),
                Value::Int(rng.gen_range(0..20)),
                Value::Int(rng.gen_range(0..60)),
                Value::Int(qty),
                Value::Float(price),
                Value::Float(price * qty as f64 * rng.gen_range(0.5..1.0)),
            ])
            .unwrap();
    }

    let mut inventory = Table::new(
        "inventory",
        Schema::new(vec![
            Column::new("inv_datekey", DataType::Int),
            Column::new("inv_itemkey", DataType::Int),
            Column::new("inv_warehousekey", DataType::Int),
            Column::new("inv_qty", DataType::Int),
        ]),
    );
    for _ in 0..n_inv {
        inventory
            .insert(vec![
                Value::Int(rng.gen_range(0..DAYS)),
                Value::Int(item_zipf.sample(&mut rng) as i64),
                Value::Int(rng.gen_range(0..15)),
                Value::Int(rng.gen_range(0..1000)),
            ])
            .unwrap();
    }

    let mut db = Database::new();
    let date_dim = db.add_table_analyzed(date_dim);
    let item = db.add_table_analyzed(item);
    let customer = db.add_table_analyzed(customer);
    let store = db.add_table_analyzed(store);
    let promotion = db.add_table_analyzed(promotion);
    let warehouse = db.add_table_analyzed(warehouse);
    let store_sales = db.add_table_analyzed(store_sales);
    let inventory = db.add_table_analyzed(inventory);
    let customer_pk = db.create_btree_index("pk_customer", customer, vec![0], true);
    let item_pk = db.create_btree_index("pk_item", item, vec![0], true);
    let store_pk = db.create_btree_index("pk_store", store, vec![0], true);
    let ss_item = db.create_btree_index("ix_ss_item", store_sales, vec![1], false);

    TpcdsDb {
        db,
        date_dim,
        item,
        customer,
        store,
        promotion,
        warehouse,
        store_sales,
        inventory,
        customer_pk,
        item_pk,
        store_pk,
        ss_item,
    }
}

/// Build the full workload (db + queries).
pub fn workload(scale: WorkloadScale) -> Workload {
    let t = build_db(scale);
    let queries = queries(&t);
    Workload {
        name: "TPC-DS",
        db: t.db,
        queries,
    }
}

fn nq(name: &str, plan: lqs_plan::PhysicalPlan) -> NamedQuery {
    NamedQuery {
        name: name.to_string(),
        plan,
    }
}

/// The Figure 11 plan: a big probe into a scalar hash aggregate whose output
/// is a single row — the worst case for output-only blocking progress.
pub fn q13_plan(t: &TpcdsDb) -> lqs_plan::PhysicalPlan {
    let mut b = PlanBuilder::new(&t.db);
    let cust = b.table_scan_filtered(t.customer, Expr::col(1).lt(Expr::lit(10i64)), true);
    let ss = b.table_scan_filtered(
        t.store_sales,
        Expr::col(5)
            .ge(Expr::lit(5i64))
            .and(Expr::col(6).lt(Expr::lit(250.0))),
        true,
    );
    // probe ss ++ build customer: ss(0..8) ++ customer(8..12)
    let jc = b.hash_join(JoinKind::Inner, cust, ss, vec![0], vec![2]);
    let store = b.table_scan(t.store);
    // probe jc ++ build store: jc(0..12) ++ store(12..15)
    let js = b.hash_join(JoinKind::Inner, store, jc, vec![0], vec![3]);
    let agg = b.hash_aggregate(
        js,
        vec![],
        vec![
            Aggregate::of_col(AggFunc::Avg, 5),
            Aggregate::of_col(AggFunc::Avg, 6),
            Aggregate::of_col(AggFunc::Sum, 7),
            Aggregate::count_star(),
        ],
    );
    b.finish(agg)
}

/// The Figure 12 plan (Q21-shape): 6 pipelines with weights differing by
/// more than an order of magnitude — three cheap dimension build pipelines,
/// one expensive probe pipeline, the aggregate's output and a final sort.
pub fn q21_plan(t: &TpcdsDb) -> lqs_plan::PhysicalPlan {
    let mut b = PlanBuilder::new(&t.db);
    let date = b.table_scan_filtered(
        t.date_dim,
        Expr::col(0)
            .ge(Expr::lit(DAYS / 2 - 30))
            .and(Expr::col(0).le(Expr::lit(DAYS / 2 + 30))),
        true,
    );
    let inv = b.table_scan(t.inventory);
    // probe inventory ++ build date: inv(0..4) ++ date(4..8)
    let jd = b.hash_join(JoinKind::Inner, date, inv, vec![0], vec![0]);
    let item = b.table_scan(t.item);
    // probe jd ++ build item: jd(0..8) ++ item(8..12)
    let ji = b.hash_join(JoinKind::Inner, item, jd, vec![0], vec![1]);
    let wh = b.table_scan(t.warehouse);
    // probe ji ++ build warehouse: ji(0..12) ++ warehouse(12..14)
    let jw = b.hash_join(JoinKind::Inner, wh, ji, vec![0], vec![2]);
    let agg = b.hash_aggregate(jw, vec![12, 8], vec![Aggregate::of_col(AggFunc::Sum, 3)]);
    let sort = b.sort(agg, vec![SortKey::asc(0), SortKey::asc(1)]);
    b.finish(sort)
}

/// The Figure 13 plan (Q36-shape): sales by category/state rollup.
pub fn q36_plan(t: &TpcdsDb) -> lqs_plan::PhysicalPlan {
    let mut b = PlanBuilder::new(&t.db);
    let ss = b.table_scan(t.store_sales);
    let item = b.table_scan(t.item);
    // probe ss ++ build item: ss(0..8) ++ item(8..12)
    let ji = b.hash_join(JoinKind::Inner, item, ss, vec![0], vec![1]);
    let store = b.table_scan(t.store);
    // probe ji ++ build store: ji(0..12) ++ store(12..15)
    let js = b.hash_join(JoinKind::Inner, store, ji, vec![0], vec![3]);
    let agg = b.hash_aggregate(
        js,
        vec![10, 13],
        vec![
            Aggregate::of_col(AggFunc::Sum, 7),
            Aggregate::of_col(AggFunc::Sum, 6),
        ],
    );
    let ratio = b.compute_scalar(
        agg,
        vec![Expr::Arith {
            op: lqs_plan::ArithOp::Div,
            lhs: Box::new(Expr::col(2)),
            rhs: Box::new(Expr::col(3)),
        }],
    );
    let top = b.top_n_sort(ratio, 100, vec![SortKey::desc(4)]);
    b.finish(top)
}

/// All 12 query plans.
pub fn queries(t: &TpcdsDb) -> Vec<NamedQuery> {
    let mut out = Vec::new();
    out.push(nq("tpcds-q13", q13_plan(t)));
    out.push(nq("tpcds-q21", q21_plan(t)));
    out.push(nq("tpcds-q36", q36_plan(t)));

    // Q3: brand revenue by year for November.
    {
        let mut b = PlanBuilder::new(&t.db);
        let date = b.table_scan_filtered(t.date_dim, Expr::col(2).eq(Expr::lit(11i64)), true);
        let ss = b.table_scan(t.store_sales);
        // ss(0..8) ++ date(8..12)
        let jd = b.hash_join(JoinKind::Inner, date, ss, vec![0], vec![0]);
        let item = b.table_scan_filtered(t.item, Expr::col(1).lt(Expr::lit(25i64)), true);
        // jd(0..12) ++ item(12..16)
        let ji = b.hash_join(JoinKind::Inner, item, jd, vec![0], vec![1]);
        let agg = b.hash_aggregate(ji, vec![9, 13], vec![Aggregate::of_col(AggFunc::Sum, 7)]);
        let sort = b.sort(agg, vec![SortKey::asc(0), SortKey::desc(2)]);
        out.push(nq("tpcds-q03", b.finish(sort)));
    }

    // Q7: average quantities for a demographic + promotion slice.
    {
        let mut b = PlanBuilder::new(&t.db);
        let cust = b.table_scan_filtered(t.customer, Expr::col(1).eq(Expr::lit(5i64)), true);
        let ss = b.table_scan(t.store_sales);
        // ss(0..8) ++ cust(8..12)
        let jc = b.hash_join(JoinKind::Inner, cust, ss, vec![0], vec![2]);
        let promo = b.table_scan_filtered(t.promotion, Expr::col(1).lt(Expr::lit(2i64)), true);
        // jc(0..12) ++ promo(12..14)
        let jp = b.hash_join(JoinKind::Inner, promo, jc, vec![0], vec![4]);
        let item_seek = b.index_seek(t.item_pk, SeekRange::eq(vec![SeekKey::OuterRef(1)]));
        // jp(0..14) ++ item(14..18)
        let ji = b.nested_loops(JoinKind::Inner, jp, item_seek, None, 128);
        let agg = b.hash_aggregate(
            ji,
            vec![14],
            vec![
                Aggregate::of_col(AggFunc::Avg, 5),
                Aggregate::of_col(AggFunc::Avg, 6),
            ],
        );
        let top = b.top_n_sort(agg, 100, vec![SortKey::asc(0)]);
        out.push(nq("tpcds-q07", b.finish(top)));
    }

    // Q19: brand revenue for a store state, customer joined by NL seek.
    {
        let mut b = PlanBuilder::new(&t.db);
        let ss = b.table_scan_filtered(t.store_sales, Expr::col(5).gt(Expr::lit(10i64)), true);
        let cust_seek = b.index_seek(t.customer_pk, SeekRange::eq(vec![SeekKey::OuterRef(2)]));
        // ss(0..8) ++ cust(8..12)
        let jc = b.nested_loops(JoinKind::Inner, ss, cust_seek, None, 512);
        let store_seek = b.index_seek(t.store_pk, SeekRange::eq(vec![SeekKey::OuterRef(3)]));
        // jc(0..12) ++ store(12..15)
        let js = b.nested_loops(JoinKind::Inner, jc, store_seek, None, 512);
        let sfilter = b.filter(js, Expr::col(13).lt(Expr::lit(25i64)));
        let item = b.table_scan(t.item);
        // sfilter(0..15) ++ item(15..19)
        let ji = b.hash_join(JoinKind::Inner, item, sfilter, vec![0], vec![1]);
        let agg = b.hash_aggregate(ji, vec![16], vec![Aggregate::of_col(AggFunc::Sum, 7)]);
        let sort = b.sort(agg, vec![SortKey::desc(1)]);
        out.push(nq("tpcds-q19", b.finish(sort)));
    }

    // Q25-like: merge join of two fact slices on item key (explicit sorts).
    {
        let mut b = PlanBuilder::new(&t.db);
        let ss = b.table_scan_filtered(t.store_sales, Expr::col(3).lt(Expr::lit(10i64)), true);
        let ss_sorted = b.sort(ss, vec![SortKey::asc(1)]);
        let inv = b.table_scan_filtered(t.inventory, Expr::col(3).gt(Expr::lit(500i64)), true);
        let inv_sorted = b.sort(inv, vec![SortKey::asc(1)]);
        // merge: ss(0..8) ++ inv(8..12)
        let m = b.merge_join(JoinKind::Inner, ss_sorted, inv_sorted, vec![1], vec![1]);
        let agg = b.stream_aggregate(m, vec![1], vec![Aggregate::of_col(AggFunc::Sum, 5)]);
        let top = b.top_n_sort(agg, 50, vec![SortKey::desc(1)]);
        out.push(nq("tpcds-q25", b.finish(top)));
    }

    // Q42: category revenue by year via exchange-parallel aggregation.
    {
        let mut b = PlanBuilder::new(&t.db);
        let date = b.table_scan(t.date_dim);
        let ss = b.table_scan(t.store_sales);
        let jd = b.hash_join(JoinKind::Inner, date, ss, vec![0], vec![0]);
        let item = b.table_scan(t.item);
        let ji = b.hash_join(JoinKind::Inner, item, jd, vec![0], vec![1]);
        let ex = b.exchange(ji, ExchangeKind::RepartitionStreams, 8);
        let agg = b.hash_aggregate(ex, vec![9, 14], vec![Aggregate::of_col(AggFunc::Sum, 7)]);
        let ga = b.exchange(agg, ExchangeKind::GatherStreams, 8);
        let sort = b.sort(ga, vec![SortKey::desc(2)]);
        out.push(nq("tpcds-q42", b.finish(sort)));
    }

    // Q52-like: brand revenue for one month, semi-join on promoted items.
    {
        let mut b = PlanBuilder::new(&t.db);
        let promo_items =
            b.table_scan_filtered(t.store_sales, Expr::col(4).lt(Expr::lit(10i64)), true);
        let ss = b.table_scan(t.store_sales);
        // semi: probe ss against promoted item keys
        let semi = b.hash_join(JoinKind::LeftSemi, promo_items, ss, vec![1], vec![1]);
        let agg = b.hash_aggregate(semi, vec![1], vec![Aggregate::of_col(AggFunc::Sum, 7)]);
        let top = b.top_n_sort(agg, 100, vec![SortKey::desc(1)]);
        out.push(nq("tpcds-q52", b.finish(top)));
    }

    // Q55: brand revenue, two-level aggregate with spooled subresult.
    {
        let mut b = PlanBuilder::new(&t.db);
        let ss = b.table_scan(t.store_sales);
        let per_item = b.hash_aggregate(ss, vec![1], vec![Aggregate::of_col(AggFunc::Sum, 7)]);
        let spool = b.spool(per_item, false);
        let item = b.table_scan(t.item);
        // probe item ++ build spool: item(0..4) ++ per_item(4..6)
        let j = b.hash_join(JoinKind::Inner, spool, item, vec![0], vec![0]);
        let agg = b.hash_aggregate(j, vec![1], vec![Aggregate::of_col(AggFunc::Sum, 5)]);
        let top = b.top_n_sort(agg, 25, vec![SortKey::desc(1)]);
        out.push(nq("tpcds-q55", b.finish(top)));
    }

    // Q82-like: items with inventory in a range that ever sold — anti join.
    {
        let mut b = PlanBuilder::new(&t.db);
        let inv = b.table_scan_filtered(
            t.inventory,
            Expr::col(3)
                .ge(Expr::lit(100i64))
                .and(Expr::col(3).le(Expr::lit(500i64))),
            true,
        );
        let ss = b.table_scan(t.store_sales);
        // anti: probe inventory rows with no sale of the same item
        let anti = b.hash_join(JoinKind::LeftAnti, ss, inv, vec![1], vec![1]);
        let item_seek = b.index_seek(t.item_pk, SeekRange::eq(vec![SeekKey::OuterRef(1)]));
        // anti(0..4) ++ item(4..8)
        let ji = b.nested_loops(JoinKind::Inner, anti, item_seek, None, 64);
        let dist = b.add(
            lqs_plan::PhysicalOp::DistinctSort {
                keys: vec![SortKey::asc(4)],
            },
            vec![ji],
        );
        out.push(nq("tpcds-q82", b.finish(dist)));
    }

    // Q96-like: scalar count through buffered NL seeks.
    {
        let mut b = PlanBuilder::new(&t.db);
        let ss = b.table_scan_filtered(
            t.store_sales,
            Expr::col(0)
                .lt(Expr::lit(DAYS / 4))
                .and(Expr::col(5).gt(Expr::lit(50i64))),
            true,
        );
        let cust_seek = b.index_seek(t.customer_pk, SeekRange::eq(vec![SeekKey::OuterRef(2)]));
        let jc = b.nested_loops(JoinKind::Inner, ss, cust_seek, None, 4096);
        let ex = b.exchange(jc, ExchangeKind::GatherStreams, 4);
        let agg = b.stream_aggregate(ex, vec![], vec![Aggregate::count_star()]);
        out.push(nq("tpcds-q96", b.finish(agg)));
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lqs_exec::{execute, ExecOptions};
    use lqs_plan::PipelineSet;

    fn scale() -> WorkloadScale {
        WorkloadScale {
            data_scale: 0.15,
            query_limit: usize::MAX,
            seed: 5,
        }
    }

    #[test]
    fn all_queries_execute() {
        let t = build_db(scale());
        for q in queries(&t) {
            let run = execute(&t.db, &q.plan, &ExecOptions::default());
            assert!(run.duration_ns > 0, "{} did no work", q.name);
        }
    }

    #[test]
    fn q13_is_high_reduction_aggregate() {
        let t = build_db(scale());
        let plan = q13_plan(&t);
        let run = execute(&t.db, &plan, &ExecOptions::default());
        // Scalar aggregate: one output row from thousands of inputs.
        assert_eq!(run.rows_returned, 1);
        let agg = plan.root();
        assert!(run.final_counters[agg.0].rows_input > 100);
    }

    #[test]
    fn q21_has_six_pipelines() {
        let t = build_db(scale());
        let plan = q21_plan(&t);
        let pipes = PipelineSet::decompose(&plan);
        // 3 hash-join builds + probe pipeline (sink = agg) + agg output
        // (sink = sort) + sort output = 6.
        assert_eq!(pipes.len(), 6);
    }

    #[test]
    fn q21_pipeline_weights_differ_by_order_of_magnitude() {
        let t = build_db(scale());
        let plan = q21_plan(&t);
        let statics = lqs_progress_statics_shim::build(&plan, &t.db);
        let durations = statics;
        let max = durations.iter().cloned().fold(0.0f64, f64::max);
        let positives: Vec<f64> = durations.iter().cloned().filter(|d| *d > 0.0).collect();
        let min = positives.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min > 10.0, "pipeline durations {durations:?}");
    }

    /// Minimal duplicate of the §4.6 pipeline-duration computation, to keep
    /// `lqs-workloads` free of a dev-dependency cycle on `lqs-progress`.
    mod lqs_progress_statics_shim {
        use lqs_plan::{PhysicalPlan, PipelineSet};
        use lqs_storage::Database;

        pub fn build(plan: &PhysicalPlan, _db: &Database) -> Vec<f64> {
            let pipes = PipelineSet::decompose(plan);
            pipes
                .pipelines()
                .iter()
                .map(|p| {
                    p.nodes
                        .iter()
                        .map(|&n| {
                            let node = plan.node(n);
                            node.est_cpu_ns.max(node.est_io_pages * 40_000.0)
                        })
                        .sum()
                })
                .collect()
        }
    }
}
