//! TPC-H-shaped workload with Zipf-skewed foreign keys (the paper evaluates
//! on TPC-H "with the data generated with a skew-parameter of Z = 1").
//!
//! Two physical designs reproduce the §5.4 experiment:
//! * [`PhysicalDesign::RowStore`] — clustered PK indexes plus the secondary
//!   indexes a tuning advisor recommends for this workload; plans use index
//!   seeks, nested loops, merge joins, sorts and exchanges.
//! * [`PhysicalDesign::Columnstore`] — a columnstore index on every large
//!   table; plans collapse to batch-mode columnstore scans + hash joins
//!   (Figure 19's operator-mix contrast).
//!
//! Queries are authored as plan shapes mirroring the corresponding TPC-H
//! queries' showplans; absolute semantics are simplified (no SQL frontend by
//! design) but operator mixes, pipeline structures and cardinality-error
//! opportunities match the originals.

use crate::rng::{seeded, string_pool, Zipf};
use crate::suite::{NamedQuery, Workload, WorkloadScale};
use lqs_plan::{
    AggFunc, Aggregate, ExchangeKind, Expr, IndexOutput, JoinKind, NodeId, PhysicalOp, PlanBuilder,
    SeekKey, SeekRange, SortKey,
};
use lqs_storage::{
    Column, ColumnstoreId, DataType, Database, IndexId, Schema, Table, TableId, Value,
};
use rand::Rng;

/// Physical design variants for the §5.4 columnstore experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhysicalDesign {
    /// B+tree clustered + secondary indexes (DTA-style).
    RowStore,
    /// Nonclustered columnstore index on every large table.
    Columnstore,
}

/// Catalog handles for the generated TPC-H database.
pub struct TpchDb {
    /// The database.
    pub db: Database,
    /// region(r_regionkey, r_name)
    pub region: TableId,
    /// nation(n_nationkey, n_regionkey, n_name)
    pub nation: TableId,
    /// supplier(s_suppkey, s_nationkey, s_acctbal)
    pub supplier: TableId,
    /// customer(c_custkey, c_nationkey, c_mktsegment, c_acctbal)
    pub customer: TableId,
    /// part(p_partkey, p_brand, p_type, p_size, p_retailprice)
    pub part: TableId,
    /// partsupp(ps_partkey, ps_suppkey, ps_supplycost)
    pub partsupp: TableId,
    /// orders(o_orderkey, o_custkey, o_orderdate, o_totalprice, o_orderpriority)
    pub orders: TableId,
    /// lineitem(l_orderkey, l_linenumber, l_partkey, l_suppkey, l_quantity,
    /// l_extendedprice, l_discount, l_shipdate, l_returnflag, l_linestatus)
    pub lineitem: TableId,
    /// Row-store secondary indexes (present in `RowStore` design).
    pub ix: Option<RowIndexes>,
    /// Columnstore indexes (present in `Columnstore` design).
    pub cs: Option<CsIndexes>,
    /// The design the database was built with.
    pub design: PhysicalDesign,
}

/// Secondary B+tree indexes of the row-store design.
pub struct RowIndexes {
    /// orders clustered on o_orderkey.
    pub orders_pk: IndexId,
    /// orders(o_custkey).
    pub orders_custkey: IndexId,
    /// orders(o_orderdate).
    pub orders_date: IndexId,
    /// lineitem clustered on (l_orderkey, l_linenumber).
    pub lineitem_pk: IndexId,
    /// lineitem(l_partkey).
    pub lineitem_partkey: IndexId,
    /// lineitem(l_suppkey).
    pub lineitem_suppkey: IndexId,
    /// lineitem(l_shipdate).
    pub lineitem_shipdate: IndexId,
    /// customer clustered on c_custkey.
    pub customer_pk: IndexId,
    /// supplier clustered on s_suppkey.
    pub supplier_pk: IndexId,
    /// part clustered on p_partkey.
    pub part_pk: IndexId,
    /// partsupp(ps_partkey).
    pub partsupp_partkey: IndexId,
}

/// Columnstore indexes of the columnstore design.
pub struct CsIndexes {
    /// Columnstore over lineitem.
    pub lineitem: ColumnstoreId,
    /// Columnstore over orders.
    pub orders: ColumnstoreId,
    /// Columnstore over customer.
    pub customer: ColumnstoreId,
    /// Columnstore over part.
    pub part: ColumnstoreId,
    /// Columnstore over partsupp.
    pub partsupp: ColumnstoreId,
    /// Columnstore over supplier.
    pub supplier: ColumnstoreId,
}

/// Days in the simulated 7-year order-date domain.
pub const DATE_DOMAIN: i32 = 2555;

/// Generate the TPC-H database at `scale.data_scale` with Zipf z=1 skew.
pub fn build_db(scale: WorkloadScale, design: PhysicalDesign) -> TpchDb {
    build_db_with_skew(scale, design, 1.0)
}

/// Generate with an explicit Zipf exponent.
pub fn build_db_with_skew(scale: WorkloadScale, design: PhysicalDesign, z: f64) -> TpchDb {
    let s = scale.data_scale;
    let n_lineitem = (28_000.0 * s) as i64;
    let n_orders = (7_000.0 * s) as i64;
    let n_customer = (700.0 * s).max(50.0) as i64;
    let n_part = (900.0 * s).max(60.0) as i64;
    let n_supplier = (60.0 * s).max(10.0) as i64;
    let n_partsupp = n_part * 4;
    let mut rng = seeded(scale.seed ^ 0x7c48);
    let names = string_pool(&mut rng, 64, 18);

    let mut region = Table::new(
        "region",
        Schema::new(vec![
            Column::new("r_regionkey", DataType::Int),
            Column::new("r_name", DataType::Str),
        ]),
    );
    for i in 0..5 {
        region
            .insert(vec![Value::Int(i), Value::str(names[i as usize].as_str())])
            .unwrap();
    }

    let mut nation = Table::new(
        "nation",
        Schema::new(vec![
            Column::new("n_nationkey", DataType::Int),
            Column::new("n_regionkey", DataType::Int),
            Column::new("n_name", DataType::Str),
        ]),
    );
    for i in 0..25 {
        nation
            .insert(vec![
                Value::Int(i),
                Value::Int(i % 5),
                Value::str(names[(i + 5) as usize].as_str()),
            ])
            .unwrap();
    }

    let mut supplier = Table::new(
        "supplier",
        Schema::new(vec![
            Column::new("s_suppkey", DataType::Int),
            Column::new("s_nationkey", DataType::Int),
            Column::new("s_acctbal", DataType::Float),
        ]),
    );
    for i in 0..n_supplier {
        supplier
            .insert(vec![
                Value::Int(i),
                Value::Int(rng.gen_range(0..25)),
                Value::Float(rng.gen_range(-999.0..10_000.0)),
            ])
            .unwrap();
    }

    let mut customer = Table::new(
        "customer",
        Schema::new(vec![
            Column::new("c_custkey", DataType::Int),
            Column::new("c_nationkey", DataType::Int),
            Column::new("c_mktsegment", DataType::Int),
            Column::new("c_acctbal", DataType::Float),
        ]),
    );
    for i in 0..n_customer {
        customer
            .insert(vec![
                Value::Int(i),
                Value::Int(rng.gen_range(0..25)),
                Value::Int(rng.gen_range(0..5)),
                Value::Float(rng.gen_range(-999.0..10_000.0)),
            ])
            .unwrap();
    }

    let mut part = Table::new(
        "part",
        Schema::new(vec![
            Column::new("p_partkey", DataType::Int),
            Column::new("p_brand", DataType::Int),
            Column::new("p_type", DataType::Int),
            Column::new("p_size", DataType::Int),
            Column::new("p_retailprice", DataType::Float),
        ]),
    );
    for i in 0..n_part {
        part.insert(vec![
            Value::Int(i),
            Value::Int(rng.gen_range(0..25)),
            Value::Int(rng.gen_range(0..150)),
            Value::Int(rng.gen_range(1..51)),
            Value::Float(900.0 + (i % 200) as f64),
        ])
        .unwrap();
    }

    let mut partsupp = Table::new(
        "partsupp",
        Schema::new(vec![
            Column::new("ps_partkey", DataType::Int),
            Column::new("ps_suppkey", DataType::Int),
            Column::new("ps_supplycost", DataType::Float),
        ]),
    );
    for i in 0..n_partsupp {
        partsupp
            .insert(vec![
                Value::Int(i % n_part),
                Value::Int(rng.gen_range(0..n_supplier)),
                Value::Float(rng.gen_range(1.0..1000.0)),
            ])
            .unwrap();
    }

    // Skewed foreign keys on the fact tables.
    let cust_zipf = Zipf::new(n_customer as usize, z);
    let part_zipf = Zipf::new(n_part as usize, z);
    let supp_zipf = Zipf::new(n_supplier as usize, z);

    let mut orders = Table::new(
        "orders",
        Schema::new(vec![
            Column::new("o_orderkey", DataType::Int),
            Column::new("o_custkey", DataType::Int),
            Column::new("o_orderdate", DataType::Date),
            Column::new("o_totalprice", DataType::Float),
            Column::new("o_orderpriority", DataType::Int),
        ]),
    );
    for i in 0..n_orders {
        orders
            .insert(vec![
                Value::Int(i),
                Value::Int(cust_zipf.sample(&mut rng) as i64),
                Value::Date(rng.gen_range(0..DATE_DOMAIN)),
                Value::Float(rng.gen_range(800.0..500_000.0)),
                Value::Int(rng.gen_range(0..5)),
            ])
            .unwrap();
    }

    let mut lineitem = Table::new(
        "lineitem",
        Schema::new(vec![
            Column::new("l_orderkey", DataType::Int),
            Column::new("l_linenumber", DataType::Int),
            Column::new("l_partkey", DataType::Int),
            Column::new("l_suppkey", DataType::Int),
            Column::new("l_quantity", DataType::Int),
            Column::new("l_extendedprice", DataType::Float),
            Column::new("l_discount", DataType::Float),
            Column::new("l_shipdate", DataType::Date),
            Column::new("l_returnflag", DataType::Int),
            Column::new("l_linestatus", DataType::Int),
        ]),
    );
    for i in 0..n_lineitem {
        let orderkey = i * n_orders / n_lineitem; // ~4 lines per order, clustered
        lineitem
            .insert(vec![
                Value::Int(orderkey),
                Value::Int(i % 7),
                Value::Int(part_zipf.sample(&mut rng) as i64),
                Value::Int(supp_zipf.sample(&mut rng) as i64),
                Value::Int(rng.gen_range(1..51)),
                Value::Float(rng.gen_range(900.0..105_000.0)),
                Value::Float(rng.gen_range(0.0..0.11)),
                Value::Date(rng.gen_range(0..DATE_DOMAIN)),
                Value::Int(rng.gen_range(0..3)),
                Value::Int(rng.gen_range(0..2)),
            ])
            .unwrap();
    }

    let mut db = Database::new();
    let region = db.add_table_analyzed(region);
    let nation = db.add_table_analyzed(nation);
    let supplier = db.add_table_analyzed(supplier);
    let customer = db.add_table_analyzed(customer);
    let part = db.add_table_analyzed(part);
    let partsupp = db.add_table_analyzed(partsupp);
    let orders = db.add_table_analyzed(orders);
    let lineitem = db.add_table_analyzed(lineitem);

    let (ix, cs) = match design {
        PhysicalDesign::RowStore => {
            let ix = RowIndexes {
                orders_pk: db.create_btree_index("pk_orders", orders, vec![0], true),
                orders_custkey: db.create_btree_index("ix_o_custkey", orders, vec![1], false),
                orders_date: db.create_btree_index("ix_o_orderdate", orders, vec![2], false),
                lineitem_pk: db.create_btree_index("pk_lineitem", lineitem, vec![0, 1], true),
                lineitem_partkey: db.create_btree_index("ix_l_partkey", lineitem, vec![2], false),
                lineitem_suppkey: db.create_btree_index("ix_l_suppkey", lineitem, vec![3], false),
                lineitem_shipdate: db.create_btree_index("ix_l_shipdate", lineitem, vec![7], false),
                customer_pk: db.create_btree_index("pk_customer", customer, vec![0], true),
                supplier_pk: db.create_btree_index("pk_supplier", supplier, vec![0], true),
                part_pk: db.create_btree_index("pk_part", part, vec![0], true),
                partsupp_partkey: db.create_btree_index("ix_ps_partkey", partsupp, vec![0], false),
            };
            (Some(ix), None)
        }
        PhysicalDesign::Columnstore => {
            let cs = CsIndexes {
                lineitem: db.create_columnstore_index("cs_lineitem", lineitem),
                orders: db.create_columnstore_index("cs_orders", orders),
                customer: db.create_columnstore_index("cs_customer", customer),
                part: db.create_columnstore_index("cs_part", part),
                partsupp: db.create_columnstore_index("cs_partsupp", partsupp),
                supplier: db.create_columnstore_index("cs_supplier", supplier),
            };
            (None, Some(cs))
        }
    };

    TpchDb {
        db,
        region,
        nation,
        supplier,
        customer,
        part,
        partsupp,
        orders,
        lineitem,
        ix,
        cs,
        design,
    }
}

/// Build the workload: database + query set for the given design.
pub fn workload(scale: WorkloadScale, design: PhysicalDesign) -> Workload {
    let tpch = build_db(scale, design);
    let queries = queries(&tpch);
    Workload {
        name: match design {
            PhysicalDesign::RowStore => "TPC-H",
            PhysicalDesign::Columnstore => "TPC-H ColumnStore",
        },
        db: tpch.db,
        queries,
    }
}

/// All query plans for the database's physical design.
pub fn queries(t: &TpchDb) -> Vec<NamedQuery> {
    match t.design {
        PhysicalDesign::RowStore => row_queries(t),
        PhysicalDesign::Columnstore => cs_queries(t),
    }
}

fn nq(name: &str, plan: lqs_plan::PhysicalPlan) -> NamedQuery {
    NamedQuery {
        name: name.to_string(),
        plan,
    }
}

/// Revenue expression `l_extendedprice * (1 - l_discount)` given the two
/// column ordinals.
fn revenue(extprice: usize, discount: usize) -> Expr {
    Expr::Arith {
        op: lqs_plan::ArithOp::Mul,
        lhs: Box::new(Expr::col(extprice)),
        rhs: Box::new(Expr::Arith {
            op: lqs_plan::ArithOp::Sub,
            lhs: Box::new(Expr::lit(1.0)),
            rhs: Box::new(Expr::col(discount)),
        }),
    }
}

// ---------------------------------------------------------------------------
// Row-store design queries
// ---------------------------------------------------------------------------

fn row_queries(t: &TpchDb) -> Vec<NamedQuery> {
    let ix = t.ix.as_ref().expect("row design");
    let mut out = Vec::new();

    // Q1: pricing summary — big scan, pushed date filter, hash agg, sort.
    {
        let mut b = PlanBuilder::new(&t.db);
        let scan = b.table_scan_filtered(
            t.lineitem,
            Expr::col(7).le(Expr::lit(Value::Date(DATE_DOMAIN - 90))),
            true,
        );
        let rev = b.compute_scalar(scan, vec![revenue(5, 6)]); // col 10
        let agg = b.hash_aggregate(
            rev,
            vec![8, 9],
            vec![
                Aggregate::of_col(AggFunc::Sum, 4),
                Aggregate::of_col(AggFunc::Sum, 5),
                Aggregate::of_col(AggFunc::Sum, 10),
                Aggregate::of_col(AggFunc::Avg, 4),
                Aggregate::count_star(),
            ],
        );
        let sort = b.sort(agg, vec![SortKey::asc(0), SortKey::asc(1)]);
        out.push(nq("tpch-q01", b.finish(sort)));
    }

    // Q3: shipping priority — customer → orders (index NL) → lineitem
    // (index NL), buffered loops, top-N.
    {
        let mut b = PlanBuilder::new(&t.db);
        let cust = b.table_scan_filtered(t.customer, Expr::col(2).eq(Expr::lit(3i64)), true);
        let ord_seek = b.index_seek(ix.orders_custkey, SeekRange::eq(vec![SeekKey::OuterRef(0)]));
        // customer(0..4) ++ orders(4..9)
        let j1 = b.nested_loops(JoinKind::Inner, cust, ord_seek, None, 256);
        let date_filter = b.filter(j1, Expr::col(6).lt(Expr::lit(Value::Date(DATE_DOMAIN / 2))));
        let li_seek = b.index_seek(ix.lineitem_pk, SeekRange::eq(vec![SeekKey::OuterRef(4)]));
        // prev(0..9) ++ lineitem(9..19)
        let j2 = b.nested_loops(JoinKind::Inner, date_filter, li_seek, None, 256);
        let ship_filter = b.filter(
            j2,
            Expr::col(16).gt(Expr::lit(Value::Date(DATE_DOMAIN / 2))),
        );
        let rev = b.compute_scalar(ship_filter, vec![revenue(14, 15)]); // col 19
        let agg = b.hash_aggregate(rev, vec![9, 6], vec![Aggregate::of_col(AggFunc::Sum, 19)]);
        let top = b.top_n_sort(agg, 10, vec![SortKey::desc(2)]);
        out.push(nq("tpch-q03", b.finish(top)));
    }

    // Q5: local supplier volume — 6-table join chain of hash joins.
    {
        let mut b = PlanBuilder::new(&t.db);
        let region = b.table_scan_filtered(t.region, Expr::col(0).eq(Expr::lit(2i64)), true);
        let nation = b.table_scan(t.nation);
        // probe nation ++ build region: nation(0..3) region(3..5)
        let jn = b.hash_join(JoinKind::Inner, region, nation, vec![0], vec![1]);
        let supplier = b.table_scan(t.supplier);
        // supplier(0..3) ++ jn(3..8)
        let js = b.hash_join(JoinKind::Inner, jn, supplier, vec![0], vec![1]);
        let lineitem = b.table_scan(t.lineitem);
        // lineitem(0..10) ++ js(10..18)
        let jl = b.hash_join(JoinKind::Inner, js, lineitem, vec![0], vec![3]);
        let orders = b.table_scan_filtered(
            t.orders,
            Expr::col(2).lt(Expr::lit(Value::Date(DATE_DOMAIN / 3))),
            true,
        );
        // jl(0..18) ++ orders(18..23)  (probe = jl on l_orderkey)
        let jo = b.hash_join(JoinKind::Inner, orders, jl, vec![0], vec![0]);
        let customer = b.table_scan(t.customer);
        // customer(0..4) ++ jo(4..27)
        let jc = b.hash_join(JoinKind::Inner, jo, customer, vec![22], vec![0]);
        // c_nationkey must match s_nationkey (jo's supplier block is at
        // 4+10=14..17, s_nationkey = 15).
        let nfilter = b.filter(jc, Expr::col(1).eq(Expr::col(15)));
        let rev = b.compute_scalar(nfilter, vec![revenue(9, 10)]); // col 27
                                                                   // group by n_name: nation block inside jo: jo offset 4 → jl 0..18 →
                                                                   // js at 10..18 → nation at 13..16 → n_name = 4 + 10 + 3 + 2 = 19.
        let agg = b.hash_aggregate(rev, vec![19], vec![Aggregate::of_col(AggFunc::Sum, 27)]);
        let sort = b.sort(agg, vec![SortKey::desc(1)]);
        out.push(nq("tpch-q05", b.finish(sort)));
    }

    // Q6: forecasting revenue — pure pushed-filter scan + scalar aggregate.
    {
        let mut b = PlanBuilder::new(&t.db);
        let pred = Expr::col(7)
            .ge(Expr::lit(Value::Date(DATE_DOMAIN / 4)))
            .and(Expr::col(7).lt(Expr::lit(Value::Date(DATE_DOMAIN / 2))))
            .and(Expr::col(6).ge(Expr::lit(0.03)))
            .and(Expr::col(6).le(Expr::lit(0.07)))
            .and(Expr::col(4).lt(Expr::lit(24i64)));
        let scan = b.table_scan_filtered(t.lineitem, pred, true);
        let rev = b.compute_scalar(scan, vec![revenue(5, 6)]);
        let agg = b.stream_aggregate(rev, vec![], vec![Aggregate::of_col(AggFunc::Sum, 10)]);
        out.push(nq("tpch-q06", b.finish(agg)));
    }

    // Q9-like: product type profit — part → partsupp → lineitem (skewed
    // keys) → orders via index NL; exchange on top.
    {
        let mut b = PlanBuilder::new(&t.db);
        let part = b.table_scan_filtered(t.part, Expr::col(2).lt(Expr::lit(30i64)), true);
        let partsupp = b.table_scan(t.partsupp);
        // partsupp(0..3) ++ part(3..8)
        let jp = b.hash_join(JoinKind::Inner, part, partsupp, vec![0], vec![0]);
        let lineitem = b.table_scan(t.lineitem);
        // lineitem(0..10) ++ jp(10..18)
        let jl = b.hash_join(JoinKind::Inner, jp, lineitem, vec![0, 1], vec![2, 3]);
        let ord_seek = b.index_seek(ix.orders_pk, SeekRange::eq(vec![SeekKey::OuterRef(0)]));
        // jl(0..18) ++ orders(18..23)
        let jo = b.nested_loops(JoinKind::Inner, jl, ord_seek, None, 512);
        let year = b.compute_scalar(
            jo,
            vec![Expr::Arith {
                op: lqs_plan::ArithOp::Div,
                lhs: Box::new(Expr::col(20)),
                rhs: Box::new(Expr::lit(365i64)),
            }],
        ); // col 23
        let ex = b.exchange(year, ExchangeKind::RepartitionStreams, 4);
        let profit = b.compute_scalar(ex, vec![revenue(5, 6)]); // col 24
        let agg = b.hash_aggregate(profit, vec![23], vec![Aggregate::of_col(AggFunc::Sum, 24)]);
        let gather = b.exchange(agg, ExchangeKind::GatherStreams, 4);
        let sort = b.sort(gather, vec![SortKey::asc(0)]);
        out.push(nq("tpch-q09", b.finish(sort)));
    }

    // Q10: returned items — orders date range → customer seek → lineitem
    // seek with returnflag residual, top 20.
    {
        let mut b = PlanBuilder::new(&t.db);
        let orders = b.table_scan_filtered(
            t.orders,
            Expr::col(2)
                .ge(Expr::lit(Value::Date(DATE_DOMAIN / 2)))
                .and(Expr::col(2).lt(Expr::lit(Value::Date(DATE_DOMAIN / 2 + 90)))),
            true,
        );
        let cust_seek = b.index_seek(ix.customer_pk, SeekRange::eq(vec![SeekKey::OuterRef(1)]));
        // orders(0..5) ++ customer(5..9)
        let jc = b.nested_loops(JoinKind::Inner, orders, cust_seek, None, 128);
        let li_seek = b.add(
            PhysicalOp::IndexSeek {
                index: ix.lineitem_pk,
                seek: SeekRange::eq(vec![SeekKey::OuterRef(0)]),
                residual: Some(Expr::col(8).eq(Expr::lit(2i64))),
                output: IndexOutput::BaseRow,
            },
            vec![],
        );
        // jc(0..9) ++ lineitem(9..19)
        let jl = b.nested_loops(JoinKind::Inner, jc, li_seek, None, 128);
        let rev = b.compute_scalar(jl, vec![revenue(14, 15)]); // col 19
        let agg = b.hash_aggregate(rev, vec![5, 8], vec![Aggregate::of_col(AggFunc::Sum, 19)]);
        let top = b.top_n_sort(agg, 20, vec![SortKey::desc(2)]);
        out.push(nq("tpch-q10", b.finish(top)));
    }

    // Q12: shipping modes — lineitem date range → orders PK seek → agg by
    // priority.
    {
        let mut b = PlanBuilder::new(&t.db);
        let li = b.table_scan_filtered(
            t.lineitem,
            Expr::col(7)
                .ge(Expr::lit(Value::Date(DATE_DOMAIN / 5)))
                .and(Expr::col(7).lt(Expr::lit(Value::Date(DATE_DOMAIN / 5 + 365)))),
            true,
        );
        let ord_seek = b.index_seek(ix.orders_pk, SeekRange::eq(vec![SeekKey::OuterRef(0)]));
        // lineitem(0..10) ++ orders(10..15)
        let j = b.nested_loops(JoinKind::Inner, li, ord_seek, None, 512);
        let agg = b.hash_aggregate(j, vec![14], vec![Aggregate::count_star()]);
        let sort = b.sort(agg, vec![SortKey::asc(0)]);
        out.push(nq("tpch-q12", b.finish(sort)));
    }

    // Q14: promotion effect — lineitem date month → hash join part → scalar.
    {
        let mut b = PlanBuilder::new(&t.db);
        let part = b.table_scan(t.part);
        let li = b.table_scan_filtered(
            t.lineitem,
            Expr::col(7)
                .ge(Expr::lit(Value::Date(900)))
                .and(Expr::col(7).lt(Expr::lit(Value::Date(930)))),
            true,
        );
        // lineitem(0..10) ++ part(10..15)
        let j = b.hash_join(JoinKind::Inner, part, li, vec![0], vec![2]);
        let rev = b.compute_scalar(j, vec![revenue(5, 6)]); // col 15
        let agg = b.stream_aggregate(
            rev,
            vec![],
            vec![
                Aggregate::of_col(AggFunc::Sum, 15),
                Aggregate::of_col(AggFunc::Count, 15),
            ],
        );
        out.push(nq("tpch-q14", b.finish(agg)));
    }

    // Q18: large volume customers — lineitem agg → filter → orders seek →
    // customer seek → top 100. The aggregate feeds nested loops, so its
    // output phase drives the pipeline.
    {
        let mut b = PlanBuilder::new(&t.db);
        let li = b.table_scan(t.lineitem);
        let agg = b.hash_aggregate(li, vec![0], vec![Aggregate::of_col(AggFunc::Sum, 4)]);
        let big = b.filter(agg, Expr::col(1).gt(Expr::lit(150i64)));
        let ord_seek = b.index_seek(ix.orders_pk, SeekRange::eq(vec![SeekKey::OuterRef(0)]));
        // agg(0..2) ++ orders(2..7)
        let jo = b.nested_loops(JoinKind::Inner, big, ord_seek, None, 64);
        let cust_seek = b.index_seek(ix.customer_pk, SeekRange::eq(vec![SeekKey::OuterRef(3)]));
        // jo(0..7) ++ customer(7..11)
        let jc = b.nested_loops(JoinKind::Inner, jo, cust_seek, None, 64);
        let top = b.top_n_sort(jc, 100, vec![SortKey::desc(5)]);
        out.push(nq("tpch-q18", b.finish(top)));
    }

    // Q4-like: order priority checking — orders semi-join lineitem.
    {
        let mut b = PlanBuilder::new(&t.db);
        let li = b.table_scan_filtered(t.lineitem, Expr::col(4).gt(Expr::lit(30i64)), true);
        let orders = b.table_scan_filtered(
            t.orders,
            Expr::col(2)
                .ge(Expr::lit(Value::Date(DATE_DOMAIN / 3)))
                .and(Expr::col(2).lt(Expr::lit(Value::Date(DATE_DOMAIN / 3 + 90)))),
            true,
        );
        // probe orders, build lineitem, semi → orders columns only
        let semi = b.hash_join(JoinKind::LeftSemi, li, orders, vec![0], vec![0]);
        let agg = b.hash_aggregate(semi, vec![4], vec![Aggregate::count_star()]);
        let sort = b.sort(agg, vec![SortKey::asc(0)]);
        out.push(nq("tpch-q04", b.finish(sort)));
    }

    // Q21-like: suppliers who kept orders waiting — semi + anti joins.
    {
        let mut b = PlanBuilder::new(&t.db);
        let l1 = b.table_scan_filtered(t.lineitem, Expr::col(8).eq(Expr::lit(1i64)), true);
        let l2 = b.table_scan(t.lineitem);
        // probe l1, build l2: does another lineitem of the same order exist?
        let semi = b.hash_join(JoinKind::LeftSemi, l2, l1, vec![0], vec![0]);
        let l3 = b.table_scan_filtered(t.lineitem, Expr::col(8).eq(Expr::lit(2i64)), true);
        let anti = b.hash_join(JoinKind::LeftAnti, l3, semi, vec![0], vec![0]);
        let supp_seek = b.index_seek(ix.supplier_pk, SeekRange::eq(vec![SeekKey::OuterRef(3)]));
        // anti(0..10) ++ supplier(10..13)
        let js = b.nested_loops(JoinKind::Inner, anti, supp_seek, None, 128);
        let agg = b.hash_aggregate(js, vec![10], vec![Aggregate::count_star()]);
        let top = b.top_n_sort(agg, 100, vec![SortKey::desc(1)]);
        out.push(nq("tpch-q21", b.finish(top)));
    }

    // Q2-like: minimum cost supplier — aggregate subquery joined back via
    // spool (common subexpression).
    {
        let mut b = PlanBuilder::new(&t.db);
        let ps1 = b.table_scan(t.partsupp);
        let mins = b.hash_aggregate(ps1, vec![0], vec![Aggregate::of_col(AggFunc::Min, 2)]);
        let spool = b.spool(mins, false);
        let ps2 = b.table_scan(t.partsupp);
        // probe ps2, build spool(min): ps2(0..3) ++ mins(3..5)
        let j = b.hash_join(JoinKind::Inner, spool, ps2, vec![0], vec![0]);
        let same_cost = b.filter(j, Expr::col(2).eq(Expr::col(4)));
        let part_seek = b.index_seek(ix.part_pk, SeekRange::eq(vec![SeekKey::OuterRef(0)]));
        // j(0..5) ++ part(5..10)
        let jp = b.nested_loops(JoinKind::Inner, same_cost, part_seek, None, 64);
        let sort = b.sort(jp, vec![SortKey::asc(5)]);
        out.push(nq("tpch-q02", b.finish(sort)));
    }

    // Q13-like: customer order counts — left outer join + double aggregate.
    {
        let mut b = PlanBuilder::new(&t.db);
        let orders = b.table_scan_filtered(t.orders, Expr::col(4).lt(Expr::lit(4i64)), true);
        let cust = b.table_scan(t.customer);
        // probe customer preserved: customer(0..4) ++ orders(4..9)
        let lo = b.hash_join(JoinKind::LeftOuter, orders, cust, vec![1], vec![0]);
        let per_cust = b.hash_aggregate(lo, vec![0], vec![Aggregate::of_col(AggFunc::Count, 4)]);
        let dist = b.hash_aggregate(per_cust, vec![1], vec![Aggregate::count_star()]);
        let sort = b.sort(dist, vec![SortKey::desc(1), SortKey::desc(0)]);
        out.push(nq("tpch-q13", b.finish(sort)));
    }

    // Large sort: order book by price (sort-dominated plan).
    {
        let mut b = PlanBuilder::new(&t.db);
        let orders = b.table_scan(t.orders);
        let sort = b.sort(orders, vec![SortKey::desc(3)]);
        let top = b.add(PhysicalOp::Top { n: 1000 }, vec![sort]);
        out.push(nq("tpch-qsort", b.finish(top)));
    }

    // Merge join: clustered order scan ∪ lineitem in order-key order, with a
    // stream aggregate (sort-free pipeline).
    {
        let mut b = PlanBuilder::new(&t.db);
        let o = b.index_scan(ix.orders_pk);
        let l = b.index_scan(ix.lineitem_pk);
        // merge: orders(0..5) ++ lineitem(5..15)
        let m = b.merge_join(JoinKind::Inner, o, l, vec![0], vec![0]);
        let agg = b.stream_aggregate(m, vec![0], vec![Aggregate::of_col(AggFunc::Sum, 9)]);
        let top = b.add(PhysicalOp::Top { n: 500 }, vec![agg]);
        out.push(nq("tpch-qmerge", b.finish(top)));
    }

    // Parallel aggregation: scan → repartition → agg → gather → sort.
    {
        let mut b = PlanBuilder::new(&t.db);
        let li = b.table_scan(t.lineitem);
        let re = b.exchange(li, ExchangeKind::RepartitionStreams, 8);
        let agg = b.hash_aggregate(re, vec![3], vec![Aggregate::of_col(AggFunc::Sum, 5)]);
        let ga = b.exchange(agg, ExchangeKind::GatherStreams, 8);
        let sort = b.sort(ga, vec![SortKey::desc(1)]);
        out.push(nq("tpch-qpar", b.finish(sort)));
    }

    // Bitmap semi-join reduction pushed into the probe-side scan (Figure 6):
    // part (filtered) builds the bitmap; the lineitem scan probes it in the
    // storage engine.
    {
        let mut b = PlanBuilder::new(&t.db);
        let bitmap = b.new_bitmap();
        let part = b.table_scan_filtered(t.part, Expr::col(1).eq(Expr::lit(3i64)), true);
        let bc = b.add(
            PhysicalOp::BitmapCreate {
                key_columns: vec![0],
                bitmap,
            },
            vec![part],
        );
        let li = b.add(
            PhysicalOp::TableScan {
                table: t.lineitem,
                predicate: None,
                pushed_to_storage: true,
                bitmap_probe: Some(lqs_plan::BitmapProbe {
                    bitmap,
                    key_columns: vec![2],
                }),
            },
            vec![],
        );
        // probe lineitem ++ build part: lineitem(0..10) ++ part(10..15)
        let j = b.hash_join(JoinKind::Inner, bc, li, vec![0], vec![2]);
        let rev = b.compute_scalar(j, vec![revenue(5, 6)]); // col 15
        let agg = b.stream_aggregate(rev, vec![], vec![Aggregate::of_col(AggFunc::Sum, 15)]);
        out.push(nq("tpch-qbitmap", b.finish(agg)));
    }

    out
}

// ---------------------------------------------------------------------------
// Columnstore design queries (batch mode)
// ---------------------------------------------------------------------------

fn cs_queries(t: &TpchDb) -> Vec<NamedQuery> {
    let cs = t.cs.as_ref().expect("columnstore design");
    let mut out = Vec::new();

    // Q1: batch scan + batch hash aggregate.
    {
        let mut b = PlanBuilder::new(&t.db);
        let scan = b.columnstore_scan(
            cs.lineitem,
            Some(Expr::col(7).le(Expr::lit(Value::Date(DATE_DOMAIN - 90)))),
        );
        let agg = b.hash_aggregate(
            scan,
            vec![8, 9],
            vec![
                Aggregate::of_col(AggFunc::Sum, 4),
                Aggregate::of_col(AggFunc::Sum, 5),
                Aggregate::count_star(),
            ],
        );
        let sort = b.sort(agg, vec![SortKey::asc(0), SortKey::asc(1)]);
        out.push(nq("tpch-q01", b.finish(sort)));
    }

    // Q3: customer ⋈ orders ⋈ lineitem, all batch hash joins.
    {
        let mut b = PlanBuilder::new(&t.db);
        let cust = b.columnstore_scan(cs.customer, Some(Expr::col(2).eq(Expr::lit(3i64))));
        let orders = b.columnstore_scan(
            cs.orders,
            Some(Expr::col(2).lt(Expr::lit(Value::Date(DATE_DOMAIN / 2)))),
        );
        // probe orders ++ build customer: orders(0..5) ++ customer(5..9)
        let jc = b.hash_join(JoinKind::Inner, cust, orders, vec![0], vec![1]);
        let li = b.columnstore_scan(
            cs.lineitem,
            Some(Expr::col(7).gt(Expr::lit(Value::Date(DATE_DOMAIN / 2)))),
        );
        // probe lineitem ++ build jc: lineitem(0..10) ++ jc(10..19)
        let jl = b.hash_join(JoinKind::Inner, jc, li, vec![0], vec![0]);
        let rev = b.compute_scalar(jl, vec![revenue(5, 6)]); // col 19
        let agg = b.hash_aggregate(rev, vec![0, 12], vec![Aggregate::of_col(AggFunc::Sum, 19)]);
        let top = b.top_n_sort(agg, 10, vec![SortKey::desc(2)]);
        out.push(nq("tpch-q03", b.finish(top)));
    }

    // Q5: the 6-table chain, all hash joins over batch scans.
    {
        let mut b = PlanBuilder::new(&t.db);
        let region = b.table_scan_filtered(t.region, Expr::col(0).eq(Expr::lit(2i64)), true);
        let nation = b.table_scan(t.nation);
        let jn = b.hash_join(JoinKind::Inner, region, nation, vec![0], vec![1]);
        let supplier = b.columnstore_scan(cs.supplier, None);
        let js = b.hash_join(JoinKind::Inner, jn, supplier, vec![0], vec![1]);
        let lineitem = b.columnstore_scan(cs.lineitem, None);
        let jl = b.hash_join(JoinKind::Inner, js, lineitem, vec![0], vec![3]);
        let orders = b.columnstore_scan(
            cs.orders,
            Some(Expr::col(2).lt(Expr::lit(Value::Date(DATE_DOMAIN / 3)))),
        );
        let jo = b.hash_join(JoinKind::Inner, orders, jl, vec![0], vec![0]);
        let customer = b.columnstore_scan(cs.customer, None);
        let jc = b.hash_join(JoinKind::Inner, jo, customer, vec![22], vec![0]);
        let nfilter = b.filter(jc, Expr::col(1).eq(Expr::col(15)));
        let rev = b.compute_scalar(nfilter, vec![revenue(9, 10)]);
        let agg = b.hash_aggregate(rev, vec![19], vec![Aggregate::of_col(AggFunc::Sum, 27)]);
        let sort = b.sort(agg, vec![SortKey::desc(1)]);
        out.push(nq("tpch-q05", b.finish(sort)));
    }

    // Q6: batch scan with pushed compound predicate + scalar aggregate.
    {
        let mut b = PlanBuilder::new(&t.db);
        let pred = Expr::col(7)
            .ge(Expr::lit(Value::Date(DATE_DOMAIN / 4)))
            .and(Expr::col(7).lt(Expr::lit(Value::Date(DATE_DOMAIN / 2))))
            .and(Expr::col(6).ge(Expr::lit(0.03)))
            .and(Expr::col(6).le(Expr::lit(0.07)))
            .and(Expr::col(4).lt(Expr::lit(24i64)));
        let scan = b.columnstore_scan(cs.lineitem, Some(pred));
        let rev = b.compute_scalar(scan, vec![revenue(5, 6)]);
        let agg = b.hash_aggregate(rev, vec![], vec![Aggregate::of_col(AggFunc::Sum, 10)]);
        out.push(nq("tpch-q06", b.finish(agg)));
    }

    // Q9: part ⋈ partsupp ⋈ lineitem ⋈ orders, batch joins.
    {
        let mut b = PlanBuilder::new(&t.db);
        let part = b.columnstore_scan(cs.part, Some(Expr::col(2).lt(Expr::lit(30i64))));
        let partsupp = b.columnstore_scan(cs.partsupp, None);
        let jp = b.hash_join(JoinKind::Inner, part, partsupp, vec![0], vec![0]);
        let lineitem = b.columnstore_scan(cs.lineitem, None);
        let jl = b.hash_join(JoinKind::Inner, jp, lineitem, vec![0, 1], vec![2, 3]);
        let orders = b.columnstore_scan(cs.orders, None);
        let jo = b.hash_join(JoinKind::Inner, orders, jl, vec![0], vec![0]);
        let rev = b.compute_scalar(jo, vec![revenue(5, 6)]); // col 23
        let agg = b.hash_aggregate(rev, vec![20], vec![Aggregate::of_col(AggFunc::Sum, 23)]);
        let sort = b.sort(agg, vec![SortKey::asc(0)]);
        out.push(nq("tpch-q09", b.finish(sort)));
    }

    // Q10 analog.
    {
        let mut b = PlanBuilder::new(&t.db);
        let orders = b.columnstore_scan(
            cs.orders,
            Some(
                Expr::col(2)
                    .ge(Expr::lit(Value::Date(DATE_DOMAIN / 2)))
                    .and(Expr::col(2).lt(Expr::lit(Value::Date(DATE_DOMAIN / 2 + 90)))),
            ),
        );
        let li = b.columnstore_scan(cs.lineitem, Some(Expr::col(8).eq(Expr::lit(2i64))));
        // probe lineitem ++ build orders: lineitem(0..10) ++ orders(10..15)
        let jl = b.hash_join(JoinKind::Inner, orders, li, vec![0], vec![0]);
        let cust = b.columnstore_scan(cs.customer, None);
        // probe jl ++ build customer? build = customer (smaller):
        // jl(0..15) ++ customer(15..19)
        let jc = b.hash_join(JoinKind::Inner, cust, jl, vec![0], vec![11]);
        let rev = b.compute_scalar(jc, vec![revenue(5, 6)]); // col 19
        let agg = b.hash_aggregate(rev, vec![15], vec![Aggregate::of_col(AggFunc::Sum, 19)]);
        let top = b.top_n_sort(agg, 20, vec![SortKey::desc(1)]);
        out.push(nq("tpch-q10", b.finish(top)));
    }

    // Q12 analog: lineitem ⋈ orders, group by priority.
    {
        let mut b = PlanBuilder::new(&t.db);
        let li = b.columnstore_scan(
            cs.lineitem,
            Some(
                Expr::col(7)
                    .ge(Expr::lit(Value::Date(DATE_DOMAIN / 5)))
                    .and(Expr::col(7).lt(Expr::lit(Value::Date(DATE_DOMAIN / 5 + 365)))),
            ),
        );
        let orders = b.columnstore_scan(cs.orders, None);
        // probe orders ++ build lineitem: orders(0..5) ++ lineitem(5..15)
        let j = b.hash_join(JoinKind::Inner, li, orders, vec![0], vec![0]);
        let agg = b.hash_aggregate(j, vec![4], vec![Aggregate::count_star()]);
        let sort = b.sort(agg, vec![SortKey::asc(0)]);
        out.push(nq("tpch-q12", b.finish(sort)));
    }

    // Q14 analog.
    {
        let mut b = PlanBuilder::new(&t.db);
        let part = b.columnstore_scan(cs.part, None);
        let li = b.columnstore_scan(
            cs.lineitem,
            Some(
                Expr::col(7)
                    .ge(Expr::lit(Value::Date(900)))
                    .and(Expr::col(7).lt(Expr::lit(Value::Date(930)))),
            ),
        );
        let j = b.hash_join(JoinKind::Inner, part, li, vec![0], vec![2]);
        let rev = b.compute_scalar(j, vec![revenue(5, 6)]);
        let agg = b.hash_aggregate(rev, vec![], vec![Aggregate::of_col(AggFunc::Sum, 15)]);
        out.push(nq("tpch-q14", b.finish(agg)));
    }

    // Q18 analog: lineitem agg → join orders → join customer, batch.
    {
        let mut b = PlanBuilder::new(&t.db);
        let li = b.columnstore_scan(cs.lineitem, None);
        let agg = b.hash_aggregate(li, vec![0], vec![Aggregate::of_col(AggFunc::Sum, 4)]);
        let big = b.filter(agg, Expr::col(1).gt(Expr::lit(150i64)));
        let orders = b.columnstore_scan(cs.orders, None);
        // probe orders ++ build big: orders(0..5) ++ big(5..7)
        let jo = b.hash_join(JoinKind::Inner, big, orders, vec![0], vec![0]);
        let cust = b.columnstore_scan(cs.customer, None);
        // probe jo? build customer: jo(0..7) ++ customer(7..11)
        let jc = b.hash_join(JoinKind::Inner, cust, jo, vec![0], vec![1]);
        let top = b.top_n_sort(jc, 100, vec![SortKey::desc(3)]);
        out.push(nq("tpch-q18", b.finish(top)));
    }

    // Q4 analog: semi join.
    {
        let mut b = PlanBuilder::new(&t.db);
        let li = b.columnstore_scan(cs.lineitem, Some(Expr::col(4).gt(Expr::lit(30i64))));
        let orders = b.columnstore_scan(
            cs.orders,
            Some(
                Expr::col(2)
                    .ge(Expr::lit(Value::Date(DATE_DOMAIN / 3)))
                    .and(Expr::col(2).lt(Expr::lit(Value::Date(DATE_DOMAIN / 3 + 90)))),
            ),
        );
        let semi = b.hash_join(JoinKind::LeftSemi, li, orders, vec![0], vec![0]);
        let agg = b.hash_aggregate(semi, vec![4], vec![Aggregate::count_star()]);
        let sort = b.sort(agg, vec![SortKey::asc(0)]);
        out.push(nq("tpch-q04", b.finish(sort)));
    }

    // Bitmap probe pushed into a columnstore scan.
    {
        let mut b = PlanBuilder::new(&t.db);
        let bitmap = b.new_bitmap();
        let part = b.columnstore_scan(cs.part, Some(Expr::col(1).eq(Expr::lit(3i64))));
        let bc = b.add(
            PhysicalOp::BitmapCreate {
                key_columns: vec![0],
                bitmap,
            },
            vec![part],
        );
        let li = b.add(
            PhysicalOp::ColumnstoreScan {
                columnstore: cs.lineitem,
                predicate: None,
                bitmap_probe: Some(lqs_plan::BitmapProbe {
                    bitmap,
                    key_columns: vec![2],
                }),
            },
            vec![],
        );
        let j = b.hash_join(JoinKind::Inner, bc, li, vec![0], vec![2]);
        let rev = b.compute_scalar(j, vec![revenue(5, 6)]);
        let agg = b.hash_aggregate(rev, vec![], vec![Aggregate::of_col(AggFunc::Sum, 15)]);
        out.push(nq("tpch-qbitmap", b.finish(agg)));
    }

    // Parallel batch aggregation.
    {
        let mut b = PlanBuilder::new(&t.db);
        let li = b.columnstore_scan(cs.lineitem, None);
        let re = b.exchange(li, ExchangeKind::RepartitionStreams, 8);
        let agg = b.hash_aggregate(re, vec![3], vec![Aggregate::of_col(AggFunc::Sum, 5)]);
        let ga = b.exchange(agg, ExchangeKind::GatherStreams, 8);
        let sort = b.sort(ga, vec![SortKey::desc(1)]);
        out.push(nq("tpch-qpar", b.finish(sort)));
    }

    // Q13 analog: left outer + double aggregate.
    {
        let mut b = PlanBuilder::new(&t.db);
        let orders = b.columnstore_scan(cs.orders, Some(Expr::col(4).lt(Expr::lit(4i64))));
        let cust = b.columnstore_scan(cs.customer, None);
        let lo = b.hash_join(JoinKind::LeftOuter, orders, cust, vec![1], vec![0]);
        let per_cust = b.hash_aggregate(lo, vec![0], vec![Aggregate::of_col(AggFunc::Count, 4)]);
        let dist = b.hash_aggregate(per_cust, vec![1], vec![Aggregate::count_star()]);
        let sort = b.sort(dist, vec![SortKey::desc(1), SortKey::desc(0)]);
        out.push(nq("tpch-q13", b.finish(sort)));
    }

    out
}

/// Node id of the root of query `name`'s plan (test helper).
pub fn root_of(q: &NamedQuery) -> NodeId {
    q.plan.root()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lqs_exec::{execute, ExecOptions};

    fn smoke_scale() -> WorkloadScale {
        WorkloadScale {
            data_scale: 0.2,
            query_limit: usize::MAX,
            seed: 7,
        }
    }

    #[test]
    fn db_generation_row_counts() {
        let t = build_db(smoke_scale(), PhysicalDesign::RowStore);
        assert_eq!(t.db.table(t.region).row_count(), 5);
        assert_eq!(t.db.table(t.nation).row_count(), 25);
        assert!(t.db.table(t.lineitem).row_count() > 4000);
        // ~4 lineitems per order.
        let ratio =
            t.db.table(t.lineitem).row_count() as f64 / t.db.table(t.orders).row_count() as f64;
        assert!((3.0..5.0).contains(&ratio));
    }

    #[test]
    fn zipf_skew_visible_in_lineitem() {
        let t = build_db(smoke_scale(), PhysicalDesign::RowStore);
        // The most frequent l_partkey should be far above the average.
        let mut counts = std::collections::HashMap::new();
        for r in t.db.table(t.lineitem).rows() {
            *counts.entry(r[2].as_int().unwrap()).or_insert(0usize) += 1;
        }
        let max = *counts.values().max().unwrap();
        let avg = t.db.table(t.lineitem).row_count() / counts.len();
        assert!(max > avg * 10, "max {max} avg {avg}: skew not visible");
    }

    #[test]
    fn all_row_queries_execute() {
        let t = build_db(smoke_scale(), PhysicalDesign::RowStore);
        let qs = queries(&t);
        assert_eq!(qs.len(), 17);
        for q in &qs {
            let run = execute(&t.db, &q.plan, &ExecOptions::default());
            assert!(run.duration_ns > 0, "{} produced no work", q.name);
        }
    }

    #[test]
    fn all_cs_queries_execute_in_batch_mode() {
        let t = build_db(smoke_scale(), PhysicalDesign::Columnstore);
        let qs = queries(&t);
        assert_eq!(qs.len(), 13);
        for q in &qs {
            // Every columnstore query must contain at least one batch node.
            assert!(
                q.plan.nodes().iter().any(|n| n.batch_mode),
                "{} has no batch-mode operators",
                q.name
            );
            let run = execute(&t.db, &q.plan, &ExecOptions::default());
            assert!(run.duration_ns > 0, "{} produced no work", q.name);
        }
    }

    #[test]
    fn designs_have_different_operator_mixes() {
        let row = build_db(smoke_scale(), PhysicalDesign::RowStore);
        let cs = build_db(smoke_scale(), PhysicalDesign::Columnstore);
        let count_ops = |qs: &[NamedQuery], name: &str| -> usize {
            qs.iter()
                .flat_map(|q| q.plan.nodes())
                .filter(|n| n.op.display_name() == name)
                .count()
        };
        let row_qs = queries(&row);
        let cs_qs = queries(&cs);
        assert!(count_ops(&row_qs, "Index Seek") > 5);
        assert_eq!(count_ops(&cs_qs, "Index Seek"), 0);
        assert!(count_ops(&cs_qs, "Columnstore Index Scan") > 10);
        assert_eq!(count_ops(&row_qs, "Columnstore Index Scan"), 0);
    }
}
