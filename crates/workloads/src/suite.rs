//! Workload containers and the standard five-workload suite of §5.

use lqs_plan::PhysicalPlan;
use lqs_storage::Database;

/// A named query (plan) within a workload.
pub struct NamedQuery {
    /// Query label (e.g. "tpch-q01", "real1-q117").
    pub name: String,
    /// The compiled physical plan.
    pub plan: PhysicalPlan,
}

/// A database plus its query set.
pub struct Workload {
    /// Workload label as used in the paper's figures.
    pub name: &'static str,
    /// The generated database.
    pub db: Database,
    /// All queries.
    pub queries: Vec<NamedQuery>,
}

impl Workload {
    /// Keep only the first `n` queries (for fast test/bench modes).
    pub fn truncate_queries(&mut self, n: usize) {
        self.queries.truncate(n);
    }
}

/// Global knobs scaling the suite up or down.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadScale {
    /// Multiplier on base-table row counts (1.0 ≈ tens of thousands of rows
    /// in the largest tables).
    pub data_scale: f64,
    /// Cap on queries per workload (`usize::MAX` = the paper's full counts:
    /// 477 / 632 / 40 plus the benchmark suites).
    pub query_limit: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for WorkloadScale {
    fn default() -> Self {
        WorkloadScale {
            data_scale: 1.0,
            query_limit: usize::MAX,
            seed: 42,
        }
    }
}

impl WorkloadScale {
    /// A small configuration for unit/integration tests.
    pub fn smoke() -> Self {
        WorkloadScale {
            data_scale: 0.25,
            query_limit: 6,
            seed: 42,
        }
    }
}

/// Build the five workloads of §5, in the order the figures list them:
/// REAL-3, REAL-2, REAL-1, TPC-DS, TPC-H.
pub fn standard_five(scale: WorkloadScale) -> Vec<Workload> {
    let mut v = vec![
        crate::real::workload(crate::real::RealProfile::Real3, scale),
        crate::real::workload(crate::real::RealProfile::Real2, scale),
        crate::real::workload(crate::real::RealProfile::Real1, scale),
        crate::tpcds::workload(scale),
        crate::tpch::workload(scale, crate::tpch::PhysicalDesign::RowStore),
    ];
    for w in &mut v {
        w.truncate_queries(scale.query_limit);
    }
    v
}
