//! §7 extension (b): learn per-operator weight corrections from prior
//! executions.
//!
//! The §4.6 weights come from optimizer per-tuple cost estimates, which the
//! paper notes cannot capture effects the optimizer does not model (e.g.
//! buffer-pool caching). This module executes a calibration workload and
//! compares each operator type's *actual* per-tuple virtual cost against
//! the optimizer's estimate, producing multipliers that
//! [`lqs_progress::EstimatorConfig::with_weight_feedback`] applies on top
//! of the static weights.

use lqs_exec::ExecOptions;
use lqs_plan::CostModel;
use lqs_workloads::Workload;
use std::collections::BTreeMap;

/// Learned per-operator-type multipliers: actual ÷ estimated per-tuple cost.
pub type WeightCalibration = BTreeMap<&'static str, f64>;

/// Execute every query of `workload` and aggregate actual vs estimated
/// per-tuple cost per operator type.
pub fn calibrate_weights(workload: &Workload, opts: &ExecOptions) -> WeightCalibration {
    let cost = CostModel::default();
    // operator name → (Σ actual ns, Σ estimated ns)
    let mut sums: BTreeMap<&'static str, (f64, f64)> = BTreeMap::new();
    for q in &workload.queries {
        let run = crate::run::run_query(&workload.db, &q.plan, opts);
        for n in q.plan.nodes() {
            let c = &run.final_counters[n.id.0];
            let actual = c.cpu_ns as f64 + c.logical_reads as f64 * cost.io_page_ns;
            let estimated = n.est_cpu_ns + n.est_io_pages * cost.io_page_ns;
            if estimated <= 0.0 || actual <= 0.0 {
                continue;
            }
            let e = sums.entry(n.op.display_name()).or_insert((0.0, 0.0));
            e.0 += actual;
            e.1 += estimated;
        }
    }
    sums.into_iter()
        .map(|(k, (a, e))| (k, (a / e).clamp(0.05, 20.0)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lqs_workloads::{tpcds, WorkloadScale};

    #[test]
    fn calibration_produces_sane_multipliers() {
        let scale = WorkloadScale {
            data_scale: 0.15,
            query_limit: 4,
            seed: 3,
        };
        let mut w = tpcds::workload(scale);
        w.truncate_queries(4);
        let cal = calibrate_weights(&w, &ExecOptions::default());
        assert!(!cal.is_empty());
        for (op, m) in &cal {
            assert!(
                (0.05..=20.0).contains(m),
                "multiplier for {op} out of range: {m}"
            );
        }
        // Scans are directly costed from table sizes, so they should be
        // close to 1 when cardinality estimates are decent.
        if let Some(m) = cal.get("Table Scan") {
            assert!((0.3..3.0).contains(m), "table scan multiplier {m}");
        }
    }
}
