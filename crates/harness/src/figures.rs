//! One function per table/figure of the paper's evaluation, each returning
//! the data series the figure plots. The `lqs-bench` binaries print these;
//! integration tests assert their qualitative shapes.

use crate::experiment::{
    merge_per_operator, operator_frequencies, per_operator_errors, workload_errors, ConfigSpec,
    Metric, PerOperatorErrors, WorkloadErrors,
};
use crate::run::{run_query, trace_estimator};
use lqs_exec::ExecOptions;
use lqs_plan::{NodeId, PhysicalOp};
use lqs_progress::EstimatorConfig;
use lqs_workloads::{standard_five, tpcds, tpch, PhysicalDesign, WorkloadScale};
use serde::Serialize;
use std::collections::BTreeMap;

fn opts() -> ExecOptions {
    ExecOptions::default()
}

/// A `(time-fraction, value)` series point.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Point {
    /// Elapsed-time fraction in `[0, 1]`.
    pub t: f64,
    /// Series value at `t`.
    pub v: f64,
}

// ---------------------------------------------------------------------------
// Figure 8 — exchange lag
// ---------------------------------------------------------------------------

/// Figure 8 data: GetNext counts over time for a Nested Loops operator and
/// the Parallelism (exchange) operator above it.
#[derive(Debug, Clone, Serialize)]
pub struct Fig8 {
    /// `(t, kᵢ)` of the nested loops child.
    pub nested_loops: Vec<Point>,
    /// `(t, kᵢ)` of the exchange.
    pub exchange: Vec<Point>,
    /// Max and final k-ratio between the two.
    pub max_ratio: f64,
    /// Ratio at the last snapshot.
    pub final_ratio: f64,
}

/// Reproduce Figure 7/8: an index nested-loops join under a gather exchange.
pub fn figure8(scale: WorkloadScale) -> Fig8 {
    let t = tpcds::build_db(scale);
    let mut b = lqs_plan::PlanBuilder::new(&t.db);
    let ss = b.table_scan(t.store_sales);
    let seek = b.index_seek(
        t.customer_pk,
        lqs_plan::SeekRange::eq(vec![lqs_plan::SeekKey::OuterRef(2)]),
    );
    let nl = b.nested_loops(lqs_plan::JoinKind::Inner, ss, seek, None, 64);
    let ex = b.exchange(nl, lqs_plan::ExchangeKind::GatherStreams, 8);
    let top = b.add(PhysicalOp::Top { n: usize::MAX }, vec![ex]);
    let plan = b.finish(top);
    let run = run_query(&t.db, &plan, &opts());

    let series = |node: NodeId| -> Vec<Point> {
        run.snapshots
            .iter()
            .map(|s| Point {
                t: run.time_fraction(s),
                v: s.k(node.0),
            })
            .collect()
    };
    let nl_series = series(nl);
    let ex_series = series(ex);
    let mut max_ratio = 0.0f64;
    for (a, b) in nl_series.iter().zip(&ex_series) {
        if b.v >= 1.0 {
            max_ratio = max_ratio.max(a.v / b.v);
        }
    }
    let final_ratio = match (nl_series.last(), ex_series.last()) {
        (Some(a), Some(b)) if b.v >= 1.0 => a.v / b.v,
        _ => f64::NAN,
    };
    Fig8 {
        nested_loops: nl_series,
        exchange: ex_series,
        max_ratio,
        final_ratio,
    }
}

// ---------------------------------------------------------------------------
// Figure 11 — two-phase blocking model
// ---------------------------------------------------------------------------

/// Figure 11 data: progress of a hash aggregate over time under the
/// output-only model, the two-phase model, and the truth.
#[derive(Debug, Clone, Serialize)]
pub struct Fig11 {
    /// Output-only (`k/N`) progress of the aggregate.
    pub output_only: Vec<Point>,
    /// Two-phase (input+output) progress.
    pub two_phase: Vec<Point>,
    /// True progress = active-time fraction of the operator.
    pub true_progress: Vec<Point>,
    /// Mean |error| vs true, per model.
    pub error_output_only: f64,
    /// Mean |error| of the two-phase model.
    pub error_two_phase: f64,
}

/// Reproduce Figure 11 on the TPC-DS Q13-shaped hash aggregate.
pub fn figure11(scale: WorkloadScale) -> Fig11 {
    let t = tpcds::build_db(scale);
    let plan = tpcds::q13_plan(&t);
    let run = run_query(&t.db, &plan, &opts());
    let agg = plan.root();

    let two_cfg = EstimatorConfig::full();
    let out_cfg = {
        let mut c = EstimatorConfig::full();
        c.two_phase_blocking = false;
        c
    };
    let tr_two = trace_estimator(&plan, &t.db, &run, two_cfg);
    let tr_out = trace_estimator(&plan, &t.db, &run, out_cfg);

    let fc = &run.final_counters[agg.0];
    let (open, close) = (
        fc.open_ns.unwrap_or(0),
        fc.close_ns.unwrap_or(run.duration_ns),
    );
    let mut output_only = Vec::new();
    let mut two_phase = Vec::new();
    let mut true_progress = Vec::new();
    let mut e_out = 0.0;
    let mut e_two = 0.0;
    let mut n = 0usize;
    for (i, s) in run.snapshots.iter().enumerate() {
        if s.ts_ns < open || s.ts_ns > close {
            continue;
        }
        let t_frac = (s.ts_ns - open) as f64 / (close - open).max(1) as f64;
        let p_out = tr_out.reports[i].nodes[agg.0].progress;
        let p_two = tr_two.reports[i].nodes[agg.0].progress;
        output_only.push(Point {
            t: t_frac,
            v: p_out,
        });
        two_phase.push(Point {
            t: t_frac,
            v: p_two,
        });
        true_progress.push(Point {
            t: t_frac,
            v: t_frac,
        });
        e_out += (p_out - t_frac).abs();
        e_two += (p_two - t_frac).abs();
        n += 1;
    }
    Fig11 {
        output_only,
        two_phase,
        true_progress,
        error_output_only: e_out / n.max(1) as f64,
        error_two_phase: e_two / n.max(1) as f64,
    }
}

// ---------------------------------------------------------------------------
// Figure 12 — weighted vs unweighted query progress over time
// ---------------------------------------------------------------------------

/// Figure 12 data: query progress over time for the Q21-shaped plan.
#[derive(Debug, Clone, Serialize)]
pub struct Fig12 {
    /// Weighted estimator trajectory.
    pub weighted: Vec<Point>,
    /// Unweighted estimator trajectory.
    pub unweighted: Vec<Point>,
    /// Errortime of each.
    pub error_weighted: f64,
    /// Errortime of the unweighted estimator.
    pub error_unweighted: f64,
}

/// Reproduce Figure 12 on the TPC-DS Q21-shaped plan.
pub fn figure12(scale: WorkloadScale) -> Fig12 {
    let t = tpcds::build_db(scale);
    let plan = tpcds::q21_plan(&t);
    let run = run_query(&t.db, &plan, &opts());

    let weighted_cfg = EstimatorConfig::full();
    let unweighted_cfg = {
        let mut c = EstimatorConfig::full();
        c.operator_weights = false;
        c
    };
    let w = trace_estimator(&plan, &t.db, &run, weighted_cfg);
    let u = trace_estimator(&plan, &t.db, &run, unweighted_cfg);
    let series = |est: &[f64]| -> Vec<Point> {
        run.snapshots
            .iter()
            .zip(est)
            .map(|(s, &v)| Point {
                t: run.time_fraction(s),
                v,
            })
            .collect()
    };
    Fig12 {
        weighted: series(&w.estimates),
        unweighted: series(&u.estimates),
        error_weighted: lqs_progress::error_time(&run, &w.estimates),
        error_unweighted: lqs_progress::error_time(&run, &u.estimates),
    }
}

// ---------------------------------------------------------------------------
// Figure 13 — two estimators ~0.1 apart (illustration)
// ---------------------------------------------------------------------------

/// Figure 13 data: two estimator trajectories on the Q36-shaped plan with
/// their Errortime values.
#[derive(Debug, Clone, Serialize)]
pub struct Fig13 {
    /// Full LQS estimator.
    pub estimator1: Vec<Point>,
    /// Baseline TGN estimator.
    pub estimator2: Vec<Point>,
    /// Errortime of each.
    pub error1: f64,
    /// Errortime of the baseline.
    pub error2: f64,
}

/// Reproduce Figure 13's illustration on the TPC-DS Q36 shape.
pub fn figure13(scale: WorkloadScale) -> Fig13 {
    let t = tpcds::build_db(scale);
    let plan = tpcds::q36_plan(&t);
    let run = run_query(&t.db, &plan, &opts());
    let e1 = trace_estimator(&plan, &t.db, &run, EstimatorConfig::full());
    let e2 = trace_estimator(&plan, &t.db, &run, EstimatorConfig::tgn());
    let series = |est: &[f64]| -> Vec<Point> {
        run.snapshots
            .iter()
            .zip(est)
            .map(|(s, &v)| Point {
                t: run.time_fraction(s),
                v,
            })
            .collect()
    };
    Fig13 {
        estimator1: series(&e1.estimates),
        estimator2: series(&e2.estimates),
        error1: lqs_progress::error_time(&run, &e1.estimates),
        error2: lqs_progress::error_time(&run, &e2.estimates),
    }
}

// ---------------------------------------------------------------------------
// Figure 14 — Errorcount: refinement & bounding ablation over 5 workloads
// ---------------------------------------------------------------------------

/// The three configurations Figure 14 compares.
///
/// Deviation note: the paper's third configuration is the driver-node (DNE)
/// estimator with refinement + bounding. Our harness scores every estimator
/// against the *true Total-GetNext* progress, where the DNE aggregate has an
/// inherent representation bias on deep plans, so the reproduced third bar
/// applies refinement + bounding within the TGN model; the DNE variant
/// remains available as [`EstimatorConfig::dne_refined`] and is reported
/// separately in EXPERIMENTS.md.
pub fn fig14_configs() -> Vec<ConfigSpec> {
    let refined = {
        let mut c = EstimatorConfig::tgn_bounded();
        c.refine_cardinality = true;
        c
    };
    vec![
        ConfigSpec {
            label: "No Refinement",
            config: EstimatorConfig::tgn(),
        },
        ConfigSpec {
            label: "Bounding only",
            config: EstimatorConfig::tgn_bounded(),
        },
        ConfigSpec {
            label: "Bounding + Refinement",
            config: refined,
        },
    ]
}

/// Reproduce Figure 14: Errorcount per workload for the three configs.
pub fn figure14(scale: WorkloadScale) -> Vec<WorkloadErrors> {
    standard_five(scale)
        .iter()
        .map(|w| workload_errors(w, &fig14_configs(), Metric::Count, &opts()))
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 15 — per-operator Errorcount, refinement ablation
// ---------------------------------------------------------------------------

/// The three configurations Figure 15 compares.
pub fn fig15_configs() -> Vec<ConfigSpec> {
    let no_refine = EstimatorConfig::tgn();
    let refine = {
        let mut c = EstimatorConfig::tgn();
        c.refine_cardinality = true;
        c
    };
    let refine_semi = {
        let mut c = refine.clone();
        c.semi_blocking_adjustments = true;
        c
    };
    vec![
        ConfigSpec {
            label: "No Refinement",
            config: no_refine,
        },
        ConfigSpec {
            label: "Cardinality Refinement",
            config: refine,
        },
        ConfigSpec {
            label: "Refinement + Semi-Blocking Adjustments",
            config: refine_semi,
        },
    ]
}

/// Reproduce Figure 15: per-operator Errorcount across all five workloads.
pub fn figure15(scale: WorkloadScale) -> PerOperatorErrors {
    let parts: Vec<PerOperatorErrors> = standard_five(scale)
        .iter()
        .map(|w| per_operator_errors(w, &fig15_configs(), Metric::Count, &opts()))
        .collect();
    merge_per_operator(&parts)
}

// ---------------------------------------------------------------------------
// Figure 16 — Errortime: weighted vs unweighted over 5 workloads
// ---------------------------------------------------------------------------

/// The two configurations Figure 16 compares.
pub fn fig16_configs() -> Vec<ConfigSpec> {
    let with_weight = EstimatorConfig::full();
    let without_weight = {
        let mut c = EstimatorConfig::full();
        c.operator_weights = false;
        c
    };
    vec![
        ConfigSpec {
            label: "With Weight",
            config: with_weight,
        },
        ConfigSpec {
            label: "Without Weight",
            config: without_weight,
        },
    ]
}

/// Reproduce Figure 16: Errortime per workload, weighted vs unweighted.
pub fn figure16(scale: WorkloadScale) -> Vec<WorkloadErrors> {
    standard_five(scale)
        .iter()
        .map(|w| workload_errors(w, &fig16_configs(), Metric::Time, &opts()))
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 17 — blocking-operator model, Errortime for Hash Match & Sort
// ---------------------------------------------------------------------------

/// The two configurations Figure 17 compares.
pub fn fig17_configs() -> Vec<ConfigSpec> {
    let output_only = {
        let mut c = EstimatorConfig::full();
        c.two_phase_blocking = false;
        c
    };
    vec![
        ConfigSpec {
            label: "Model uses Output Ni only",
            config: output_only,
        },
        ConfigSpec {
            label: "Model uses Input and Output Ni",
            config: EstimatorConfig::full(),
        },
    ]
}

/// Figure 17 data: per-config Errortime for the blocking operator types.
#[derive(Debug, Clone, Serialize)]
pub struct Fig17 {
    /// Config label → (operator → error) restricted to blocking operators.
    pub by_config: Vec<(String, BTreeMap<String, f64>)>,
}

/// Reproduce Figure 17 across the five workloads.
pub fn figure17(scale: WorkloadScale) -> Fig17 {
    let parts: Vec<PerOperatorErrors> = standard_five(scale)
        .iter()
        .map(|w| per_operator_errors(w, &fig17_configs(), Metric::Time, &opts()))
        .collect();
    let merged = merge_per_operator(&parts);
    let keep = [
        "Hash Match (Aggregate)",
        "Sort",
        "Top N Sort",
        "Distinct Sort",
    ];
    Fig17 {
        by_config: merged
            .by_config
            .into_iter()
            .map(|(label, map)| {
                (
                    label,
                    map.into_iter()
                        .filter(|(k, _)| keep.iter().any(|p| k == p))
                        .collect(),
                )
            })
            .collect(),
    }
}

// ---------------------------------------------------------------------------
// Figures 18–20 — columnstore vs row-store physical design
// ---------------------------------------------------------------------------

/// Figure 18 data: overall Errortime for the two TPC-H physical designs.
#[derive(Debug, Clone, Serialize)]
pub struct Fig18 {
    /// Row-store design error.
    pub tpch: f64,
    /// Columnstore design error.
    pub tpch_columnstore: f64,
}

/// Reproduce Figure 18.
pub fn figure18(scale: WorkloadScale) -> Fig18 {
    let full = vec![ConfigSpec {
        label: "LQS",
        config: EstimatorConfig::full(),
    }];
    // The TPC-H suites are small; the design comparison always runs them in
    // full so the operator mixes are representative.
    let row = tpch::workload(scale, PhysicalDesign::RowStore);
    let cs = tpch::workload(scale, PhysicalDesign::Columnstore);
    let e_row = workload_errors(&row, &full, Metric::Time, &opts());
    let e_cs = workload_errors(&cs, &full, Metric::Time, &opts());
    Fig18 {
        tpch: e_row.errors[0].1,
        tpch_columnstore: e_cs.errors[0].1,
    }
}

/// Figure 19 data: operator frequency per physical design.
#[derive(Debug, Clone, Serialize)]
pub struct Fig19 {
    /// Operator → count in the row-store design's plans.
    pub tpch: BTreeMap<String, usize>,
    /// Operator → count in the columnstore design's plans.
    pub tpch_columnstore: BTreeMap<String, usize>,
}

/// Reproduce Figure 19.
pub fn figure19(scale: WorkloadScale) -> Fig19 {
    let row = tpch::workload(scale, PhysicalDesign::RowStore);
    let cs = tpch::workload(scale, PhysicalDesign::Columnstore);
    Fig19 {
        tpch: operator_frequencies(&row),
        tpch_columnstore: operator_frequencies(&cs),
    }
}

/// Figure 20 data: per-operator Errortime per physical design.
#[derive(Debug, Clone, Serialize)]
pub struct Fig20 {
    /// Operator → error, row-store design.
    pub tpch: BTreeMap<String, f64>,
    /// Operator → error, columnstore design.
    pub tpch_columnstore: BTreeMap<String, f64>,
}

/// Reproduce Figure 20.
pub fn figure20(scale: WorkloadScale) -> Fig20 {
    let full = vec![ConfigSpec {
        label: "LQS",
        config: EstimatorConfig::full(),
    }];
    let row = tpch::workload(scale, PhysicalDesign::RowStore);
    let cs = tpch::workload(scale, PhysicalDesign::Columnstore);
    let e_row = per_operator_errors(&row, &full, Metric::Time, &opts());
    let e_cs = per_operator_errors(&cs, &full, Metric::Time, &opts());
    let flat = |e: PerOperatorErrors| -> BTreeMap<String, f64> {
        e.by_config
            .into_iter()
            .next()
            .map(|(_, m)| m)
            .unwrap_or_default()
    };
    Fig20 {
        tpch: flat(e_row),
        tpch_columnstore: flat(e_cs),
    }
}
