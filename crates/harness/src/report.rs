//! Plain-text table rendering and JSON serialization for experiment output.

use crate::experiment::{PerOperatorErrors, WorkloadErrors};
use std::collections::BTreeMap;
use std::fmt::Write;

/// Render a set of per-workload errors as an aligned text table.
pub fn render_workload_errors(title: &str, rows: &[WorkloadErrors]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    if rows.is_empty() {
        let _ = writeln!(out, "(no data)");
        return out;
    }
    let labels: Vec<&str> = rows[0].errors.iter().map(|(l, _)| l.as_str()).collect();
    let _ = write!(out, "{:<22}", "workload");
    for l in &labels {
        let _ = write!(out, "{l:>28}");
    }
    let _ = writeln!(out, "{:>10}", "queries");
    for r in rows {
        let _ = write!(out, "{:<22}", r.workload);
        for (_, v) in &r.errors {
            let _ = write!(out, "{v:>28.4}");
        }
        let _ = writeln!(out, "{:>10}", r.queries);
    }
    out
}

/// Render per-operator errors: one row per operator, one column per config.
pub fn render_per_operator(title: &str, data: &PerOperatorErrors) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ({}) ==", data.workload);
    let mut ops: Vec<&String> = data.by_config.iter().flat_map(|(_, m)| m.keys()).collect();
    ops.sort();
    ops.dedup();
    let _ = write!(out, "{:<34}", "operator");
    for (label, _) in &data.by_config {
        let _ = write!(out, "{label:>42}");
    }
    let _ = writeln!(out);
    for op in ops {
        let _ = write!(out, "{op:<34}");
        for (_, m) in &data.by_config {
            match m.get(op) {
                Some(v) => {
                    let _ = write!(out, "{v:>42.4}");
                }
                None => {
                    let _ = write!(out, "{:>42}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Render operator-frequency maps side by side (Figure 19).
pub fn render_frequencies(
    title: &str,
    a_name: &str,
    a: &BTreeMap<String, usize>,
    b_name: &str,
    b: &BTreeMap<String, usize>,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let mut ops: Vec<&String> = a.keys().chain(b.keys()).collect();
    ops.sort();
    ops.dedup();
    let _ = writeln!(out, "{:<34}{:>20}{:>22}", "operator", a_name, b_name);
    for op in ops {
        let _ = writeln!(
            out,
            "{:<34}{:>20}{:>22}",
            op,
            a.get(op).copied().unwrap_or(0),
            b.get(op).copied().unwrap_or(0)
        );
    }
    out
}

/// Render one estimator trace's explain diagnostics: aggregated counters
/// plus the per-node model/refinement breakdown at the final snapshot.
pub fn render_explain(title: &str, trace: &crate::run::EstimatorTrace) -> String {
    let mut out = String::new();
    let totals = trace.explain_totals();
    let _ = writeln!(out, "== {title} ==");
    let _ = writeln!(
        out,
        "snapshots: {}  refinements: {}  clamps: {}  special-model nodes: {}",
        trace.reports.len(),
        totals.refinements_applied,
        totals.clamps_hit,
        totals.special_model_nodes
    );
    let Some(last) = trace.reports.last() else {
        let _ = writeln!(out, "(no snapshots)");
        return out;
    };
    let _ = writeln!(
        out,
        "{:<4}{:<26}{:>22}{:>22}{:>14}{:>14}",
        "id", "operator", "path", "refinement", "N-hat", "clamp"
    );
    for np in &last.nodes {
        let _ = writeln!(
            out,
            "{:<4}{:<26}{:>22}{:>22}{:>14.1}{:>14.1}",
            np.node.0,
            np.name,
            np.explanation.path.label(),
            np.explanation.refinement.label(),
            np.refined_n,
            np.explanation.clamp_delta
        );
    }
    out
}

/// Serialize any experiment artifact to pretty JSON.
pub fn to_json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("experiment outputs are serializable")
}
