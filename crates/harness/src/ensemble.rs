//! §5-style evaluation of the ensemble layer: replay every query of a
//! workload through the competing estimator members *and* the online
//! selection layer, and aggregate `Errorcount`/`Errortime` per member vs.
//! the composed ensemble figure.
//!
//! This is the offline twin of the server poller's accuracy scoring — both
//! go through [`EnsembleEstimator::replay`] on the full recorded snapshot
//! trace, so the numbers here are bit-identical to what
//! `lqs_estimator_error_count{estimator=...}` accumulates online for the
//! same runs.

use crate::run::run_query;
use lqs_exec::ExecOptions;
use lqs_progress::{error_count, error_time, EnsembleConfig, EnsembleEstimator};
use lqs_workloads::Workload;
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt::Write;

/// ErrorAvg/ErrorTime of every ensemble member and the composed ensemble
/// over one workload (the paper's `1/|Q| Σ_Q …` aggregation).
#[derive(Debug, Clone, Serialize)]
pub struct EnsembleErrors {
    /// Workload name.
    pub workload: String,
    /// `(member id, ErrorAvg, ErrorTime)` in ensemble member order.
    pub members: Vec<(String, f64, f64)>,
    /// ErrorAvg of the composed (weighted) ensemble estimate.
    pub ensemble_error_avg: f64,
    /// ErrorTime of the composed ensemble estimate.
    pub ensemble_error_time: f64,
    /// Final selected member per query: member id → query count.
    pub selected: BTreeMap<String, usize>,
    /// Queries measured (those that produced at least one snapshot).
    pub queries: usize,
}

impl EnsembleErrors {
    /// Whether the ensemble's ErrorAvg is no worse than every member's
    /// (ties allowed) — the robustness claim the experiment table backs.
    pub fn ensemble_dominates(&self) -> bool {
        self.members
            .iter()
            .all(|(_, avg, _)| self.ensemble_error_avg <= *avg + 1e-12)
    }
}

/// Run every query of `workload`, replay its snapshot trace through the
/// standard member set plus the selection layer, and average both §5 error
/// metrics per query and then over queries.
pub fn ensemble_errors(
    workload: &Workload,
    config: &EnsembleConfig,
    opts: &ExecOptions,
) -> EnsembleErrors {
    let mut member_ids: Vec<String> = Vec::new();
    let mut member_sums: Vec<(f64, f64)> = Vec::new();
    let mut ensemble_sum = (0.0f64, 0.0f64);
    let mut selected: BTreeMap<String, usize> = BTreeMap::new();
    let mut measured = 0usize;
    for q in &workload.queries {
        let run = run_query(&workload.db, &q.plan, opts);
        if run.snapshots.is_empty() {
            continue;
        }
        // Same cost-model discipline as `estimator_for_run`: the members'
        // §4.6 weights must come from the model the run was charged under.
        let ens = EnsembleEstimator::build(&q.plan, &workload.db, &run.cost_model, config.clone());
        if member_ids.is_empty() {
            member_ids = ens.member_ids().iter().map(|s| s.to_string()).collect();
            member_sums = vec![(0.0, 0.0); member_ids.len()];
        }
        let replay = ens.replay(&run.snapshots);
        measured += 1;
        for (i, est) in replay.member_estimates.iter().enumerate() {
            member_sums[i].0 += error_count(&run, est);
            member_sums[i].1 += error_time(&run, est);
        }
        ensemble_sum.0 += error_count(&run, &replay.estimates);
        ensemble_sum.1 += error_time(&run, &replay.estimates);
        *selected
            .entry(replay.selection.selected.to_string())
            .or_insert(0) += 1;
    }
    let norm = |s: f64| {
        if measured == 0 {
            0.0
        } else {
            s / measured as f64
        }
    };
    EnsembleErrors {
        workload: workload.name.to_string(),
        members: member_ids
            .into_iter()
            .zip(&member_sums)
            .map(|(id, (a, t))| (id, norm(*a), norm(*t)))
            .collect(),
        ensemble_error_avg: norm(ensemble_sum.0),
        ensemble_error_time: norm(ensemble_sum.1),
        selected,
        queries: measured,
    }
}

/// Run the ensemble comparison over the three REAL workloads — the §5
/// customer workloads the robustness claim is evaluated on. The selection
/// seed is the scale's master seed, so the table is a pure function of
/// `scale`.
pub fn ensemble_real(scale: lqs_workloads::WorkloadScale) -> Vec<EnsembleErrors> {
    use lqs_workloads::real::{workload, RealProfile};
    let config = EnsembleConfig::standard(scale.seed);
    [RealProfile::Real1, RealProfile::Real2, RealProfile::Real3]
        .into_iter()
        .map(|p| {
            let mut w = workload(p, scale);
            w.truncate_queries(scale.query_limit);
            ensemble_errors(&w, &config, &ExecOptions::default())
        })
        .collect()
}

/// Render per-workload ensemble comparisons as a GitHub-flavored markdown
/// table (ErrorAvg per member, then the ensemble column) — the
/// EXPERIMENTS.md format.
pub fn render_ensemble_markdown(rows: &[EnsembleErrors]) -> String {
    let mut out = String::new();
    let Some(first) = rows.first() else {
        let _ = writeln!(out, "(no data)");
        return out;
    };
    let _ = write!(out, "| workload | queries |");
    for (id, _, _) in &first.members {
        let _ = write!(out, " {id} |");
    }
    let _ = writeln!(out, " ensemble | selected |");
    let _ = write!(out, "|---|---|");
    for _ in &first.members {
        let _ = write!(out, "---|");
    }
    let _ = writeln!(out, "---|---|");
    for r in rows {
        let _ = write!(out, "| {} | {} |", r.workload, r.queries);
        for (_, avg, _) in &r.members {
            let _ = write!(out, " {avg:.4} |");
        }
        let picks: Vec<String> = r
            .selected
            .iter()
            .map(|(id, n)| format!("{id}×{n}"))
            .collect();
        let _ = writeln!(
            out,
            " **{:.4}** | {} |",
            r.ensemble_error_avg,
            picks.join(", ")
        );
    }
    out
}
