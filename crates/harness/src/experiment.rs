//! Workload-level experiment drivers: run every query of a workload under a
//! set of estimator configurations and aggregate the paper's error metrics.

use crate::run::{estimates_only, estimator_for_run, run_query, trace_estimator};
use lqs_exec::ExecOptions;
use lqs_progress::{error_count, error_time, EstimatorConfig, PerOperatorError};
use lqs_workloads::Workload;
use serde::Serialize;
use std::collections::BTreeMap;

/// A labelled estimator configuration.
#[derive(Clone)]
pub struct ConfigSpec {
    /// Display label (legend entry).
    pub label: &'static str,
    /// The configuration.
    pub config: EstimatorConfig,
}

/// Which error metric to aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// §5's `Errorcount`.
    Count,
    /// §5's `Errortime`.
    Time,
}

/// Average error of each config over all queries of a workload.
#[derive(Debug, Clone, Serialize)]
pub struct WorkloadErrors {
    /// Workload name.
    pub workload: String,
    /// `(config label, average error per query)` in input config order.
    pub errors: Vec<(String, f64)>,
    /// Queries measured.
    pub queries: usize,
}

/// Run `configs` over every query of `workload`, averaging `metric` per
/// query and then over queries (the paper's `1/|Q| Σ_Q …` form).
pub fn workload_errors(
    workload: &Workload,
    configs: &[ConfigSpec],
    metric: Metric,
    opts: &ExecOptions,
) -> WorkloadErrors {
    let mut sums = vec![0.0f64; configs.len()];
    let mut measured = 0usize;
    for q in &workload.queries {
        let run = run_query(&workload.db, &q.plan, opts);
        if run.snapshots.is_empty() {
            continue;
        }
        measured += 1;
        for (i, spec) in configs.iter().enumerate() {
            let est = estimates_only(&q.plan, &workload.db, &run, spec.config.clone());
            let e = match metric {
                Metric::Count => error_count(&run, &est),
                Metric::Time => error_time(&run, &est),
            };
            sums[i] += e;
        }
    }
    WorkloadErrors {
        workload: workload.name.to_string(),
        errors: configs
            .iter()
            .zip(&sums)
            .map(|(c, s)| {
                (
                    c.label.to_string(),
                    if measured == 0 {
                        0.0
                    } else {
                        s / measured as f64
                    },
                )
            })
            .collect(),
        queries: measured,
    }
}

/// Per-operator-type average error of each config over a workload
/// (Figures 15 and 20).
#[derive(Debug, Clone, Serialize)]
pub struct PerOperatorErrors {
    /// Workload name.
    pub workload: String,
    /// Per config label: operator name → average error.
    pub by_config: Vec<(String, BTreeMap<String, f64>)>,
}

/// Accumulate per-operator errors for each config across a workload.
pub fn per_operator_errors(
    workload: &Workload,
    configs: &[ConfigSpec],
    metric: Metric,
    opts: &ExecOptions,
) -> PerOperatorErrors {
    let mut accs: Vec<PerOperatorError> = configs.iter().map(|_| PerOperatorError::new()).collect();
    for q in &workload.queries {
        let run = run_query(&workload.db, &q.plan, opts);
        if run.snapshots.is_empty() {
            continue;
        }
        for (i, spec) in configs.iter().enumerate() {
            let trace = trace_estimator(&q.plan, &workload.db, &run, spec.config.clone());
            // The statics fed to the accumulators must come from the same
            // cost model the run was charged under (the PR 1 bug class:
            // `ProgressEstimator::new` hard-codes the default model here).
            let est = estimator_for_run(&q.plan, &workload.db, &run, spec.config.clone());
            match metric {
                Metric::Count => accs[i].add_count_errors(est.statics(), &run, &trace.reports),
                Metric::Time => accs[i].add_time_errors(est.statics(), &run, &trace.reports),
            }
        }
    }
    PerOperatorErrors {
        workload: workload.name.to_string(),
        by_config: configs
            .iter()
            .zip(&accs)
            .map(|(c, a)| {
                (
                    c.label.to_string(),
                    a.averages()
                        .into_iter()
                        .map(|(k, v)| (k.to_string(), v))
                        .collect(),
                )
            })
            .collect(),
    }
}

/// Per-config running sums: operator name -> (error sum, sample count).
type OpErrorSums = BTreeMap<String, (f64, usize)>;

/// Merge per-operator accumulations across multiple workloads.
pub fn merge_per_operator(parts: &[PerOperatorErrors]) -> PerOperatorErrors {
    // Simple unweighted mean over workloads that have the operator.
    let mut by_config: Vec<(String, OpErrorSums)> = Vec::new();
    for part in parts {
        for (ci, (label, map)) in part.by_config.iter().enumerate() {
            if by_config.len() <= ci {
                by_config.push((label.clone(), BTreeMap::new()));
            }
            for (op, err) in map {
                let e = by_config[ci].1.entry(op.clone()).or_insert((0.0, 0));
                e.0 += err;
                e.1 += 1;
            }
        }
    }
    PerOperatorErrors {
        workload: "ALL".to_string(),
        by_config: by_config
            .into_iter()
            .map(|(label, map)| {
                (
                    label,
                    map.into_iter()
                        .map(|(op, (sum, n))| (op, sum / n.max(1) as f64))
                        .collect(),
                )
            })
            .collect(),
    }
}

/// Count operators by display name across a workload's plans (Figure 19).
pub fn operator_frequencies(workload: &Workload) -> BTreeMap<String, usize> {
    let mut out = BTreeMap::new();
    for q in &workload.queries {
        for n in q.plan.nodes() {
            *out.entry(n.op.display_name().to_string()).or_insert(0) += 1;
        }
    }
    out
}
