//! Running queries and replaying their DMV traces through estimators.

use lqs_exec::{execute, ExecOptions, QueryRun};
use lqs_plan::PhysicalPlan;
use lqs_progress::{EstimatorConfig, ProgressEstimator, ProgressReport};
use lqs_storage::Database;

/// One estimator's full trajectory over a query run.
pub struct EstimatorTrace {
    /// Query-level progress estimate per snapshot.
    pub estimates: Vec<f64>,
    /// Full per-node reports per snapshot.
    pub reports: Vec<ProgressReport>,
}

/// Execute a plan and keep the run (ground truth + snapshots).
pub fn run_query(db: &Database, plan: &PhysicalPlan, opts: &ExecOptions) -> QueryRun {
    execute(db, plan, opts)
}

/// Replay a run's snapshots through an estimator configuration.
pub fn trace_estimator(
    plan: &PhysicalPlan,
    db: &Database,
    run: &QueryRun,
    config: EstimatorConfig,
) -> EstimatorTrace {
    let est = ProgressEstimator::new(plan, db, config);
    let reports: Vec<ProgressReport> = run.snapshots.iter().map(|s| est.estimate(s)).collect();
    let estimates = reports.iter().map(|r| r.query_progress).collect();
    EstimatorTrace { estimates, reports }
}

/// Convenience: query-progress estimates only (skips report retention).
pub fn estimates_only(
    plan: &PhysicalPlan,
    db: &Database,
    run: &QueryRun,
    config: EstimatorConfig,
) -> Vec<f64> {
    let est = ProgressEstimator::new(plan, db, config);
    run.snapshots
        .iter()
        .map(|s| est.estimate(s).query_progress)
        .collect()
}
