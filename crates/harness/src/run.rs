//! Running queries and replaying their DMV traces through estimators.

use lqs_exec::{execute, ExecOptions, QueryRun};
use lqs_plan::PhysicalPlan;
use lqs_progress::{EstimatorConfig, ExplainCounters, ProgressEstimator, ProgressReport};
use lqs_storage::Database;

/// One estimator's full trajectory over a query run.
pub struct EstimatorTrace {
    /// Query-level progress estimate per snapshot.
    pub estimates: Vec<f64>,
    /// Full per-node reports per snapshot.
    pub reports: Vec<ProgressReport>,
}

impl EstimatorTrace {
    /// Explain counters summed over every snapshot of the trace: how many
    /// refinements were applied, bounds clamps hit, and non-GetNext models
    /// used across the whole run.
    pub fn explain_totals(&self) -> ExplainCounters {
        let mut total = ExplainCounters::default();
        for r in &self.reports {
            total.merge(&r.counters);
        }
        total
    }
}

/// Execute a plan and keep the run (ground truth + snapshots).
pub fn run_query(db: &Database, plan: &PhysicalPlan, opts: &ExecOptions) -> QueryRun {
    execute(db, plan, opts)
}

/// Build the estimator for replaying `run` — always with the *run's* cost
/// model, never `CostModel::default()`. Every harness path that pairs an
/// estimator with an executed run must go through here: constructing via
/// [`ProgressEstimator::new`] silently bakes in default-model §4.6 weights
/// and time baselines, which diverge from the observed counters whenever
/// the run used a custom [`ExecOptions::cost_model`].
pub fn estimator_for_run(
    plan: &PhysicalPlan,
    db: &Database,
    run: &QueryRun,
    config: EstimatorConfig,
) -> ProgressEstimator {
    ProgressEstimator::with_cost_model(plan, db, config, &run.cost_model)
}

/// Replay a run's snapshots through an estimator configuration.
///
/// The estimator's §4.6 weights use the *run's* cost model, not the default
/// one, so a run executed under a custom [`ExecOptions::cost_model`] is
/// replayed with matching weights.
pub fn trace_estimator(
    plan: &PhysicalPlan,
    db: &Database,
    run: &QueryRun,
    config: EstimatorConfig,
) -> EstimatorTrace {
    let est = estimator_for_run(plan, db, run, config);
    let reports: Vec<ProgressReport> = run.snapshots.iter().map(|s| est.estimate(s)).collect();
    let estimates = reports.iter().map(|r| r.query_progress).collect();
    EstimatorTrace { estimates, reports }
}

/// Convenience: query-progress estimates only (skips report retention).
pub fn estimates_only(
    plan: &PhysicalPlan,
    db: &Database,
    run: &QueryRun,
    config: EstimatorConfig,
) -> Vec<f64> {
    let est = estimator_for_run(plan, db, run, config);
    run.snapshots
        .iter()
        .map(|s| est.estimate(s).query_progress)
        .collect()
}
