//! # lqs-harness — the experiment harness
//!
//! Drives the paper's §5 evaluation end to end: executes workload queries on
//! the engine, replays their DMV traces through estimator configurations,
//! aggregates `Errorcount`/`Errortime`, and regenerates every table and
//! figure of the paper (see [`figures`]; DESIGN.md holds the experiment
//! index mapping each figure to its function and bench binary).

#![warn(missing_docs)]

pub mod calibrate;
pub mod ensemble;
pub mod experiment;
pub mod figures;
pub mod report;
pub mod run;

pub use calibrate::{calibrate_weights, WeightCalibration};
pub use ensemble::{ensemble_errors, render_ensemble_markdown, EnsembleErrors};
pub use experiment::{
    merge_per_operator, operator_frequencies, per_operator_errors, workload_errors, ConfigSpec,
    Metric, PerOperatorErrors, WorkloadErrors,
};
pub use run::{estimates_only, run_query, trace_estimator, EstimatorTrace};
