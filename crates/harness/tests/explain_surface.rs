//! The harness surfaces the estimator's explain diagnostics, and replays
//! runs with the cost model they actually executed under.

use lqs_exec::ExecOptions;
use lqs_harness::report::render_explain;
use lqs_harness::{run_query, trace_estimator};
use lqs_plan::{AggFunc, Aggregate, CostModel, Expr, JoinKind, PlanBuilder, SortKey};
use lqs_progress::EstimatorConfig;
use lqs_storage::{Column, DataType, Database, Schema, Table, TableId, Value};

fn db() -> (Database, TableId, TableId) {
    let mut fact = Table::new(
        "fact",
        Schema::new(vec![
            Column::new("k", DataType::Int),
            Column::new("v", DataType::Int),
        ]),
    );
    for i in 0..3000 {
        fact.insert(vec![Value::Int(i % 100), Value::Int(i)])
            .unwrap();
    }
    let mut dim = Table::new(
        "dim",
        Schema::new(vec![
            Column::new("k", DataType::Int),
            Column::new("name", DataType::Int),
        ]),
    );
    for i in 0..100 {
        dim.insert(vec![Value::Int(i), Value::Int(i)]).unwrap();
    }
    let mut db = Database::new();
    let f = db.add_table_analyzed(fact);
    let d = db.add_table_analyzed(dim);
    (db, f, d)
}

fn plan(db: &Database, f: TableId, d: TableId) -> lqs_plan::PhysicalPlan {
    let mut b = PlanBuilder::new(db);
    let dim_scan = b.table_scan(d);
    let fact_scan = b.table_scan_filtered(f, Expr::col(1).lt(Expr::lit(2500i64)), true);
    let join = b.hash_join(JoinKind::Inner, dim_scan, fact_scan, vec![0], vec![0]);
    let agg = b.hash_aggregate(join, vec![0], vec![Aggregate::of_col(AggFunc::Sum, 3)]);
    let sort = b.sort(agg, vec![SortKey::desc(1)]);
    b.finish(sort)
}

#[test]
fn every_report_node_has_explanation_and_counters_aggregate() {
    let (db, f, d) = db();
    let plan = plan(&db, f, d);
    let run = run_query(&db, &plan, &ExecOptions::default());
    let trace = trace_estimator(&plan, &db, &run, EstimatorConfig::full());

    assert!(!trace.reports.is_empty());
    for rep in &trace.reports {
        for np in &rep.nodes {
            assert!(!np.explanation.path.label().is_empty());
            assert!(!np.explanation.refinement.label().is_empty());
        }
    }
    // The run has blocking operators (sort, hash agg, hash join), so full
    // config must price some nodes with a special model at some snapshot.
    let totals = trace.explain_totals();
    assert!(totals.special_model_nodes > 0, "totals: {totals:?}");

    let text = render_explain("explain", &trace);
    assert!(text.contains("refinements:"));
    assert!(text.contains("clamps:"));
    // Every operator of the final snapshot appears in the breakdown.
    for np in &trace.reports.last().unwrap().nodes {
        assert!(text.contains(np.explanation.path.label()));
    }
}

#[test]
fn replay_uses_the_runs_cost_model() {
    let (db, f, d) = db();
    let plan = plan(&db, f, d);

    // Execute under a cost model with I/O 50x more expensive than default.
    let mut opts = ExecOptions::default();
    opts.cost_model = CostModel {
        io_page_ns: CostModel::default().io_page_ns * 50.0,
        ..opts.cost_model
    };
    let run = run_query(&db, &plan, &opts);
    assert_eq!(run.cost_model.io_page_ns, opts.cost_model.io_page_ns);

    // A weighted estimator replayed over the run must match an estimator
    // explicitly constructed with the run's cost model — and differ from the
    // default-cost-model estimator (the bug this guards against).
    let cfg = EstimatorConfig::full();
    let traced = trace_estimator(&plan, &db, &run, cfg.clone());
    let explicit =
        lqs_progress::ProgressEstimator::with_cost_model(&plan, &db, cfg.clone(), &opts.cost_model);
    let wrong = lqs_progress::ProgressEstimator::new(&plan, &db, cfg);

    let mut diverged = false;
    for (s, est) in run.snapshots.iter().zip(&traced.estimates) {
        let want = explicit.estimate(s).query_progress;
        assert!(
            (est - want).abs() < 1e-12,
            "replay diverged from run cost model: {est} vs {want}"
        );
        if (est - wrong.estimate(s).query_progress).abs() > 1e-9 {
            diverged = true;
        }
    }
    assert!(
        diverged,
        "a 50x I/O cost model should change weighted progress estimates"
    );
}
