//! Regression tests for the estimator/run cost-model mismatch (the PR 1
//! bug class, re-found at `experiment.rs`'s per-operator path): every
//! harness estimator paired with an executed run must be built from the
//! *run's* recorded cost model, not `CostModel::default()`.

use lqs_harness::experiment::{per_operator_errors, workload_errors, ConfigSpec, Metric};
use lqs_harness::run::{estimator_for_run, run_query};
use lqs_plan::{CostModel, Expr, PlanBuilder, SortKey};
use lqs_progress::{EstimatorConfig, ProgressEstimator};
use lqs_storage::{Column, DataType, Database, Schema, Table, Value};
use lqs_workloads::{NamedQuery, Workload};

/// An I/O-heavy cost model far from the default (io_page_ns 40_000).
fn weird_cost_model() -> CostModel {
    CostModel {
        io_page_ns: 2_000_000.0,
        ..CostModel::default()
    }
}

fn tiny_workload() -> Workload {
    let mut t = Table::new(
        "t",
        Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("b", DataType::Int),
        ]),
    );
    for i in 0..4000i64 {
        t.insert(vec![Value::Int(i), Value::Int(i % 37)]).unwrap();
    }
    let mut db = Database::new();
    let id = db.add_table_analyzed(t);
    let mut b = PlanBuilder::new(&db);
    let scan = b.table_scan_filtered(id, Expr::col(1).lt(Expr::lit(20i64)), true);
    let sort = b.sort(scan, vec![SortKey::desc(0)]);
    let plan = b.finish(sort);
    Workload {
        name: "cost-model-parity",
        db,
        queries: vec![NamedQuery {
            name: "q1".to_string(),
            plan,
        }],
    }
}

/// The estimator the harness pairs with a run must carry the run's cost
/// model. Fails on the pre-fix code path (`ProgressEstimator::new`), whose
/// statics bake in default-model weights.
#[test]
fn estimator_for_run_uses_the_runs_cost_model() {
    let w = tiny_workload();
    let q = &w.queries[0];
    let opts = lqs_exec::ExecOptions {
        cost_model: weird_cost_model(),
        ..Default::default()
    };
    let run = run_query(&w.db, &q.plan, &opts);
    assert_eq!(run.cost_model.io_page_ns, weird_cost_model().io_page_ns);

    let harness_est = estimator_for_run(&q.plan, &w.db, &run, EstimatorConfig::full());
    let matched = ProgressEstimator::with_cost_model(
        &q.plan,
        &w.db,
        EstimatorConfig::full(),
        &run.cost_model,
    );
    let defaulted = ProgressEstimator::new(&q.plan, &w.db, EstimatorConfig::full());

    let weights = |e: &ProgressEstimator| -> Vec<f64> {
        e.statics().nodes.iter().map(|n| n.weight).collect()
    };
    assert_eq!(weights(&harness_est), weights(&matched));
    // Sanity: under an I/O-heavy model the weights genuinely differ, so the
    // equality above is not vacuous.
    assert_ne!(weights(&harness_est), weights(&defaulted));
}

/// End-to-end: the experiment drivers run cleanly under a non-default cost
/// model and produce finite, in-range errors.
#[test]
fn experiment_spec_under_non_default_cost_model() {
    let w = tiny_workload();
    let configs = [
        ConfigSpec {
            label: "TGN",
            config: EstimatorConfig::tgn(),
        },
        ConfigSpec {
            label: "LQS",
            config: EstimatorConfig::full(),
        },
    ];
    let opts = lqs_exec::ExecOptions {
        cost_model: weird_cost_model(),
        ..Default::default()
    };

    let errs = workload_errors(&w, &configs, Metric::Time, &opts);
    assert_eq!(errs.queries, 1);
    for (label, e) in &errs.errors {
        assert!(e.is_finite() && (0.0..=1.0).contains(e), "{label}: {e}");
    }

    let per_op = per_operator_errors(&w, &configs, Metric::Count, &opts);
    assert_eq!(per_op.by_config.len(), configs.len());
    for (label, map) in &per_op.by_config {
        assert!(!map.is_empty(), "{label} produced no per-operator errors");
        for (op, e) in map {
            assert!(
                e.is_finite() && (0.0..=1.0).contains(e),
                "{label}/{op}: {e}"
            );
        }
    }
}
