//! Tests for the experiment report rendering and aggregation utilities.

use lqs_harness::report::{
    render_frequencies, render_per_operator, render_workload_errors, to_json,
};
use lqs_harness::{merge_per_operator, PerOperatorErrors, WorkloadErrors};
use std::collections::BTreeMap;

fn sample_rows() -> Vec<WorkloadErrors> {
    vec![
        WorkloadErrors {
            workload: "W1".into(),
            errors: vec![("A".into(), 0.1234), ("B".into(), 0.5)],
            queries: 10,
        },
        WorkloadErrors {
            workload: "W2".into(),
            errors: vec![("A".into(), 0.2), ("B".into(), 0.25)],
            queries: 3,
        },
    ]
}

#[test]
fn workload_errors_table_renders_all_cells() {
    let out = render_workload_errors("title", &sample_rows());
    assert!(out.contains("title"));
    assert!(out.contains("W1") && out.contains("W2"));
    assert!(out.contains("0.1234") && out.contains("0.2500"));
    assert!(out.contains("10") && out.contains("3"));
    // Header contains both config labels once.
    assert!(out.matches('A').count() >= 1);
}

#[test]
fn empty_workload_errors_render_gracefully() {
    let out = render_workload_errors("empty", &[]);
    assert!(out.contains("no data"));
}

#[test]
fn per_operator_table_renders_missing_as_dash() {
    let mut m1 = BTreeMap::new();
    m1.insert("Sort".to_string(), 0.25);
    let mut m2 = BTreeMap::new();
    m2.insert("Filter".to_string(), 0.125);
    let data = PerOperatorErrors {
        workload: "X".into(),
        by_config: vec![("cfg1".into(), m1), ("cfg2".into(), m2)],
    };
    let out = render_per_operator("ops", &data);
    assert!(out.contains("Sort") && out.contains("Filter"));
    assert!(out.contains('-'), "missing cells should render as dashes");
    assert!(out.contains("0.2500") && out.contains("0.1250"));
}

#[test]
fn merge_per_operator_averages_across_workloads() {
    let mk = |v: f64| {
        let mut m = BTreeMap::new();
        m.insert("Sort".to_string(), v);
        PerOperatorErrors {
            workload: "w".into(),
            by_config: vec![("cfg".into(), m)],
        }
    };
    let merged = merge_per_operator(&[mk(0.2), mk(0.4)]);
    assert_eq!(merged.by_config.len(), 1);
    let v = merged.by_config[0].1["Sort"];
    assert!((v - 0.3).abs() < 1e-12, "expected mean 0.3, got {v}");
}

#[test]
fn frequencies_table_includes_union_of_operators() {
    let mut a = BTreeMap::new();
    a.insert("Index Seek".to_string(), 7usize);
    let mut b = BTreeMap::new();
    b.insert("Columnstore Index Scan".to_string(), 9usize);
    let out = render_frequencies("freq", "row", &a, "cs", &b);
    assert!(out.contains("Index Seek") && out.contains("Columnstore Index Scan"));
    assert!(out.contains('7') && out.contains('9'));
    // Operators absent from one side render as 0.
    assert!(out.contains('0'));
}

#[test]
fn json_serialization_round_trips() {
    let rows = sample_rows();
    let json = to_json(&rows);
    let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
    assert_eq!(parsed[0]["workload"], "W1");
    assert_eq!(parsed[1]["queries"], 3);
}
