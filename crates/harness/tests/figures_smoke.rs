//! Qualitative-shape tests for the figure-regeneration functions, at smoke
//! scale: these assert the *direction* of every result the paper reports
//! (who wins, roughly by how much), which is the reproduction's acceptance
//! criterion (DESIGN.md §7).

use lqs_harness::figures;
use lqs_workloads::WorkloadScale;

fn smoke() -> WorkloadScale {
    WorkloadScale {
        data_scale: 0.25,
        query_limit: 5,
        seed: 42,
    }
}

#[test]
fn fig8_exchange_lags_child() {
    let f = figures::figure8(smoke());
    assert!(!f.nested_loops.is_empty());
    // Early ratios are large (paper: 88x / 12x), converging near 1 by the end.
    assert!(f.max_ratio > 10.0, "max ratio {}", f.max_ratio);
    assert!(f.final_ratio < 2.0, "final ratio {}", f.final_ratio);
    // NL is always ahead of (or equal to) the exchange.
    for (a, b) in f.nested_loops.iter().zip(&f.exchange) {
        assert!(a.v >= b.v);
    }
}

#[test]
fn fig11_two_phase_beats_output_only() {
    let f = figures::figure11(smoke());
    assert!(
        f.error_two_phase < f.error_output_only,
        "two-phase {} vs output-only {}",
        f.error_two_phase,
        f.error_output_only
    );
    // The output-only model flatlines: most samples near zero.
    let near_zero = f.output_only.iter().filter(|p| p.v < 0.05).count() as f64
        / f.output_only.len().max(1) as f64;
    assert!(
        near_zero > 0.7,
        "output-only near-zero fraction {near_zero}"
    );
}

#[test]
fn fig12_weighted_tracks_time_better() {
    let f = figures::figure12(smoke());
    assert!(
        f.error_weighted < f.error_unweighted,
        "weighted {} vs unweighted {}",
        f.error_weighted,
        f.error_unweighted
    );
}

#[test]
fn fig13_estimators_differ() {
    // Figure 13 is an illustration of two estimator trajectories; assert
    // both are sane and distinguishable, not that one dominates on this
    // single query.
    let f = figures::figure13(smoke());
    assert!(!f.estimator1.is_empty());
    assert!(f.error1 < 0.2, "LQS error {}", f.error1);
    assert!(f.error2 < 0.3, "TGN error {}", f.error2);
}

#[test]
fn fig14_refinement_and_bounding_help() {
    let rows = figures::figure14(smoke());
    assert_eq!(rows.len(), 5);
    // Per-node clamping can occasionally worsen a single query's aggregate
    // (opposing errors cancel), so assert the average ordering the paper's
    // Figure 14 shows, not per-workload dominance at smoke scale.
    let avg = |i: usize| rows.iter().map(|r| r.errors[i].1).sum::<f64>() / rows.len() as f64;
    let (none, bounded, refined) = (avg(0), avg(1), avg(2));
    // Bounding alone may lift badly underestimated nodes to LB = K, which
    // inflates their weight in the TGN sum — the "99% and stays" artifact
    // the paper itself illustrates in Figure 4. Require it to stay in the
    // same accuracy class; the headline claim is that refinement on top of
    // bounding wins clearly.
    // At 5 queries per workload these averages carry real sampling noise;
    // the full-scale ordering is recorded in EXPERIMENTS.md. Here we assert
    // the techniques stay within noise of the baseline and that refinement
    // does not lose to bounding alone.
    assert!(
        bounded <= none + 0.05,
        "bounding far worse on average: {bounded} vs {none}"
    );
    assert!(
        refined <= none + 0.02,
        "refinement far worse: {refined} vs {none}"
    );
    assert!(
        refined <= bounded + 0.01,
        "refinement lost to bounding alone: {refined} vs {bounded}"
    );
}

#[test]
fn fig16_weights_help_on_average() {
    let rows = figures::figure16(smoke());
    assert_eq!(rows.len(), 5);
    let avg_with: f64 = rows.iter().map(|r| r.errors[0].1).sum::<f64>() / 5.0;
    let avg_without: f64 = rows.iter().map(|r| r.errors[1].1).sum::<f64>() / 5.0;
    assert!(
        avg_with <= avg_without + 0.01,
        "weighted {avg_with} vs unweighted {avg_without}"
    );
}

#[test]
fn fig17_two_phase_helps_blocking_ops() {
    let f = figures::figure17(smoke());
    assert_eq!(f.by_config.len(), 2);
    let out_only = &f.by_config[0].1;
    let two_phase = &f.by_config[1].1;
    // Hash aggregates must improve; sorts should not get dramatically worse.
    let key = "Hash Match (Aggregate)";
    if let (Some(a), Some(b)) = (out_only.get(key), two_phase.get(key)) {
        assert!(b < a, "hash agg: two-phase {b} vs output-only {a}");
    }
}

#[test]
fn fig18_20_columnstore_reduces_error() {
    let f18 = figures::figure18(smoke());
    assert!(
        f18.tpch_columnstore < f18.tpch + 0.02,
        "columnstore {} vs row {}",
        f18.tpch_columnstore,
        f18.tpch
    );

    let f19 = figures::figure19(smoke());
    // Row design uses seek/NL operators the columnstore design lacks.
    assert!(f19.tpch.contains_key("Index Seek"));
    assert!(!f19.tpch_columnstore.contains_key("Index Seek"));
    assert!(f19.tpch_columnstore.contains_key("Columnstore Index Scan"));
    // Columnstore design has fewer distinct operator types.
    assert!(f19.tpch_columnstore.len() < f19.tpch.len());
}
