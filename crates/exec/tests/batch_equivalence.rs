//! Property tests for the batch/tuple equivalence contract: executing any
//! plan with `ExecMode::Batch` must produce the same virtual-time totals,
//! the same snapshot cadence, and bit-identical final counter rows as
//! `ExecMode::Tuple` — except `first_row_ns`, which the vectorized path
//! stamps at flush granularity (the one documented divergence).

use lqs_exec::{execute, execute_traced, ExecMode, ExecOptions};
use lqs_obs::{EventKind, RingBufferSink};
use lqs_plan::{
    AggFunc, Aggregate, ExchangeKind, Expr, JoinKind, NodeId, PhysicalPlan, PlanBuilder, SeekKey,
    SeekRange, SortKey,
};
use lqs_storage::{Column, DataType, Database, Schema, Table, TableId, Value};
use proptest::prelude::*;

/// A recursive plan specification the strategy generates. Mirrors the
/// generator in `lqs-progress/tests/bounds_invariant.rs` so the equivalence
/// contract is exercised over the same operator mix the bounds proofs use.
#[derive(Debug, Clone)]
enum Spec {
    Scan { filtered: bool },
    IndexedScan,
    Filter(Box<Spec>, i64),
    Sort(Box<Spec>),
    TopNSort(Box<Spec>, usize),
    Top(Box<Spec>, usize),
    HashAgg(Box<Spec>, bool),
    StreamAggScalar(Box<Spec>),
    HashJoin(Box<Spec>, Box<Spec>, JoinKind),
    MergeJoinSorted(Box<Spec>, Box<Spec>),
    NestedLoopsSeek { outer: Box<Spec>, buffered: bool },
    NestedLoopsSpool { outer: Box<Spec> },
    Exchange(Box<Spec>),
    Concat(Box<Spec>, Box<Spec>),
}

fn leaf() -> impl Strategy<Value = Spec> {
    prop_oneof![
        Just(Spec::Scan { filtered: false }),
        Just(Spec::Scan { filtered: true }),
        Just(Spec::IndexedScan),
    ]
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    leaf().prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), 0i64..900).prop_map(|(s, t)| Spec::Filter(Box::new(s), t)),
            inner.clone().prop_map(|s| Spec::Sort(Box::new(s))),
            (inner.clone(), 1usize..200).prop_map(|(s, n)| Spec::TopNSort(Box::new(s), n)),
            (inner.clone(), 1usize..200).prop_map(|(s, n)| Spec::Top(Box::new(s), n)),
            (inner.clone(), any::<bool>()).prop_map(|(s, g)| Spec::HashAgg(Box::new(s), g)),
            inner
                .clone()
                .prop_map(|s| Spec::StreamAggScalar(Box::new(s))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Spec::HashJoin(
                Box::new(a),
                Box::new(b),
                JoinKind::Inner
            )),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Spec::HashJoin(
                Box::new(a),
                Box::new(b),
                JoinKind::LeftSemi
            )),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Spec::HashJoin(
                Box::new(a),
                Box::new(b),
                JoinKind::LeftOuter
            )),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Spec::MergeJoinSorted(Box::new(a), Box::new(b))),
            (inner.clone(), any::<bool>()).prop_map(|(o, b)| Spec::NestedLoopsSeek {
                outer: Box::new(o),
                buffered: b
            }),
            inner
                .clone()
                .prop_map(|o| Spec::NestedLoopsSpool { outer: Box::new(o) }),
            inner.clone().prop_map(|s| Spec::Exchange(Box::new(s))),
            (inner.clone(), inner).prop_map(|(a, b)| Spec::Concat(Box::new(a), Box::new(b))),
        ]
    })
}

struct Ctx {
    db: Database,
    table: TableId,
    small: TableId,
    index: lqs_storage::IndexId,
}

fn make_db(rows: i64, seed: i64) -> Ctx {
    let mut t = Table::new(
        "t",
        Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("b", DataType::Int),
            Column::new("c", DataType::Int),
        ]),
    );
    for i in 0..rows {
        t.insert(vec![
            Value::Int(i),
            Value::Int((i * 7 + seed) % 1000),
            Value::Int((i * i + seed) % 50),
        ])
        .unwrap();
    }
    let mut s = Table::new(
        "s",
        Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("b", DataType::Int),
        ]),
    );
    for i in 0..40 {
        s.insert(vec![Value::Int(i), Value::Int((i + seed) % 7)])
            .unwrap();
    }
    let mut db = Database::new();
    let table = db.add_table_analyzed(t);
    let small = db.add_table_analyzed(s);
    let index = db.create_btree_index("ix_c", table, vec![2], false);
    Ctx {
        db,
        table,
        small,
        index,
    }
}

/// Build the spec into a plan node; always emits ≥ 2 int columns so every
/// wrapper can reference columns 0 and 1.
fn build(b: &mut PlanBuilder, ctx: &Ctx, spec: &Spec, depth: usize) -> NodeId {
    let base = if depth.is_multiple_of(2) {
        ctx.table
    } else {
        ctx.small
    };
    match spec {
        Spec::Scan { filtered } => {
            if *filtered {
                b.table_scan_filtered(base, Expr::col(1).lt(Expr::lit(500i64)), true)
            } else {
                b.table_scan(base)
            }
        }
        Spec::IndexedScan => b.index_scan(ctx.index),
        Spec::Filter(inner, t) => {
            let c = build(b, ctx, inner, depth + 1);
            b.filter(c, Expr::col(1).lt(Expr::lit(*t)))
        }
        Spec::Sort(inner) => {
            let c = build(b, ctx, inner, depth + 1);
            b.sort(c, vec![SortKey::asc(0)])
        }
        Spec::TopNSort(inner, n) => {
            let c = build(b, ctx, inner, depth + 1);
            b.top_n_sort(c, *n, vec![SortKey::asc(0)])
        }
        Spec::Top(inner, n) => {
            let c = build(b, ctx, inner, depth + 1);
            b.add(lqs_plan::PhysicalOp::Top { n: *n }, vec![c])
        }
        Spec::HashAgg(inner, grouped) => {
            let c = build(b, ctx, inner, depth + 1);
            let group = if *grouped { vec![1] } else { vec![] };
            let agg = b.hash_aggregate(c, group, vec![Aggregate::of_col(AggFunc::Sum, 0)]);
            b.compute_scalar(agg, vec![Expr::lit(0i64)])
        }
        Spec::StreamAggScalar(inner) => {
            let c = build(b, ctx, inner, depth + 1);
            let agg = b.stream_aggregate(c, vec![], vec![Aggregate::count_star()]);
            b.compute_scalar(agg, vec![Expr::lit(0i64)])
        }
        Spec::HashJoin(l, r, kind) => {
            let lc = build(b, ctx, l, depth + 1);
            let rc = build(b, ctx, r, depth + 1);
            b.hash_join(*kind, lc, rc, vec![1], vec![1])
        }
        Spec::MergeJoinSorted(l, r) => {
            let lc = build(b, ctx, l, depth + 1);
            let rc = build(b, ctx, r, depth + 1);
            let ls = b.sort(lc, vec![SortKey::asc(1)]);
            let rs = b.sort(rc, vec![SortKey::asc(1)]);
            b.merge_join(JoinKind::Inner, ls, rs, vec![1], vec![1])
        }
        Spec::NestedLoopsSeek { outer, buffered } => {
            let oc = build(b, ctx, outer, depth + 1);
            let seek = b.index_seek(ctx.index, SeekRange::eq(vec![SeekKey::OuterRef(1)]));
            b.nested_loops(
                JoinKind::Inner,
                oc,
                seek,
                None,
                if *buffered { 4096 } else { 1 },
            )
        }
        Spec::NestedLoopsSpool { outer } => {
            let oc = build(b, ctx, outer, depth + 1);
            let scan = b.table_scan(ctx.small);
            let spool = b.spool(scan, true);
            b.nested_loops(
                JoinKind::Inner,
                oc,
                spool,
                Some(Expr::col(1).eq(Expr::col(1))),
                1,
            )
        }
        Spec::Exchange(inner) => {
            let c = build(b, ctx, inner, depth + 1);
            b.exchange(c, ExchangeKind::GatherStreams, 4)
        }
        Spec::Concat(l, r) => {
            let lc = build(b, ctx, l, depth + 1);
            let rc = build(b, ctx, r, depth + 1);
            let lp = project2(b, lc);
            let rp = project2(b, rc);
            b.add(lqs_plan::PhysicalOp::Concat, vec![lp, rp])
        }
    }
}

/// Canonical two-column projection for Concat arity matching.
fn project2(b: &mut PlanBuilder, c: NodeId) -> NodeId {
    b.hash_aggregate(c, vec![0], vec![Aggregate::of_col(AggFunc::Count, 1)])
}

fn opts(mode: ExecMode, batch_size: usize) -> ExecOptions {
    ExecOptions {
        mode,
        batch_size,
        ..ExecOptions::default()
    }
}

/// Run the plan in both modes and assert the equivalence contract.
fn check_equivalent(plan: &PhysicalPlan, db: &Database, batch_size: usize) {
    let tup = execute(db, plan, &opts(ExecMode::Tuple, batch_size));
    let bat = execute(db, plan, &opts(ExecMode::Batch, batch_size));

    assert_eq!(
        tup.rows_returned,
        bat.rows_returned,
        "rows_returned diverged\nplan:\n{}",
        plan.display_tree()
    );
    assert_eq!(
        tup.duration_ns,
        bat.duration_ns,
        "virtual duration diverged\nplan:\n{}",
        plan.display_tree()
    );

    // Identical clock trajectory ⇒ identical snapshot cadence.
    let tup_ts: Vec<u64> = tup.snapshots.iter().map(|s| s.ts_ns).collect();
    let bat_ts: Vec<u64> = bat.snapshots.iter().map(|s| s.ts_ns).collect();
    assert_eq!(
        tup_ts,
        bat_ts,
        "snapshot cadence diverged\nplan:\n{}",
        plan.display_tree()
    );

    // Final counter rows are bit-identical except first_row_ns: the batch
    // loop stamps it when the producing scope settles, which can land later
    // on the virtual clock than the per-tuple stamp (never earlier than the
    // row's true production would allow within the same flush window).
    assert_eq!(tup.final_counters.len(), bat.final_counters.len());
    for (i, (t, b)) in tup
        .final_counters
        .iter()
        .zip(bat.final_counters.iter())
        .enumerate()
    {
        let mut t = t.clone();
        let mut b = b.clone();
        t.first_row_ns = None;
        b.first_row_ns = None;
        assert_eq!(
            t,
            b,
            "final counters diverged at node {i}\nplan:\n{}",
            plan.display_tree()
        );
    }

    // Per-node time attribution is part of the contract too: both modes
    // credit identical self-time to every node, and either mode's credits
    // sum exactly to its virtual duration (no lost or double-counted ns).
    assert_eq!(
        tup.node_elapsed_ns,
        bat.node_elapsed_ns,
        "per-node attribution diverged\nplan:\n{}",
        plan.display_tree()
    );
    assert_eq!(
        tup.node_elapsed_ns.iter().sum::<u64>(),
        tup.duration_ns,
        "attribution does not sum to the clock\nplan:\n{}",
        plan.display_tree()
    );

    // Attaching an event sink must not perturb the batch run: same rows,
    // same clock, same counters, same attribution — tracing observes the
    // flush path, it never de-vectorizes or re-times it.
    let sink = RingBufferSink::new(1 << 20);
    let traced = execute_traced(db, plan, &opts(ExecMode::Batch, batch_size), &sink);
    assert_eq!(traced.rows_returned, bat.rows_returned);
    assert_eq!(traced.duration_ns, bat.duration_ns);
    assert_eq!(traced.final_counters, bat.final_counters);
    assert_eq!(traced.node_elapsed_ns, bat.node_elapsed_ns);

    // And the batch spans it emitted are well-formed: coarsened to flush
    // granularity (documented), but always inside the run and never
    // time-reversed.
    let mut batch_spans = 0usize;
    for e in sink.events() {
        if let EventKind::OperatorBatch { start_ns, .. } = e.kind {
            batch_spans += 1;
            assert!(start_ns <= e.ts_ns, "span ends before it starts");
            assert!(e.ts_ns <= traced.duration_ns, "span past end of run");
            assert!(e.node.is_some(), "batch span without a node");
        }
    }
    if traced.rows_returned > 0 {
        assert!(
            batch_spans > 0,
            "a producing batch run must emit batch spans\nplan:\n{}",
            plan.display_tree()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn batch_mode_matches_tuple_mode(spec in spec_strategy(), seed in 0i64..5) {
        let ctx = make_db(2500, seed);
        let mut b = PlanBuilder::new(&ctx.db);
        let root = build(&mut b, &ctx, &spec, 0);
        let plan = b.finish(root);
        check_equivalent(&plan, &ctx.db, 1024);
    }

    /// Odd batch sizes shift every flush boundary; the contract must hold
    /// regardless of where batches split.
    #[test]
    fn batch_size_does_not_matter(spec in spec_strategy(), bs in 1usize..130) {
        let ctx = make_db(900, 3);
        let mut b = PlanBuilder::new(&ctx.db);
        let root = build(&mut b, &ctx, &spec, 0);
        let plan = b.finish(root);
        check_equivalent(&plan, &ctx.db, bs);
    }
}

#[test]
fn equivalence_on_handwritten_corner_cases() {
    let ctx = make_db(2000, 1);

    // Empty-result filter feeding a grouped aggregate.
    let mut b = PlanBuilder::new(&ctx.db);
    let scan = b.table_scan_filtered(ctx.table, Expr::col(0).lt(Expr::lit(-1i64)), true);
    let agg = b.hash_aggregate(scan, vec![1], vec![Aggregate::count_star()]);
    let plan = b.finish(agg);
    check_equivalent(&plan, &ctx.db, 1024);

    // TOP 1 over a join: strict-limit handling must not overshoot.
    let mut b = PlanBuilder::new(&ctx.db);
    let l = b.table_scan(ctx.table);
    let r = b.table_scan(ctx.small);
    let j = b.hash_join(JoinKind::Inner, l, r, vec![1], vec![1]);
    let top = b.add(lqs_plan::PhysicalOp::Top { n: 1 }, vec![j]);
    let plan = b.finish(top);
    check_equivalent(&plan, &ctx.db, 7);

    // Deep nested loops with rebinds crossing batch boundaries.
    let mut b = PlanBuilder::new(&ctx.db);
    let outer = b.table_scan(ctx.small);
    let mid_seek = b.index_seek(ctx.index, SeekRange::eq(vec![SeekKey::OuterRef(1)]));
    let nl1 = b.nested_loops(JoinKind::Inner, outer, mid_seek, None, 1);
    let inner_seek = b.index_seek(ctx.index, SeekRange::eq(vec![SeekKey::OuterRef(4)]));
    let nl2 = b.nested_loops(JoinKind::LeftOuter, nl1, inner_seek, None, 64);
    let plan = b.finish(nl2);
    check_equivalent(&plan, &ctx.db, 1024);
}
