//! Close-time metrics recording: the operator and query families must
//! reflect a run's final counters exactly, and only completed runs record.

use lqs_exec::{execute_hooked, ExecHooks, ExecMetrics, ExecOptions};
use lqs_metrics::MetricsRegistry;
use lqs_plan::{Expr, PlanBuilder, SortKey};
use lqs_storage::{Column, DataType, Database, Schema, Table, TableId, Value};
use std::sync::Arc;

fn db() -> (Database, TableId) {
    let mut t = Table::new(
        "t",
        Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("b", DataType::Int),
        ]),
    );
    for i in 0..5000 {
        t.insert(vec![Value::Int(i), Value::Int(i % 100)]).unwrap();
    }
    let mut db = Database::new();
    let id = db.add_table_analyzed(t);
    (db, id)
}

#[test]
fn close_time_recording_matches_final_counters() {
    let (db, t) = db();
    let mut b = PlanBuilder::new(&db);
    let scan = b.table_scan_filtered(t, Expr::col(1).lt(Expr::lit(50i64)), true);
    let sort = b.sort(scan, vec![SortKey::desc(0)]);
    let plan = b.finish(sort);

    let registry = Arc::new(MetricsRegistry::new());
    let metrics = ExecMetrics::new(Arc::clone(&registry));
    let hooks = ExecHooks {
        metrics: Some(&metrics),
        ..ExecHooks::default()
    };
    let run = execute_hooked(&db, &plan, &ExecOptions::default(), hooks).expect("no abort hooks");

    // Per-operator histograms carry exactly the run's final counters.
    let scan_rows = registry.histogram("lqs_operator_rows_output", "", &[("op", "Table Scan")]);
    assert_eq!(scan_rows.count(), 1);
    assert_eq!(
        scan_rows.sum(),
        run.final_counters[scan.0].rows_output as f64
    );
    let sort_rows = registry.histogram("lqs_operator_rows_output", "", &[("op", "Sort")]);
    assert_eq!(
        sort_rows.sum(),
        run.final_counters[sort.0 as usize].rows_output as f64
    );
    let scan_reads = registry.histogram("lqs_operator_logical_reads", "", &[("op", "Table Scan")]);
    assert_eq!(
        scan_reads.sum(),
        run.final_counters[scan.0].logical_reads as f64
    );
    let scan_cpu = registry.histogram("lqs_operator_cpu_virtual_ns", "", &[("op", "Table Scan")]);
    assert_eq!(scan_cpu.sum(), run.final_counters[scan.0].cpu_ns as f64);

    // Query-level families.
    assert_eq!(
        registry
            .counter("lqs_queries_executed_total", "", &[])
            .get(),
        1
    );
    let duration = registry.histogram("lqs_query_duration_virtual_ns", "", &[]);
    assert_eq!(duration.sum(), run.duration_ns as f64);
    let returned = registry.histogram("lqs_query_rows_returned", "", &[]);
    assert_eq!(returned.sum(), run.rows_returned as f64);

    // A second run accumulates rather than resets.
    let hooks = ExecHooks {
        metrics: Some(&metrics),
        ..ExecHooks::default()
    };
    execute_hooked(&db, &plan, &ExecOptions::default(), hooks).unwrap();
    assert_eq!(
        registry
            .counter("lqs_queries_executed_total", "", &[])
            .get(),
        2
    );
    assert_eq!(scan_rows.count(), 2);

    // The rendered exposition names every family.
    let text = registry.render();
    for family in [
        "lqs_operator_rows_output",
        "lqs_operator_logical_reads",
        "lqs_operator_cpu_virtual_ns",
        "lqs_query_duration_virtual_ns",
        "lqs_query_rows_returned",
        "lqs_queries_executed_total",
    ] {
        assert!(
            text.contains(&format!("# TYPE {family} ")),
            "missing {family}"
        );
    }
}

#[test]
fn aborted_runs_record_nothing() {
    let (db, t) = db();
    let mut b = PlanBuilder::new(&db);
    let scan = b.table_scan(t);
    let plan = b.finish(scan);

    let registry = Arc::new(MetricsRegistry::new());
    let metrics = ExecMetrics::new(Arc::clone(&registry));
    let hooks = ExecHooks {
        metrics: Some(&metrics),
        deadline_ns: Some(1), // aborts on the first clock tick
        ..ExecHooks::default()
    };
    execute_hooked(&db, &plan, &ExecOptions::default(), hooks)
        .expect_err("deadline must abort the run");
    // Partial counters are not totals; nothing may be folded in.
    assert_eq!(
        registry
            .counter("lqs_queries_executed_total", "", &[])
            .get(),
        0
    );
    assert_eq!(
        registry
            .histogram("lqs_operator_rows_output", "", &[("op", "Table Scan")])
            .count(),
        0
    );
}
