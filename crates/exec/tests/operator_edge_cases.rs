//! Edge-case integration tests for individual operators running inside full
//! plans: empty inputs, early termination, KeyAndRid + RID-lookup paths,
//! segment markers, bitmap probes on secondary indexes, and stream
//! aggregation over merge-join output.

use lqs_exec::{execute, ExecOptions};
use lqs_plan::{
    AggFunc, Aggregate, Expr, IndexOutput, JoinKind, PhysicalOp, PlanBuilder, SeekKey, SeekRange,
    SortKey,
};
use lqs_storage::{Column, DataType, Database, Schema, Table, TableId, Value};

fn db(rows: i64) -> (Database, TableId) {
    let mut t = Table::new(
        "t",
        Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("b", DataType::Int),
            Column::new("c", DataType::Int),
        ]),
    );
    for i in 0..rows {
        t.insert(vec![Value::Int(i), Value::Int(i % 10), Value::Int(i % 3)])
            .unwrap();
    }
    let mut d = Database::new();
    let id = d.add_table_analyzed(t);
    (d, id)
}

#[test]
fn key_and_rid_plus_rid_lookup_reconstructs_rows() {
    let (mut d, t) = db(3000);
    let ix = d.create_btree_index("ix_b", t, vec![1], false);
    let mut b = PlanBuilder::new(&d);
    // Nonclustered seek emitting (key, rid), then a RID lookup to the heap.
    let seek = b.add(
        PhysicalOp::IndexSeek {
            index: ix,
            seek: SeekRange::eq(vec![SeekKey::Lit(Value::Int(7))]),
            residual: None,
            output: IndexOutput::KeyAndRid,
        },
        vec![],
    );
    let lookup = b.add(PhysicalOp::RidLookup { table: t }, vec![seek]);
    let plan = b.finish(lookup);
    let run = execute(&d, &plan, &ExecOptions::default());
    assert_eq!(run.rows_returned, 300);
    // The lookup charged one random read per row.
    assert_eq!(run.final_counters[lookup.0].logical_reads, 300);
    // Seek emitted key+rid (2 columns), lookup reconstructed 3 columns.
    assert_eq!(plan.node(seek).output_arity, 2);
    assert_eq!(plan.node(lookup).output_arity, 3);
}

#[test]
fn top_stops_pulling_early() {
    let (d, t) = db(50_000);
    let mut b = PlanBuilder::new(&d);
    let scan = b.table_scan(t);
    let top = b.add(PhysicalOp::Top { n: 10 }, vec![scan]);
    let plan = b.finish(top);
    let run = execute(&d, &plan, &ExecOptions::default());
    assert_eq!(run.rows_returned, 10);
    // The scan must NOT have read the whole table.
    assert!(
        run.final_counters[scan.0].rows_output < 100,
        "scan read {} rows under a Top(10)",
        run.final_counters[scan.0].rows_output
    );
}

#[test]
fn segment_marks_group_boundaries() {
    let (mut d, t) = db(100);
    let ix = d.create_btree_index("ix_b", t, vec![1], false);
    let mut b = PlanBuilder::new(&d);
    let scan = b.index_scan(ix); // ordered by b
    let seg = b.add(PhysicalOp::Segment { group_by: vec![1] }, vec![scan]);
    // Count boundary markers: 10 distinct values of b → 10 ones.
    let flag_col = plan_arity(&b, seg) - 1;
    let agg = b.stream_aggregate(seg, vec![], vec![Aggregate::of_col(AggFunc::Sum, flag_col)]);
    let plan = b.finish(agg);
    let run = execute(&d, &plan, &ExecOptions::default());
    assert_eq!(run.rows_returned, 1);
    // (The sum itself isn't visible from counters; the executed row count
    // confirms the plan ran. Verify the marker semantics directly:)
    let ctx =
        lqs_exec::ExecContext::new(&d, plan.len(), 0, u64::MAX, lqs_plan::CostModel::default());
    let mut seg_op = lqs_exec::build_operator(&plan, &d, seg);
    seg_op.open(&ctx);
    let mut boundaries = 0;
    while let Some(row) = seg_op.next(&ctx) {
        if row[flag_col] == Value::Int(1) {
            boundaries += 1;
        }
    }
    assert_eq!(boundaries, 10);
}

fn plan_arity(_b: &PlanBuilder, _n: lqs_plan::NodeId) -> usize {
    // segment output = 3 base columns + marker
    4
}

#[test]
fn bitmap_probe_on_index_scan() {
    let (mut d, t) = db(5000);
    let ix = d.create_btree_index("ix_a", t, vec![0], true);
    let mut b = PlanBuilder::new(&d);
    let bitmap = b.new_bitmap();
    // Build side: 10% of rows.
    let build = b.table_scan_filtered(t, Expr::col(1).eq(Expr::lit(4i64)), true);
    let bc = b.add(
        PhysicalOp::BitmapCreate {
            key_columns: vec![0],
            bitmap,
        },
        vec![build],
    );
    // Probe side: full index scan with the bitmap pushed in.
    let probe = b.add(
        PhysicalOp::IndexScan {
            index: ix,
            predicate: None,
            pushed_to_storage: true,
            bitmap_probe: Some(lqs_plan::BitmapProbe {
                bitmap,
                key_columns: vec![0],
            }),
            output: IndexOutput::BaseRow,
        },
        vec![],
    );
    let join = b.hash_join(JoinKind::Inner, bc, probe, vec![0], vec![0]);
    let plan = b.finish(join);
    let run = execute(&d, &plan, &ExecOptions::default());
    // Exactly the 500 matching rows join; the bitmap pre-filtered the scan's
    // output to (roughly) those — Bloom false positives allowed.
    assert_eq!(run.rows_returned, 500);
    let scan_out = run.final_counters[probe.0].rows_output;
    assert!(
        (500..1000).contains(&(scan_out as i64)),
        "bitmap-probed scan emitted {scan_out}"
    );
    // But it still read the whole index (storage predicate: I/O unchanged).
    assert!(run.final_counters[probe.0].logical_reads as usize >= d.btree(ix).leaf_count());
}

#[test]
fn merge_join_feeds_stream_aggregate() {
    let (mut d, t) = db(2000);
    let ix = d.create_btree_index("ix_a", t, vec![0], true);
    let mut b = PlanBuilder::new(&d);
    let l = b.index_scan(ix);
    let r = b.index_scan(ix);
    let m = b.merge_join(JoinKind::Inner, l, r, vec![0], vec![0]);
    let agg = b.stream_aggregate(m, vec![0], vec![Aggregate::count_star()]);
    let plan = b.finish(agg);
    let run = execute(&d, &plan, &ExecOptions::default());
    // Self-join on a unique key: one group per row.
    assert_eq!(run.rows_returned, 2000);
}

#[test]
fn empty_table_flows_through_whole_stack() {
    let (d, t) = db(0);
    let mut b = PlanBuilder::new(&d);
    let scan = b.table_scan(t);
    let sort = b.sort(scan, vec![SortKey::asc(0)]);
    let agg = b.hash_aggregate(sort, vec![1], vec![Aggregate::count_star()]);
    let plan = b.finish(agg);
    let run = execute(&d, &plan, &ExecOptions::default());
    assert_eq!(run.rows_returned, 0);
}

#[test]
fn concat_of_filtered_branches() {
    let (d, t) = db(1000);
    let mut b = PlanBuilder::new(&d);
    let lo = b.table_scan_filtered(t, Expr::col(0).lt(Expr::lit(100i64)), true);
    let hi = b.table_scan_filtered(t, Expr::col(0).ge(Expr::lit(900i64)), true);
    let cat = b.add(PhysicalOp::Concat, vec![lo, hi]);
    let plan = b.finish(cat);
    let run = execute(&d, &plan, &ExecOptions::default());
    assert_eq!(run.rows_returned, 200);
}

#[test]
fn lazy_spool_replays_for_every_outer_row() {
    let (d, t) = db(500);
    let mut small = Table::new("s", Schema::new(vec![Column::new("x", DataType::Int)]));
    for i in 0..5i64 {
        small.insert(vec![Value::Int(i)]).unwrap();
    }
    let mut d = d;
    let s = d.add_table_analyzed(small);
    let mut b = PlanBuilder::new(&d);
    let outer = b.table_scan(s);
    let inner_scan = b.table_scan_filtered(t, Expr::col(1).eq(Expr::lit(0i64)), true);
    let spool = b.spool(inner_scan, true);
    let nl = b.nested_loops(JoinKind::Inner, outer, spool, None, 1);
    let plan = b.finish(nl);
    let run = execute(&d, &plan, &ExecOptions::default());
    // 5 outer rows × 50 spooled rows.
    assert_eq!(run.rows_returned, 250);
    // The expensive inner scan executed once; the spool replayed 5 times.
    assert_eq!(run.final_counters[inner_scan.0].executions, 1);
    assert_eq!(run.final_counters[spool.0].executions, 5);
    assert_eq!(run.final_counters[spool.0].rows_output, 250);
}
