//! End-to-end tracing: a traced run emits a complete, well-ordered event
//! stream and changes nothing about the run itself.

use lqs_exec::{execute, execute_traced, plan_node_names, ExecOptions};
use lqs_obs::{to_chrome_trace, to_jsonl, EventKind, RingBufferSink};
use lqs_plan::{AggFunc, Aggregate, Expr, JoinKind, PlanBuilder, SortKey};
use lqs_storage::{Column, DataType, Database, Schema, Table, TableId, Value};

fn db() -> (Database, TableId, TableId) {
    let mut fact = Table::new(
        "fact",
        Schema::new(vec![
            Column::new("k", DataType::Int),
            Column::new("v", DataType::Int),
        ]),
    );
    for i in 0..4000 {
        fact.insert(vec![Value::Int(i % 200), Value::Int(i)])
            .unwrap();
    }
    let mut dim = Table::new(
        "dim",
        Schema::new(vec![
            Column::new("k", DataType::Int),
            Column::new("name", DataType::Int),
        ]),
    );
    for i in 0..200 {
        dim.insert(vec![Value::Int(i), Value::Int(i * 10)]).unwrap();
    }
    let mut db = Database::new();
    let f = db.add_table_analyzed(fact);
    let d = db.add_table_analyzed(dim);
    (db, f, d)
}

/// A plan exercising the traced behaviours: hash join (build → probe),
/// sort (blocking → emit), filter, and aggregation.
fn traced_run() -> (
    lqs_plan::PhysicalPlan,
    lqs_exec::QueryRun,
    Vec<lqs_obs::TraceEvent>,
) {
    let (db, f, d) = db();
    let mut b = PlanBuilder::new(&db);
    let dim_scan = b.table_scan(d);
    let fact_scan = b.table_scan_filtered(f, Expr::col(1).lt(Expr::lit(3000i64)), true);
    let join = b.hash_join(JoinKind::Inner, dim_scan, fact_scan, vec![0], vec![0]);
    let agg = b.hash_aggregate(join, vec![0], vec![Aggregate::of_col(AggFunc::Sum, 3)]);
    let sort = b.sort(agg, vec![SortKey::desc(1)]);
    let plan = b.finish(sort);
    let sink = RingBufferSink::new(1 << 16);
    let run = execute_traced(&db, &plan, &ExecOptions::default(), &sink);
    (plan, run, sink.into_events())
}

#[test]
fn events_are_time_ordered_and_spans_well_formed() {
    let (plan, run, events) = traced_run();
    assert!(!events.is_empty());
    for w in events.windows(2) {
        assert!(w[0].ts_ns <= w[1].ts_ns, "events out of order");
    }

    // Per node: open ≤ first_row ≤ close, and each lifecycle stage present
    // for every operator that produced rows.
    for node in 0..plan.len() {
        let of = |kind: &EventKind| {
            events
                .iter()
                .find(|e| e.node.map(|n| n.0) == Some(node) && &e.kind == kind)
                .map(|e| e.ts_ns)
        };
        let open = of(&EventKind::OperatorOpen).expect("every node opens");
        let close = of(&EventKind::OperatorClose).expect("every node closes");
        assert!(open <= close, "node {node}: open {open} > close {close}");
        if run.final_counters[node].rows_output > 0 {
            let first = of(&EventKind::OperatorFirstRow).expect("produced rows");
            assert!(open <= first && first <= close, "node {node} span violated");
        }
        // Event stamps agree with the counters' own lifecycle stamps.
        assert_eq!(run.final_counters[node].open_ns, Some(open));
        assert_eq!(run.final_counters[node].close_ns, Some(close));
    }
}

#[test]
fn phase_transitions_cover_blocking_operators() {
    let (_plan, _run, events) = traced_run();
    let phases: Vec<(&str, &str)> = events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::PhaseTransition { from, to } => Some((from.as_str(), to.as_str())),
            _ => None,
        })
        .collect();
    assert!(
        phases.contains(&("build", "probe")),
        "hash join phases: {phases:?}"
    );
    assert!(
        phases.contains(&("blocking", "emit")),
        "sort/agg phases: {phases:?}"
    );
}

#[test]
fn snapshot_ticks_match_recorded_snapshots() {
    let (_plan, run, events) = traced_run();
    let ticks: Vec<u64> = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::SnapshotTick { index } => Some(index),
            _ => None,
        })
        .collect();
    // One tick per recorded snapshot (no thinning in a run this short),
    // indices consecutive from zero, stamps matching the DMV trace.
    assert_eq!(ticks.len(), run.snapshots.len());
    for (i, &idx) in ticks.iter().enumerate() {
        assert_eq!(idx, i as u64);
    }
    let tick_ts: Vec<u64> = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::SnapshotTick { .. }))
        .map(|e| e.ts_ns)
        .collect();
    for (tick, snap) in tick_ts.iter().zip(&run.snapshots) {
        assert_eq!(*tick, snap.ts_ns);
    }
}

#[test]
fn tracing_does_not_change_the_run() {
    let (db, f, d) = db();
    let mut b = PlanBuilder::new(&db);
    let dim_scan = b.table_scan(d);
    let fact_scan = b.table_scan(f);
    let join = b.hash_join(JoinKind::Inner, dim_scan, fact_scan, vec![0], vec![0]);
    let plan = b.finish(join);

    let plain = execute(&db, &plan, &ExecOptions::default());
    let sink = RingBufferSink::new(1 << 14);
    let traced = execute_traced(&db, &plan, &ExecOptions::default(), &sink);

    assert_eq!(plain.rows_returned, traced.rows_returned);
    assert_eq!(plain.duration_ns, traced.duration_ns);
    assert_eq!(plain.snapshots.len(), traced.snapshots.len());
    for (a, b) in plain.final_counters.iter().zip(&traced.final_counters) {
        assert_eq!(a.rows_output, b.rows_output);
        assert_eq!(a.cpu_ns, b.cpu_ns);
        assert_eq!(a.logical_reads, b.logical_reads);
    }
}

#[test]
fn real_trace_exports_cleanly() {
    let (plan, _run, events) = traced_run();
    let names = plan_node_names(&plan);

    let jsonl = to_jsonl(&events, &names);
    assert_eq!(lqs_obs::from_jsonl(&jsonl).unwrap(), events);

    let chrome = to_chrome_trace(&events, &names);
    let parsed = serde_json::from_str(&chrome).expect("valid chrome trace JSON");
    let trace_events = parsed["traceEvents"].as_array().unwrap();
    assert!(!trace_events.is_empty());
    for ev in trace_events {
        assert_eq!(ev["ph"], "X");
        assert!(ev["ts"].as_f64().is_some());
        assert!(ev["dur"].as_f64().is_some());
        assert!(ev["name"].as_str().is_some());
    }
}
