//! Property test: the three join algorithms (hash, merge, nested loops)
//! must produce identical result multisets for every join kind they all
//! support, on randomized inputs — including NULL keys, duplicates, and
//! empty sides. This pins down the engine's join semantics, which the
//! progress experiments silently rely on (a wrong join would corrupt every
//! cardinality ground truth).

use lqs_exec::{execute, ExecOptions};
use lqs_plan::{Expr, JoinKind, PlanBuilder, SortKey};
use lqs_storage::{Column, DataType, Database, Schema, Table, Value};
use proptest::prelude::*;

/// Input rows: (key or NULL, payload).
type Side = Vec<(Option<i64>, i64)>;

fn side_strategy() -> impl Strategy<Value = Side> {
    prop::collection::vec((prop::option::weighted(0.9, -5i64..15), 0i64..1000), 0..40)
}

fn make_db(left: &Side, right: &Side) -> (Database, lqs_storage::TableId, lqs_storage::TableId) {
    let schema = || {
        Schema::new(vec![
            Column::nullable("k", DataType::Int),
            Column::new("p", DataType::Int),
        ])
    };
    let mut lt = Table::new("l", schema());
    for &(k, p) in left {
        lt.insert(vec![k.map_or(Value::Null, Value::Int), Value::Int(p)])
            .unwrap();
    }
    let mut rt = Table::new("r", schema());
    for &(k, p) in right {
        rt.insert(vec![k.map_or(Value::Null, Value::Int), Value::Int(p)])
            .unwrap();
    }
    let mut db = Database::new();
    let l = db.add_table_analyzed(lt);
    let r = db.add_table_analyzed(rt);
    (db, l, r)
}

/// Execute a plan and collect its output rows (sorted for comparison).
fn collect(db: &Database, plan: &lqs_plan::PhysicalPlan) -> Vec<Vec<String>> {
    // Re-execute with a collector: easiest is to wrap in a sort and read the
    // engine's output through a scalar trace — instead we re-run the
    // operator tree directly.
    let ctx =
        lqs_exec::ExecContext::new(db, plan.len(), 8, u64::MAX, lqs_plan::CostModel::default());
    let mut root = lqs_exec::build_operator(plan, db, plan.root());
    root.open(&ctx);
    let mut out = Vec::new();
    while let Some(row) = root.next(&ctx) {
        out.push(row.iter().map(|v| v.to_string()).collect::<Vec<_>>());
    }
    root.close(&ctx);
    out.sort();
    out
}

fn hash_plan(
    db: &Database,
    l: lqs_storage::TableId,
    r: lqs_storage::TableId,
    kind: JoinKind,
) -> lqs_plan::PhysicalPlan {
    let mut b = PlanBuilder::new(db);
    // probe = left, build = right (kind applies to probe side).
    let rs = b.table_scan(r);
    let ls = b.table_scan(l);
    let j = b.hash_join(kind, rs, ls, vec![0], vec![0]);
    b.finish(j)
}

fn merge_plan(
    db: &Database,
    l: lqs_storage::TableId,
    r: lqs_storage::TableId,
    kind: JoinKind,
) -> lqs_plan::PhysicalPlan {
    let mut b = PlanBuilder::new(db);
    let ls = b.table_scan(l);
    let lsort = b.sort(ls, vec![SortKey::asc(0)]);
    let rs = b.table_scan(r);
    let rsort = b.sort(rs, vec![SortKey::asc(0)]);
    let j = b.merge_join(kind, lsort, rsort, vec![0], vec![0]);
    b.finish(j)
}

fn nl_plan(
    db: &Database,
    l: lqs_storage::TableId,
    r: lqs_storage::TableId,
    kind: JoinKind,
    buffer: usize,
) -> lqs_plan::PhysicalPlan {
    let mut b = PlanBuilder::new(db);
    let ls = b.table_scan(l);
    let rs = b.table_scan(r);
    let arity = 2;
    let pred = Expr::col(0).eq(Expr::col(arity));
    let j = b.nested_loops(kind, ls, rs, Some(pred), buffer);
    b.finish(j)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn join_algorithms_agree(left in side_strategy(), right in side_strategy()) {
        let (db, l, r) = make_db(&left, &right);
        for kind in [JoinKind::Inner, JoinKind::LeftOuter, JoinKind::LeftSemi, JoinKind::LeftAnti] {
            let h = collect(&db, &hash_plan(&db, l, r, kind));
            let m = collect(&db, &merge_plan(&db, l, r, kind));
            prop_assert_eq!(&h, &m, "hash vs merge disagree for {:?}", kind);
            for buffer in [1usize, 7, 4096] {
                let n = collect(&db, &nl_plan(&db, l, r, kind, buffer));
                prop_assert_eq!(&h, &n, "hash vs NL(buffer={}) disagree for {:?}", buffer, kind);
            }
        }
    }

    #[test]
    fn full_outer_hash_equals_merge(left in side_strategy(), right in side_strategy()) {
        let (db, l, r) = make_db(&left, &right);
        let h = collect(&db, &hash_plan(&db, l, r, JoinKind::FullOuter));
        let m = collect(&db, &merge_plan(&db, l, r, JoinKind::FullOuter));
        prop_assert_eq!(h, m);
    }

    #[test]
    fn join_row_counts_match_ground_truth(left in side_strategy(), right in side_strategy()) {
        // Independent oracle: count matches in plain Rust.
        let (db, l, r) = make_db(&left, &right);
        let expected: usize = left
            .iter()
            .map(|(lk, _)| match lk {
                None => 0,
                Some(k) => right.iter().filter(|(rk, _)| *rk == Some(*k)).count(),
            })
            .sum();
        let plan = hash_plan(&db, l, r, JoinKind::Inner);
        let run = execute(&db, &plan, &ExecOptions::default());
        prop_assert_eq!(run.rows_returned as usize, expected);
    }
}
