//! The execution context: virtual clock, per-node counters, DMV snapshot
//! recording, runtime bitmaps, and nested-loops correlation state.
//!
//! # The virtual clock
//!
//! Every unit of operator work charges deterministic virtual nanoseconds:
//! CPU per row (constants from [`CostModel`], shared with the optimizer's
//! estimates) and I/O per page. This gives every experiment a reproducible
//! time axis, so the paper's progress-vs-time figures (Errortime, Figures
//! 8/11/12) are well-defined without wall-clock noise.
//!
//! # Snapshots
//!
//! Whenever the clock crosses a sampling boundary a [`DmvSnapshot`] of all
//! counters is recorded — the analog of the SSMS client polling
//! `sys.dm_exec_query_profiles` every 500 ms. The interval auto-scales from
//! the plan's estimated cost, and the buffer self-thins (dropping every
//! other sample and doubling the interval) when a query runs much longer
//! than estimated, bounding memory while keeping whole-run coverage.

use crate::bloom::BloomFilter;
use crate::dmv::{DmvSnapshot, NodeCounters};
use crate::fault::{FaultInjector, GetNextFault, IoVerdict, QueryFault};
use lqs_obs::{EventKind, EventSink, TraceEvent};
use lqs_plan::{BitmapId, CostModel, NodeId};
use lqs_storage::{Database, Row};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Maximum snapshots retained before thinning.
pub const MAX_SNAPSHOTS: usize = 2048;

/// Why an execution was aborted before completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// A [`CancellationToken`] was cancelled.
    Cancelled,
    /// The session's virtual-time deadline elapsed.
    DeadlineExceeded,
}

/// Panic payload thrown by [`ExecContext::advance`] when a run is aborted.
/// The executor catches it at the drive loop and converts it into a
/// structured error; any other panic is propagated unchanged.
#[derive(Debug, Clone, Copy)]
pub struct QueryAborted {
    /// Why the run stopped.
    pub reason: AbortReason,
    /// Virtual time at which the abort was observed.
    pub at_ns: u64,
}

/// A shareable cancellation flag. Cloning is cheap (one `Arc`); cancelling
/// any clone aborts the run at its next virtual-clock tick.
#[derive(Debug, Clone, Default)]
pub struct CancellationToken {
    flag: Arc<AtomicBool>,
}

impl CancellationToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Receives every [`DmvSnapshot`] the moment it is recorded — the hook a
/// live monitoring surface (e.g. `lqs-server`'s session registry) uses to
/// expose in-flight counters, the way `sys.dm_exec_query_profiles` exposes
/// a running query's counters to concurrent pollers. Implementations must
/// be `Sync`: the publish happens on the executing thread while pollers
/// read from others.
pub trait SnapshotPublisher: Sync {
    /// Called at each snapshot boundary, in virtual-time order.
    fn publish(&self, snapshot: &DmvSnapshot);
}

/// Fans every publish out to two sinks, in order — the combinator for
/// feeding one snapshot stream to both a live surface and a durability
/// sink (e.g. a session's DMV slot *and* its write-ahead journal) without
/// either knowing about the other.
pub struct TeePublisher<'a> {
    /// First sink (published before `second`).
    pub first: &'a dyn SnapshotPublisher,
    /// Second sink.
    pub second: &'a dyn SnapshotPublisher,
}

impl SnapshotPublisher for TeePublisher<'_> {
    fn publish(&self, snapshot: &DmvSnapshot) {
        self.first.publish(snapshot);
        self.second.publish(snapshot);
    }
}

thread_local! {
    /// Depth of [`catch_query_abort`] frames on this thread. The quiet
    /// abort hook stays fully silent only when a frame is active (the
    /// unwind is about to be caught); an abort panicking on a thread with
    /// no catch frame would otherwise kill the thread with no diagnostic
    /// at all.
    static ABORT_CATCH_DEPTH: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Run `f`, catching any panic, while telling the quiet abort hook that a
/// [`QueryAborted`] unwind on this thread will be caught (so it stays
/// silent). Every catch site for abort unwinds must go through this.
pub(crate) fn catch_query_abort<R>(
    f: impl FnOnce() -> R,
) -> Result<R, Box<dyn std::any::Any + Send>> {
    struct DepthGuard;
    impl Drop for DepthGuard {
        fn drop(&mut self) {
            ABORT_CATCH_DEPTH.with(|d| d.set(d.get() - 1));
        }
    }
    ABORT_CATCH_DEPTH.with(|d| d.set(d.get() + 1));
    let _guard = DepthGuard;
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f))
}

/// Suppress the default panic message for [`QueryAborted`] and
/// [`QueryFault`] unwinds (both are structured control flow, caught by the
/// executor or the session worker) while leaving every other panic's
/// reporting untouched. Installed once, process-wide, the first time a
/// cancellable or fault-injected execution starts. A payload unwinding on
/// a thread with no executor catch frame below it (a misuse — e.g. ticking
/// a cancellable context outside `execute_hooked`) still logs one line, so
/// the thread never dies completely silently.
pub(crate) fn install_quiet_abort_hook() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let caught = ABORT_CATCH_DEPTH.with(std::cell::Cell::get) > 0;
            if let Some(aborted) = info.payload().downcast_ref::<QueryAborted>() {
                if !caught {
                    eprintln!(
                        "lqs-exec: QueryAborted ({:?} at {} ns) unwinding with no \
                         executor catch frame on this thread; the unwind will escape",
                        aborted.reason, aborted.at_ns
                    );
                }
            } else if let Some(fault) = info.payload().downcast_ref::<QueryFault>() {
                if !caught {
                    eprintln!(
                        "lqs-exec: QueryFault ({fault}) unwinding with no executor \
                         catch frame on this thread; the unwind will escape"
                    );
                }
            } else {
                prev(info);
            }
        }));
    });
}

/// One node's published counters plus engine-internal charging state, kept
/// side by side so the per-tuple hot path updates both under a single
/// `RefCell` borrow.
///
/// The carry is deliberately *not* a [`NodeCounters`] field: it is
/// sub-nanosecond bookkeeping, and `NodeCounters` is the journaled,
/// serialized, `PartialEq`-compared DMV row format.
#[derive(Debug, Clone, Default)]
struct NodeAccount {
    /// The node's DMV counter row.
    counters: NodeCounters,
    /// Fractional virtual nanoseconds charged but not yet applied. CPU
    /// charges are f64 (e.g. batch-mode `25.0 × 0.3 = 7.5`); truncating
    /// each charge individually would leak up to 1 ns per call and drift
    /// long runs measurably below the f64 optimizer estimates. Invariant:
    /// always in `[0, 1)` (debug-asserted on every charge), so batched
    /// charging cannot silently drift the clock.
    cpu_carry: f64,
    /// Whole virtual nanoseconds of clock advance attributed to this node:
    /// CPU, I/O, and injected stalls. Every [`ExecContext::advance`] call
    /// is preceded by crediting its exact nanoseconds here, so the sum over
    /// all nodes equals the clock at every instant — including the abort
    /// tick of a cancelled or deadline-exceeded run. This is the profiler's
    /// exclusive (self-time) figure; unlike `cpu_ns` it also covers I/O
    /// wait and stall time.
    elapsed_ns: u64,
}

/// Shared execution state, passed to every operator call.
pub struct ExecContext<'a> {
    /// The database being queried.
    pub db: &'a Database,
    /// Cost/charging constants.
    pub cost: CostModel,
    clock_ns: Cell<u64>,
    accounts: RefCell<Vec<NodeAccount>>,
    snapshots: RefCell<Vec<DmvSnapshot>>,
    snapshot_interval_ns: Cell<u64>,
    next_snapshot_ns: Cell<u64>,
    /// Snapshots recorded so far, counting ones later thinned away.
    snapshot_seq: Cell<u64>,
    /// Trace event sink; `None` when the run is untraced.
    sink: Option<&'a dyn EventSink>,
    /// Live snapshot publisher; `None` for post-hoc-only runs.
    publisher: Option<&'a dyn SnapshotPublisher>,
    /// Cooperative cancellation flag, checked at every clock tick.
    cancel: Option<CancellationToken>,
    /// Virtual-time budget: the run aborts once the clock reaches this.
    deadline_ns: Option<u64>,
    /// Deterministic fault oracle, consulted on I/O charges and GetNexts.
    fault: Option<&'a dyn FaultInjector>,
    /// Number of live [`BatchCharge`] scopes (0 or 1). Debug-asserted
    /// against per-tuple charging and scope nesting: a scope caches its
    /// flush budget, which is only exact while nothing else moves the
    /// clock.
    live_scopes: Cell<u32>,
    /// Per-node high-water marks of the buffered-rows gauge (tracing only).
    buffered_hw: RefCell<Vec<u64>>,
    bitmaps: RefCell<Vec<Option<BloomFilter>>>,
    /// Correlation stack: the current outer row(s) of enclosing
    /// nested-loops joins, innermost last.
    outer_rows: RefCell<Vec<Row>>,
}

impl<'a> ExecContext<'a> {
    /// New context for a plan with `node_count` nodes and `bitmap_count`
    /// bitmaps, sampling every `snapshot_interval_ns` of virtual time.
    pub fn new(
        db: &'a Database,
        node_count: usize,
        bitmap_count: usize,
        snapshot_interval_ns: u64,
        cost: CostModel,
    ) -> Self {
        let interval = snapshot_interval_ns.max(1);
        ExecContext {
            db,
            cost,
            clock_ns: Cell::new(0),
            accounts: RefCell::new(vec![NodeAccount::default(); node_count]),
            snapshots: RefCell::new(Vec::new()),
            snapshot_interval_ns: Cell::new(interval),
            next_snapshot_ns: Cell::new(interval),
            snapshot_seq: Cell::new(0),
            sink: None,
            publisher: None,
            cancel: None,
            deadline_ns: None,
            fault: None,
            live_scopes: Cell::new(0),
            buffered_hw: RefCell::new(vec![0; node_count]),
            bitmaps: RefCell::new((0..bitmap_count).map(|_| None).collect()),
            outer_rows: RefCell::new(Vec::new()),
        }
    }

    /// Attach a trace event sink. Call before handing the context to
    /// operators; events start flowing immediately.
    pub fn with_sink(mut self, sink: &'a dyn EventSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Attach a live snapshot publisher: every [`DmvSnapshot`] is handed to
    /// it the moment it is recorded, before execution proceeds.
    pub fn with_publisher(mut self, publisher: &'a dyn SnapshotPublisher) -> Self {
        self.publisher = Some(publisher);
        self
    }

    /// Attach a cancellation token. Once cancelled, the run aborts (by
    /// unwinding with [`QueryAborted`]) at the next clock tick.
    pub fn with_cancellation(mut self, token: CancellationToken) -> Self {
        install_quiet_abort_hook();
        self.cancel = Some(token);
        self
    }

    /// Set a virtual-time deadline. The run aborts at the first clock tick
    /// at or past `deadline_ns`.
    pub fn with_deadline(mut self, deadline_ns: u64) -> Self {
        install_quiet_abort_hook();
        self.deadline_ns = Some(deadline_ns);
        self
    }

    /// Attach a deterministic fault injector, consulted at every I/O charge
    /// and every successful GetNext. Injected hard faults unwind with a
    /// [`QueryFault`] payload (reported quietly, like aborts).
    pub fn with_fault(mut self, fault: &'a dyn FaultInjector) -> Self {
        install_quiet_abort_hook();
        self.fault = Some(fault);
        self
    }

    /// Current virtual time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.clock_ns.get()
    }

    // ---- tracing --------------------------------------------------------

    /// Whether a recording sink is attached. Emission sites that must
    /// build an event (format strings, compare gauges) check this first so
    /// untraced runs skip the work entirely.
    pub fn trace_enabled(&self) -> bool {
        self.sink.is_some_and(EventSink::is_recording)
    }

    /// Emit an event stamped `at_ns` (snapshot boundaries lag `now_ns`).
    fn emit_at(&self, at_ns: u64, node: Option<NodeId>, kind: EventKind) {
        if let Some(sink) = self.sink {
            sink.emit(TraceEvent {
                ts_ns: at_ns,
                node,
                kind,
            });
        }
    }

    /// Emit an event stamped with the current virtual time.
    fn emit(&self, node: Option<NodeId>, kind: EventKind) {
        self.emit_at(self.clock_ns.get(), node, kind);
    }

    /// Record an operator phase boundary (hash build → probe, sort
    /// blocking → emit, spool write → replay, ...).
    pub fn emit_phase(&self, node: NodeId, from: &str, to: &str) {
        if self.trace_enabled() {
            self.emit(
                Some(node),
                EventKind::PhaseTransition {
                    from: from.to_owned(),
                    to: to.to_owned(),
                },
            );
        }
    }

    /// Record a runtime bitmap finishing its build with `keys` distinct
    /// keys inserted.
    pub fn emit_bitmap_built(&self, node: NodeId, keys: u64) {
        if self.trace_enabled() {
            self.emit(Some(node), EventKind::BitmapBuilt { keys });
        }
    }

    /// Counters must never move backwards between snapshots — the
    /// estimator's refinement and the paper's monotone-progress analysis
    /// both assume it. Cheap enough to check at every snapshot in debug
    /// builds; compiled out in release.
    #[cfg(debug_assertions)]
    fn assert_counters_monotone(prev: &DmvSnapshot, cur: &[NodeCounters]) {
        for (i, (p, c)) in prev.nodes.iter().zip(cur).enumerate() {
            debug_assert!(
                p.rows_output <= c.rows_output,
                "node {i}: rows_output regressed {} -> {}",
                p.rows_output,
                c.rows_output
            );
            debug_assert!(
                p.logical_reads <= c.logical_reads,
                "node {i}: logical_reads regressed {} -> {}",
                p.logical_reads,
                c.logical_reads
            );
            debug_assert!(
                p.cpu_ns <= c.cpu_ns,
                "node {i}: cpu_ns regressed {} -> {}",
                p.cpu_ns,
                c.cpu_ns
            );
        }
    }

    /// Advance the clock and record any snapshot boundaries crossed.
    fn advance(&self, ns: u64) {
        let now = self.clock_ns.get() + ns;
        self.clock_ns.set(now);
        while self.next_snapshot_ns.get() <= now {
            let ts = self.next_snapshot_ns.get();
            {
                let nodes: Vec<NodeCounters> = self
                    .accounts
                    .borrow()
                    .iter()
                    .map(|a| a.counters.clone())
                    .collect();
                let mut snaps = self.snapshots.borrow_mut();
                #[cfg(debug_assertions)]
                if let Some(prev) = snaps.last() {
                    Self::assert_counters_monotone(prev, &nodes);
                }
                snaps.push(DmvSnapshot { ts_ns: ts, nodes });
                if let Some(publisher) = self.publisher {
                    publisher.publish(snaps.last().expect("just pushed"));
                }
                let seq = self.snapshot_seq.get();
                self.snapshot_seq.set(seq + 1);
                self.emit_at(ts, None, EventKind::SnapshotTick { index: seq });
                if snaps.len() > MAX_SNAPSHOTS {
                    // Thin: keep every other sample, double the interval.
                    let kept: Vec<DmvSnapshot> = snaps
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| i % 2 == 1)
                        .map(|(_, s)| s.clone())
                        .collect();
                    *snaps = kept;
                    self.snapshot_interval_ns
                        .set(self.snapshot_interval_ns.get() * 2);
                }
            }
            self.next_snapshot_ns
                .set(ts + self.snapshot_interval_ns.get());
        }
        // Abort checks come last: the snapshot trace up to the abort tick is
        // recorded (and published) before the unwind, so a cancelled session
        // still leaves an honest partial trace.
        if self
            .cancel
            .as_ref()
            .is_some_and(CancellationToken::is_cancelled)
        {
            std::panic::panic_any(QueryAborted {
                reason: AbortReason::Cancelled,
                at_ns: now,
            });
        }
        if self.deadline_ns.is_some_and(|d| now >= d) {
            std::panic::panic_any(QueryAborted {
                reason: AbortReason::DeadlineExceeded,
                at_ns: now,
            });
        }
    }

    /// Charge CPU time to a node. Charges are fractional; the sub-nanosecond
    /// remainder is carried per node (not truncated), so total charged time
    /// tracks the exact f64 sum to within 1 ns per node however the charges
    /// are sliced.
    pub fn charge_cpu(&self, node: NodeId, ns: f64) {
        debug_assert_eq!(
            self.live_scopes.get(),
            0,
            "per-tuple charge_cpu while a BatchCharge scope is live"
        );
        let whole = {
            let mut accounts = self.accounts.borrow_mut();
            let a = &mut accounts[node.0];
            let total = a.cpu_carry + ns.max(0.0);
            let whole = total as u64;
            a.cpu_carry = total - whole as f64;
            debug_assert!(
                (0.0..1.0).contains(&a.cpu_carry),
                "node {}: cpu carry {} left [0,1)",
                node.0,
                a.cpu_carry
            );
            a.counters.cpu_ns += whole;
            a.elapsed_ns += whole;
            whole
        };
        self.advance(whole);
    }

    /// Charge logical page reads to a node (advances the clock by
    /// `pages × io_page_ns`, plus any injected slow-page penalty).
    ///
    /// # Panics
    /// Unwinds with a [`QueryFault`] payload when an attached
    /// [`FaultInjector`] fails the read.
    pub fn charge_io(&self, node: NodeId, pages: u64) {
        debug_assert_eq!(
            self.live_scopes.get(),
            0,
            "per-tuple charge_io while a BatchCharge scope is live"
        );
        if pages == 0 {
            return;
        }
        let total = {
            let mut accounts = self.accounts.borrow_mut();
            let c = &mut accounts[node.0].counters;
            c.logical_reads += pages;
            c.logical_reads
        };
        let mut io_ns = (pages as f64 * self.cost.io_page_ns) as u64;
        if let Some(fault) = self.fault {
            match fault.on_io(node, total, self.clock_ns.get()) {
                IoVerdict::Ok => {}
                IoVerdict::Slow { extra_ns } => io_ns = io_ns.saturating_add(extra_ns),
                IoVerdict::Error { message, transient } => {
                    // Clock and counters up to the failed read stay charged:
                    // the pages were requested, the time was spent.
                    self.accounts.borrow_mut()[node.0].elapsed_ns += io_ns;
                    self.advance(io_ns);
                    std::panic::panic_any(QueryFault {
                        node,
                        message,
                        transient,
                        at_ns: self.clock_ns.get(),
                    });
                }
            }
        }
        self.accounts.borrow_mut()[node.0].elapsed_ns += io_ns;
        self.advance(io_ns);
    }

    /// Whether the batched execution path may be used: true unless a fault
    /// injector is attached. Faults are consulted per I/O charge and per
    /// GetNext, so they force the per-tuple path; a trace sink does *not* —
    /// batch execution emits batch-granularity span events from the
    /// [`BatchCharge`] flush path instead of per-row lifecycle events, with
    /// final counters and clock still bit-identical to per-tuple. The
    /// executor's `Auto` mode picks batch execution exactly when this holds.
    pub fn batch_path_ok(&self) -> bool {
        self.fault.is_none()
    }

    /// Open a batched charging scope for `node`: CPU/I/O charges accumulate
    /// in locals (no `RefCell` traffic, no `advance` call per row) and are
    /// applied to the counters and the clock when a snapshot boundary or
    /// the deadline is crossed, when [`BatchCharge::finish`] is called, or
    /// when the scope drops.
    ///
    /// The scope takes the node's fractional-carry state with it and
    /// returns it on flush, and it iterates the carry arithmetic per
    /// charge, so the whole-nanosecond sequence — and therefore the final
    /// clock, the snapshot cadence, and any deadline-abort tick — is
    /// bit-identical to issuing the same charges through
    /// [`charge_cpu`]/[`charge_io`] one at a time.
    ///
    /// The scope also carries deferred row counts
    /// ([`BatchCharge::rows_in`]/[`BatchCharge::rows_out`]): they settle at
    /// every flush *before* the clock advances, so each snapshot observes
    /// the node's row counters in step with its charges — required by the
    /// progress estimator's cardinality bounds, which assume at most one
    /// in-flight consumed-but-unemitted row per operator.
    ///
    /// Contract: scopes are exclusive. While a scope is live, nothing else
    /// may move the clock — no second scope (for any node), and no
    /// [`charge_cpu`]/[`charge_io`] calls (which for the same node would
    /// also double-count the carry). Operators therefore pull their
    /// children *first* and open the scope only for the charging loop over
    /// rows already in hand. Exclusivity is what lets the scope cache its
    /// flush budget ([`BatchCharge::flush_at`]) instead of re-reading the
    /// clock and snapshot cells on every charge — the budget can only
    /// change at the scope's own flushes. Debug builds assert it.
    ///
    /// [`charge_cpu`]: ExecContext::charge_cpu
    /// [`charge_io`]: ExecContext::charge_io
    pub fn batch_charge(&self, node: NodeId) -> BatchCharge<'_, 'a> {
        debug_assert_eq!(
            self.live_scopes.get(),
            0,
            "BatchCharge scopes must not nest"
        );
        self.live_scopes.set(self.live_scopes.get() + 1);
        let carry = std::mem::take(&mut self.accounts.borrow_mut()[node.0].cpu_carry);
        BatchCharge {
            ctx: self,
            node,
            carry,
            cpu_pending: 0,
            reads_pending: 0,
            rows_in_pending: 0,
            rows_out_pending: 0,
            clock_pending: 0,
            flush_at: self.flush_budget(),
            span_start_ns: self.clock_ns.get(),
        }
    }

    /// Clock nanoseconds until the next snapshot boundary or the deadline,
    /// whichever comes first (0 when already at or past it).
    fn flush_budget(&self) -> u64 {
        self.next_snapshot_ns
            .get()
            .min(self.deadline_ns.unwrap_or(u64::MAX))
            .saturating_sub(self.clock_ns.get())
    }

    /// Charge `rows` CPU charges of `per_row_ns` each to `node` in one
    /// call, bit-identical to `rows` separate [`ExecContext::charge_cpu`]
    /// calls (the fractional carry is iterated per row; snapshot boundaries
    /// and the deadline fire at the exact same ticks).
    pub fn charge_cpu_batch(&self, node: NodeId, per_row_ns: f64, rows: u64) {
        let mut scope = self.batch_charge(node);
        for _ in 0..rows {
            scope.cpu(per_row_ns);
        }
        scope.finish();
    }

    /// Charge `reads` I/O charges of `pages_per_read` pages each to `node`
    /// in one call, bit-identical to `reads` separate
    /// [`ExecContext::charge_io`] calls (the per-call truncation of
    /// `pages × io_page_ns` is preserved). Batch execution runs without a
    /// fault injector, so no I/O fault hook fires here.
    pub fn charge_io_batch(&self, node: NodeId, pages_per_read: u64, reads: u64) {
        let mut scope = self.batch_charge(node);
        for _ in 0..reads {
            scope.io(pages_per_read);
        }
        scope.finish();
    }

    /// Record `n` rows consumed from children.
    pub fn count_input(&self, node: NodeId, n: u64) {
        self.accounts.borrow_mut()[node.0].counters.rows_input += n;
    }

    /// Record one row output (a successful GetNext — increments `kᵢ`).
    ///
    /// # Panics
    /// Unwinds with a [`QueryFault`] payload when an attached
    /// [`FaultInjector`] panics the operator at this GetNext count.
    pub fn count_output(&self, node: NodeId) {
        let (first, k) = {
            let mut accounts = self.accounts.borrow_mut();
            let c = &mut accounts[node.0].counters;
            c.rows_output += 1;
            let first = if c.first_row_ns.is_none() {
                c.first_row_ns = Some(self.clock_ns.get());
                true
            } else {
                false
            };
            (first, c.rows_output)
        };
        if first {
            self.emit(Some(node), EventKind::OperatorFirstRow);
        }
        if let Some(fault) = self.fault {
            match fault.on_get_next(node, k, self.clock_ns.get()) {
                None => {}
                Some(GetNextFault::Stall { ns }) => {
                    // A stall is pure elapsed time: the clock advances (and
                    // snapshots keep being recorded) with no counter moving
                    // — but the time is still the stalled node's to own.
                    self.accounts.borrow_mut()[node.0].elapsed_ns += ns;
                    self.advance(ns);
                }
                Some(GetNextFault::Panic { message, transient }) => {
                    std::panic::panic_any(QueryFault {
                        node,
                        message,
                        transient,
                        at_ns: self.clock_ns.get(),
                    });
                }
            }
        }
    }

    /// Record `n` rows output in one call. With no fault injector attached
    /// this is `n` [`count_output`] calls collapsed into one borrow (same
    /// `first_row_ns` stamp, same final `rows_output`), emitting one
    /// [`EventKind::OperatorFirstRow`] if the stamp lands; when a fault
    /// injector is present it falls back to the per-row path so every
    /// GetNext still reaches the hook.
    ///
    /// [`count_output`]: ExecContext::count_output
    pub fn count_output_batch(&self, node: NodeId, n: u64) {
        if n == 0 {
            return;
        }
        if !self.batch_path_ok() {
            for _ in 0..n {
                self.count_output(node);
            }
            return;
        }
        let first = {
            let mut accounts = self.accounts.borrow_mut();
            let c = &mut accounts[node.0].counters;
            c.rows_output += n;
            if c.first_row_ns.is_none() {
                c.first_row_ns = Some(self.clock_ns.get());
                true
            } else {
                false
            }
        };
        if first {
            self.emit(Some(node), EventKind::OperatorFirstRow);
        }
    }

    /// Record one columnstore segment fully processed.
    pub fn count_segment(&self, node: NodeId) {
        self.accounts.borrow_mut()[node.0]
            .counters
            .segments_processed += 1;
    }

    /// Update the buffered-rows gauge for a semi-blocking operator. When
    /// tracing, a rise past the node's previous maximum emits a
    /// [`EventKind::BufferHighWater`] event.
    pub fn set_buffered(&self, node: NodeId, buffered: u64) {
        self.accounts.borrow_mut()[node.0].counters.rows_buffered = buffered;
        if self.trace_enabled() {
            let rose = {
                let mut hw = self.buffered_hw.borrow_mut();
                if buffered > hw[node.0] {
                    hw[node.0] = buffered;
                    true
                } else {
                    false
                }
            };
            if rose {
                self.emit(Some(node), EventKind::BufferHighWater { rows: buffered });
            }
        }
    }

    /// Record outer rows fully processed by a buffering nested-loops join.
    pub fn count_processed(&self, node: NodeId, n: u64) {
        self.accounts.borrow_mut()[node.0].counters.rows_processed += n;
    }

    /// Mark `Open()`: records the open time on first execution and
    /// increments the execution count.
    pub fn mark_open(&self, node: NodeId) {
        {
            let mut accounts = self.accounts.borrow_mut();
            let c = &mut accounts[node.0].counters;
            if c.open_ns.is_none() {
                c.open_ns = Some(self.clock_ns.get());
            }
            // A rewind re-activates the operator: it is no longer closed (the
            // close time is re-stamped when it next exhausts).
            c.close_ns = None;
            c.executions += 1;
        }
        self.emit(Some(node), EventKind::OperatorOpen);
    }

    /// Mark `Close()` (idempotent; keeps the first close time, which is when
    /// the operator actually finished producing rows).
    pub fn mark_close(&self, node: NodeId) {
        let stamped = {
            let mut accounts = self.accounts.borrow_mut();
            let c = &mut accounts[node.0].counters;
            if c.close_ns.is_none() {
                c.close_ns = Some(self.clock_ns.get());
                true
            } else {
                false
            }
        };
        if stamped {
            self.emit(Some(node), EventKind::OperatorClose);
        }
    }

    /// Read a copy of a node's counters (test/inspection helper).
    pub fn counters_of(&self, node: NodeId) -> NodeCounters {
        self.accounts.borrow()[node.0].counters.clone()
    }

    /// Read a copy of a node's attributed self-time (test/inspection helper).
    pub fn elapsed_of(&self, node: NodeId) -> u64 {
        self.accounts.borrow()[node.0].elapsed_ns
    }

    /// Consume the context, returning (snapshots, final counters, per-node
    /// attributed self-time, end time). Every clock advance (CPU, I/O,
    /// injected stall) is credited to exactly one node, so the self-times
    /// sum exactly to the end time — even for aborted runs.
    pub fn into_results(self) -> (Vec<DmvSnapshot>, Vec<NodeCounters>, Vec<u64>, u64) {
        let end = self.clock_ns.get();
        let (counters, elapsed) = self
            .accounts
            .into_inner()
            .into_iter()
            .map(|a| (a.counters, a.elapsed_ns))
            .unzip();
        (self.snapshots.into_inner(), counters, elapsed, end)
    }

    // ---- bitmaps --------------------------------------------------------

    /// Install a freshly built bitmap.
    pub fn publish_bitmap(&self, id: BitmapId, filter: BloomFilter) {
        self.bitmaps.borrow_mut()[id.0] = Some(filter);
    }

    /// Insert a key into a bitmap, creating it (sized for `capacity_hint`
    /// keys) on first insert. Used by hash-join builds and Bitmap Create
    /// operators as rows stream through.
    pub fn bitmap_insert(&self, id: BitmapId, key: &[lqs_storage::Value], capacity_hint: usize) {
        let mut bitmaps = self.bitmaps.borrow_mut();
        let slot = &mut bitmaps[id.0];
        if slot.is_none() {
            *slot = Some(BloomFilter::with_capacity(capacity_hint));
        }
        slot.as_mut().expect("just initialized").insert(key);
    }

    /// Probe a bitmap. Returns `true` (pass) when the bitmap has not been
    /// built yet — a scan running before its hash join's build phase sees no
    /// reduction.
    pub fn bitmap_may_contain(&self, id: BitmapId, key: &[lqs_storage::Value]) -> bool {
        match &self.bitmaps.borrow()[id.0] {
            Some(f) => f.may_contain(key),
            None => true,
        }
    }

    // ---- correlation ----------------------------------------------------

    /// Push the current outer row before opening/rewinding an inner subtree.
    pub fn push_outer(&self, row: Row) {
        self.outer_rows.borrow_mut().push(row);
    }

    /// Pop the outer row after the inner subtree finishes.
    pub fn pop_outer(&self) {
        self.outer_rows.borrow_mut().pop();
    }

    /// The innermost outer row, for resolving `SeekKey::OuterRef`.
    ///
    /// # Panics
    /// Panics if no nested-loops join is currently driving an inner subtree
    /// — a correlated seek outside a join is a plan bug.
    pub fn current_outer(&self) -> Row {
        self.outer_rows
            .borrow()
            .last()
            .cloned()
            .expect("correlated seek executed outside a nested-loops inner subtree")
    }
}

/// A batched charging scope (see [`ExecContext::batch_charge`]).
///
/// Charges accumulate in plain locals and are flushed — written to the
/// node's counters and applied to the virtual clock in one `advance` —
/// only when a snapshot boundary or the deadline would be crossed, on
/// [`finish`](BatchCharge::finish), or on drop. Because the fractional
/// carry is iterated per charge, every flush leaves the clock, counters,
/// and carry exactly where the equivalent sequence of per-tuple
/// `charge_cpu`/`charge_io` calls would have left them.
pub struct BatchCharge<'s, 'a> {
    ctx: &'s ExecContext<'a>,
    node: NodeId,
    /// The node's fractional carry, held locally while the scope is live
    /// (taken from the account in `batch_charge`, written back on flush).
    carry: f64,
    /// Whole CPU nanoseconds charged but not yet in the counters.
    cpu_pending: u64,
    /// Logical reads charged but not yet in the counters.
    reads_pending: u64,
    /// Rows consumed but not yet in the counters.
    rows_in_pending: u64,
    /// Rows output but not yet in the counters.
    rows_out_pending: u64,
    /// Clock nanoseconds (CPU + I/O) not yet applied via `advance`.
    clock_pending: u64,
    /// Pending clock nanoseconds at which the next snapshot boundary (or
    /// the deadline) is crossed. Cached at scope creation and refreshed at
    /// every flush; exact because scopes are exclusive (see
    /// [`ExecContext::batch_charge`]) — nothing else moves the clock while
    /// one is live. Turns the per-charge due-check into one integer
    /// compare on the hot path.
    flush_at: u64,
    /// Virtual time at which the current trace span began: the clock at
    /// scope open, reset after every flush. Traced batch runs emit one
    /// [`EventKind::OperatorBatch`] span per flush instead of per-row
    /// events — timestamps are coarsened to flush boundaries, counters are
    /// not.
    span_start_ns: u64,
}

impl BatchCharge<'_, '_> {
    /// Charge fractional CPU nanoseconds (same semantics as
    /// [`ExecContext::charge_cpu`]).
    #[inline]
    pub fn cpu(&mut self, ns: f64) {
        let total = self.carry + ns.max(0.0);
        let whole = total as u64;
        self.carry = total - whole as f64;
        debug_assert!(
            (0.0..1.0).contains(&self.carry),
            "node {}: cpu carry {} left [0,1)",
            self.node.0,
            self.carry
        );
        self.cpu_pending += whole;
        self.clock_pending += whole;
        if whole > 0 && self.due() {
            self.flush();
        }
    }

    /// Charge logical page reads (same per-call `pages × io_page_ns`
    /// truncation as [`ExecContext::charge_io`]; no fault hook — batch
    /// execution runs without a fault injector).
    #[inline]
    pub fn io(&mut self, pages: u64) {
        if pages == 0 {
            return;
        }
        self.reads_pending += pages;
        let io_ns = (pages as f64 * self.ctx.cost.io_page_ns) as u64;
        self.clock_pending += io_ns;
        if io_ns > 0 && self.due() {
            self.flush();
        }
    }

    /// Record rows consumed from children (deferred
    /// [`ExecContext::count_input`]). Pending counts settle into the
    /// counters at every flush *before* the clock advances, so any snapshot
    /// the flush records already sees them — the row counters stay in step
    /// with the charges at every observable instant, which the §4.2 bounds
    /// rely on (at most one consumed-but-unemitted row per operator).
    #[inline]
    pub fn rows_in(&mut self, n: u64) {
        self.rows_in_pending += n;
    }

    /// Record rows output (deferred [`ExecContext::count_output`]; same
    /// settle-before-advance visibility as [`rows_in`](BatchCharge::rows_in)).
    /// `first_row_ns` is stamped at the settling flush, not at the exact
    /// per-row clock — the one documented counter divergence between the
    /// batched and per-tuple paths.
    #[inline]
    pub fn rows_out(&mut self, n: u64) {
        self.rows_out_pending += n;
    }

    /// Would applying the pending clock time cross the next snapshot
    /// boundary or the deadline? Compares against the cached
    /// [`flush_at`](BatchCharge::flush_at) budget — exclusive scopes mean
    /// the live cells cannot have changed since it was computed.
    #[inline]
    fn due(&self) -> bool {
        self.clock_pending >= self.flush_at
    }

    /// Write pending counters back to the account, then advance the clock.
    /// Counters land *before* `advance` so a snapshot (or abort unwind)
    /// triggered by the advance observes them. The carry stays in the
    /// scope — it is written back when the scope ends.
    /// Write pending counters (charges *and* row counts) back to the
    /// account. Split out so the unwind path in `Drop` can settle without
    /// advancing the clock.
    fn settle(&mut self) {
        if self.cpu_pending > 0
            || self.reads_pending > 0
            || self.rows_in_pending > 0
            || self.rows_out_pending > 0
        {
            let first = {
                let mut accounts = self.ctx.accounts.borrow_mut();
                let a = &mut accounts[self.node.0];
                a.counters.cpu_ns += self.cpu_pending;
                a.counters.logical_reads += self.reads_pending;
                a.counters.rows_input += self.rows_in_pending;
                a.counters.rows_output += self.rows_out_pending;
                if self.rows_out_pending > 0 && a.counters.first_row_ns.is_none() {
                    a.counters.first_row_ns = Some(self.ctx.clock_ns.get());
                    true
                } else {
                    false
                }
            };
            self.cpu_pending = 0;
            self.reads_pending = 0;
            self.rows_in_pending = 0;
            self.rows_out_pending = 0;
            if first {
                self.ctx.emit(Some(self.node), EventKind::OperatorFirstRow);
            }
        }
    }

    /// Close the current trace span: emit one [`EventKind::OperatorBatch`]
    /// covering everything since the previous flush (or scope open) and
    /// start the next span at the current clock. `rows_in`/`rows_out` are
    /// the counts settled by this flush, `advanced` the clock nanoseconds
    /// it applied; all-zero flushes emit nothing.
    fn emit_span(&mut self, rows_in: u64, rows_out: u64, advanced: u64) {
        let end = self.ctx.clock_ns.get();
        let start = std::mem::replace(&mut self.span_start_ns, end);
        if (advanced > 0 || rows_in > 0 || rows_out > 0) && self.ctx.trace_enabled() {
            self.ctx.emit(
                Some(self.node),
                EventKind::OperatorBatch {
                    start_ns: start,
                    rows_in,
                    rows_out,
                },
            );
        }
    }

    fn flush(&mut self) {
        let (rows_in, rows_out) = (self.rows_in_pending, self.rows_out_pending);
        self.settle();
        let pending = std::mem::take(&mut self.clock_pending);
        if pending > 0 {
            self.ctx.accounts.borrow_mut()[self.node.0].elapsed_ns += pending;
            self.ctx.advance(pending);
        }
        // The advance may have recorded snapshots (moving the boundary)
        // and has moved the clock: recompute the budget.
        self.flush_at = self.ctx.flush_budget();
        self.emit_span(rows_in, rows_out, pending);
    }

    /// Flush and consume the scope. Equivalent to dropping it, spelled out
    /// so call sites show where the batch settles.
    pub fn finish(self) {}
}

impl Drop for BatchCharge<'_, '_> {
    fn drop(&mut self) {
        // Both the normal path (`finish`/end of scope) and the unwind path
        // (abort raised by a flush inside `cpu`/`io`, or a plain panic)
        // land here: settle pending counters and the carry first, then —
        // only when not unwinding — apply the pending clock time.
        // Advancing during an unwind could re-raise the abort and turn it
        // into a double panic; skipping it loses at most the clock slice
        // of an already-aborted run's final partial state.
        let (rows_in, rows_out) = (self.rows_in_pending, self.rows_out_pending);
        self.settle();
        self.ctx.accounts.borrow_mut()[self.node.0].cpu_carry = self.carry;
        self.ctx.live_scopes.set(self.ctx.live_scopes.get() - 1);
        if !std::thread::panicking() {
            let pending = std::mem::take(&mut self.clock_pending);
            if pending > 0 {
                self.ctx.accounts.borrow_mut()[self.node.0].elapsed_ns += pending;
                self.ctx.advance(pending);
            }
            self.emit_span(rows_in, rows_out, pending);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lqs_storage::Database;

    fn ctx(db: &Database) -> ExecContext<'_> {
        ExecContext::new(db, 3, 1, 1000, CostModel::default())
    }

    #[test]
    fn clock_and_snapshots() {
        let db = Database::new();
        let c = ctx(&db);
        c.charge_cpu(NodeId(0), 2500.0);
        // Crossed boundaries at 1000 and 2000.
        let (snaps, counters, elapsed, end) = c.into_results();
        assert_eq!(elapsed.iter().sum::<u64>(), end);
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].ts_ns, 1000);
        assert_eq!(snaps[1].ts_ns, 2000);
        assert_eq!(end, 2500);
        assert_eq!(counters[0].cpu_ns, 2500);
    }

    #[test]
    fn io_charging_advances_clock() {
        let db = Database::new();
        let c = ctx(&db);
        c.charge_io(NodeId(1), 2);
        assert_eq!(c.counters_of(NodeId(1)).logical_reads, 2);
        assert_eq!(c.now_ns(), (2.0 * CostModel::default().io_page_ns) as u64);
    }

    #[test]
    fn output_counting_sets_first_row_time() {
        let db = Database::new();
        let c = ctx(&db);
        c.charge_cpu(NodeId(0), 500.0);
        c.count_output(NodeId(0));
        c.count_output(NodeId(0));
        let counters = c.counters_of(NodeId(0));
        assert_eq!(counters.rows_output, 2);
        assert_eq!(counters.first_row_ns, Some(500));
    }

    #[test]
    fn snapshot_thinning_bounds_memory() {
        let db = Database::new();
        let c = ctx(&db);
        // Cross 3x MAX boundaries.
        for _ in 0..(MAX_SNAPSHOTS * 3) {
            c.charge_cpu(NodeId(0), 1000.0);
        }
        let (snaps, _, _, _) = c.into_results();
        assert!(snaps.len() <= MAX_SNAPSHOTS);
        assert!(snaps.len() > MAX_SNAPSHOTS / 4);
        // Still ordered.
        for w in snaps.windows(2) {
            assert!(w[0].ts_ns < w[1].ts_ns);
        }
    }

    #[test]
    fn fractional_charges_do_not_drift() {
        // Regression: `ns.max(0.0) as u64` truncated every charge, so
        // 10_000 batch-mode charges of 7.5 ns lost 5 µs of virtual time.
        let db = Database::new();
        let c = ctx(&db);
        let mut exact = 0.0f64;
        for i in 0..10_000u64 {
            // Mix of awkward fractions, all sub-integer on their own.
            let ns = match i % 3 {
                0 => 7.5,
                1 => 0.3,
                _ => 25.0 * 0.3,
            };
            exact += ns;
            c.charge_cpu(NodeId(0), ns);
        }
        let counters = c.counters_of(NodeId(0));
        assert!(
            (counters.cpu_ns as f64 - exact).abs() <= 1.0,
            "charged {} vs exact {exact}",
            counters.cpu_ns
        );
        assert!((c.now_ns() as f64 - exact).abs() <= 1.0);
    }

    #[test]
    fn fractional_carry_is_per_node() {
        let db = Database::new();
        let c = ctx(&db);
        for _ in 0..1000 {
            c.charge_cpu(NodeId(0), 0.5);
            c.charge_cpu(NodeId(1), 0.25);
        }
        assert!((c.counters_of(NodeId(0)).cpu_ns as f64 - 500.0).abs() <= 1.0);
        assert!((c.counters_of(NodeId(1)).cpu_ns as f64 - 250.0).abs() <= 1.0);
    }

    #[test]
    fn cancellation_aborts_at_next_tick() {
        let db = Database::new();
        let token = CancellationToken::new();
        let c = ctx(&db).with_cancellation(token.clone());
        c.charge_cpu(NodeId(0), 100.0); // fine while un-cancelled
        token.cancel();
        let err = catch_query_abort(|| {
            c.charge_cpu(NodeId(0), 50.0);
        })
        .expect_err("cancelled run must abort");
        let aborted = err
            .downcast::<QueryAborted>()
            .expect("QueryAborted payload");
        assert_eq!(aborted.reason, AbortReason::Cancelled);
        assert_eq!(aborted.at_ns, 150);
    }

    #[test]
    fn deadline_aborts_when_clock_reaches_it() {
        let db = Database::new();
        let c = ctx(&db).with_deadline(250);
        c.charge_cpu(NodeId(0), 200.0);
        let err = catch_query_abort(|| {
            c.charge_cpu(NodeId(0), 100.0);
        })
        .expect_err("deadline must abort the run");
        let aborted = err
            .downcast::<QueryAborted>()
            .expect("QueryAborted payload");
        assert_eq!(aborted.reason, AbortReason::DeadlineExceeded);
        assert_eq!(aborted.at_ns, 300);
    }

    #[test]
    fn abort_catch_depth_balances_across_unwinds() {
        let depth = || ABORT_CATCH_DEPTH.with(std::cell::Cell::get);
        assert_eq!(depth(), 0);
        let _ = catch_query_abort(|| {
            assert_eq!(depth(), 1);
            // An unwind out of a nested frame must still restore the count.
            let _ = catch_query_abort(|| {
                std::panic::panic_any(QueryAborted {
                    reason: AbortReason::Cancelled,
                    at_ns: 0,
                });
            });
            assert_eq!(depth(), 1);
        });
        assert_eq!(depth(), 0);
    }

    #[test]
    fn publisher_sees_every_snapshot() {
        use std::sync::Mutex;
        struct Capture(Mutex<Vec<u64>>);
        impl SnapshotPublisher for Capture {
            fn publish(&self, snapshot: &DmvSnapshot) {
                self.0.lock().unwrap().push(snapshot.ts_ns);
            }
        }
        let db = Database::new();
        let capture = Capture(Mutex::new(Vec::new()));
        let c = ctx(&db).with_publisher(&capture);
        c.charge_cpu(NodeId(0), 3500.0);
        let (snaps, _, _, _) = c.into_results();
        let published = capture.0.into_inner().unwrap();
        assert_eq!(published, vec![1000, 2000, 3000]);
        assert_eq!(snaps.len(), published.len());
    }

    #[test]
    fn elapsed_attribution_sums_to_clock() {
        let db = Database::new();
        let c = ctx(&db);
        c.charge_cpu(NodeId(0), 1234.5);
        c.charge_io(NodeId(1), 3);
        let mut scope = c.batch_charge(NodeId(2));
        for _ in 0..100 {
            scope.cpu(7.5);
        }
        scope.io(1);
        scope.finish();
        let (_, _, elapsed, end) = c.into_results();
        assert_eq!(elapsed.iter().sum::<u64>(), end);
        assert_eq!(elapsed[0], 1234);
        assert!(elapsed[1] > 0 && elapsed[2] > 0);
    }

    #[test]
    fn elapsed_attribution_survives_abort() {
        let db = Database::new();
        let c = ctx(&db).with_deadline(2_000);
        c.charge_cpu(NodeId(0), 500.0);
        let err = catch_query_abort(|| {
            c.charge_cpu(NodeId(1), 5_000.0);
        })
        .expect_err("deadline must abort");
        err.downcast::<QueryAborted>()
            .expect("QueryAborted payload");
        // The aborting advance fully moved the clock before unwinding, and
        // its nanoseconds were credited to node 1 first: the invariant
        // holds even on the abort tick.
        assert_eq!(c.elapsed_of(NodeId(0)) + c.elapsed_of(NodeId(1)), 5_500);
    }

    #[test]
    fn unbuilt_bitmap_passes_everything() {
        let db = Database::new();
        let c = ctx(&db);
        assert!(c.bitmap_may_contain(lqs_plan::BitmapId(0), &[lqs_storage::Value::Int(7)]));
        let mut f = BloomFilter::with_capacity(10);
        f.insert(&[lqs_storage::Value::Int(1)]);
        c.publish_bitmap(lqs_plan::BitmapId(0), f);
        assert!(c.bitmap_may_contain(lqs_plan::BitmapId(0), &[lqs_storage::Value::Int(1)]));
        assert!(!c.bitmap_may_contain(lqs_plan::BitmapId(0), &[lqs_storage::Value::Int(2)]));
    }

    #[test]
    fn open_close_and_executions() {
        let db = Database::new();
        let c = ctx(&db);
        c.mark_open(NodeId(2));
        c.charge_cpu(NodeId(2), 100.0);
        c.mark_open(NodeId(2)); // rewind
        c.mark_close(NodeId(2));
        let counters = c.counters_of(NodeId(2));
        assert_eq!(counters.executions, 2);
        assert_eq!(counters.open_ns, Some(0));
        assert_eq!(counters.close_ns, Some(100));
    }
}
