//! Fault-injection seams — the hooks a chaos layer (e.g. `lqs-chaos`)
//! plugs into to perturb an execution *deterministically*.
//!
//! Two seams exist, matching where production failures actually bite a
//! client-side progress estimator:
//!
//! * **Engine faults** ([`FaultInjector`]): consulted on the virtual clock
//!   at every I/O charge and every successful `GetNext`. An injector can
//!   slow a page read, fail it outright, stall an operator, or panic it —
//!   all keyed off deterministic inputs (node id, cumulative counters,
//!   virtual time), never wall-clock state.
//! * **Telemetry-channel faults** ([`SnapshotFilter`]): interposed between
//!   the executing worker and whatever [`crate::SnapshotPublisher`] a
//!   monitoring surface reads from. The filter can drop, delay, duplicate,
//!   reorder, or corrupt (counter-reset) snapshots in flight, modelling a
//!   lossy DMV polling channel; the execution's own recorded trace is
//!   never affected.
//!
//! Injected hard failures unwind with a [`QueryFault`] payload (the
//! structured sibling of [`crate::QueryAborted`]). The service layer
//! catches it per session, marks the session failed, and — when
//! [`QueryFault::transient`] is set — may retry within a budget.

use crate::dmv::DmvSnapshot;
use lqs_plan::NodeId;

/// Verdict of a [`FaultInjector`] on one I/O charge.
#[derive(Debug, Clone, PartialEq)]
pub enum IoVerdict {
    /// Proceed normally.
    Ok,
    /// Proceed, but the pages take `extra_ns` additional virtual time
    /// (a slow / contended device).
    Slow {
        /// Additional virtual nanoseconds the read costs.
        extra_ns: u64,
    },
    /// The read fails: the run unwinds with a [`QueryFault`].
    Error {
        /// Human-readable failure description.
        message: String,
        /// Whether a retry of the whole query could plausibly succeed.
        transient: bool,
    },
}

/// Verdict of a [`FaultInjector`] on one successful `GetNext`.
#[derive(Debug, Clone, PartialEq)]
pub enum GetNextFault {
    /// The operator stalls: virtual time passes with no progress.
    Stall {
        /// Virtual nanoseconds the stall lasts.
        ns: u64,
    },
    /// The operator fails: the run unwinds with a [`QueryFault`].
    Panic {
        /// Human-readable failure description.
        message: String,
        /// Whether a retry of the whole query could plausibly succeed.
        transient: bool,
    },
}

/// Deterministic engine-fault oracle, consulted on the executing thread.
///
/// Implementations must be `Sync` (the context holds a shared reference)
/// and should derive every decision from the arguments plus seeded state —
/// never from wall-clock time — so a run with a given fault plan is
/// byte-for-byte reproducible.
pub trait FaultInjector: Sync {
    /// Called before charging `pages` logical reads to `node`.
    /// `total_pages` is the node's cumulative logical-read counter
    /// *including* this charge; `now_ns` is the virtual clock before it.
    fn on_io(&self, node: NodeId, total_pages: u64, now_ns: u64) -> IoVerdict {
        let _ = (node, total_pages, now_ns);
        IoVerdict::Ok
    }

    /// Called after `node` produces its `k`-th output row (1-based).
    fn on_get_next(&self, node: NodeId, k: u64, now_ns: u64) -> Option<GetNextFault> {
        let _ = (node, k, now_ns);
        None
    }
}

/// Panic payload for an injected (or engine-detected) hard fault.
///
/// Like [`crate::QueryAborted`], this is structured control flow: the quiet
/// panic hook suppresses its default report while a catch frame is active,
/// and the service layer downcasts it to classify the failure. `transient`
/// distinguishes faults worth retrying (I/O hiccups, shed load) from
/// deterministic bugs (an operator panic that would recur).
#[derive(Debug, Clone)]
pub struct QueryFault {
    /// The plan node at which the fault fired.
    pub node: NodeId,
    /// Human-readable failure description.
    pub message: String,
    /// Whether a retry of the whole query could plausibly succeed.
    pub transient: bool,
    /// Virtual time at which the fault fired.
    pub at_ns: u64,
}

impl std::fmt::Display for QueryFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fault at node {} ({} at {} ns): {}",
            self.node.0,
            if self.transient {
                "transient"
            } else {
                "permanent"
            },
            self.at_ns,
            self.message
        )
    }
}

/// Transforms the stream of published snapshots — the telemetry-channel
/// seam between the executing worker and a [`crate::SnapshotPublisher`].
///
/// For every snapshot the engine records, [`SnapshotFilter::filter`]
/// returns the snapshots actually delivered downstream (possibly none, one,
/// or several): an empty vec drops the snapshot, returning it later models
/// delay/reorder, returning it twice duplicates it, and returning a mutated
/// clone models counter corruption. Implementations carry their own state
/// (buffers, seeded RNGs) behind interior mutability and must be
/// `Send + Sync`; one filter instance serves one session.
pub trait SnapshotFilter: Send + Sync {
    /// Map one recorded snapshot to the snapshots delivered downstream.
    fn filter(&self, snapshot: &DmvSnapshot) -> Vec<DmvSnapshot>;

    /// Drain anything still buffered (delayed snapshots) at end of run.
    /// Called once after the last mid-run publish; defaults to nothing.
    fn flush(&self) -> Vec<DmvSnapshot> {
        Vec::new()
    }
}

/// The identity filter: every snapshot is delivered exactly once.
#[derive(Debug, Default, Clone, Copy)]
pub struct IdentityFilter;

impl SnapshotFilter for IdentityFilter {
    fn filter(&self, snapshot: &DmvSnapshot) -> Vec<DmvSnapshot> {
        vec![snapshot.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_fault_display_names_classification() {
        let f = QueryFault {
            node: NodeId(3),
            message: "simulated I/O error".into(),
            transient: true,
            at_ns: 1234,
        };
        let s = f.to_string();
        assert!(s.contains("node 3"));
        assert!(s.contains("transient"));
        assert!(s.contains("simulated I/O error"));
    }

    #[test]
    fn identity_filter_passes_through() {
        let s = DmvSnapshot {
            ts_ns: 7,
            nodes: Vec::new(),
        };
        assert_eq!(IdentityFilter.filter(&s), vec![s.clone()]);
        assert!(IdentityFilter.flush().is_empty());
    }
}
