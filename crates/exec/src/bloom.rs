//! A Bloom filter backing the engine's bitmap semi-join filters (§4.3,
//! Figure 6).
//!
//! SQL Server's "Bitmap" operators are probabilistic: probe-side rows whose
//! join key cannot possibly match the build side are dropped during the
//! scan, but false positives pass through and are eliminated at the join.
//! Modelling that (rather than an exact set) keeps the probe-side scan's
//! output cardinality realistically *above* the join output, like the real
//! engine.

use lqs_storage::Value;
use std::hash::{Hash, Hasher};

/// A fixed-size Bloom filter over composite key values.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: Vec<u64>,
    mask: u64,
    hashes: u32,
    items: usize,
}

impl BloomFilter {
    /// Create a filter sized for roughly `expected_items` with ~1% false
    /// positive rate (10 bits/key, 4 hash functions).
    pub fn with_capacity(expected_items: usize) -> Self {
        let bits_needed = (expected_items.max(64) * 10).next_power_of_two();
        BloomFilter {
            bits: vec![0u64; bits_needed / 64],
            mask: (bits_needed - 1) as u64,
            hashes: 4,
            items: 0,
        }
    }

    fn key_hash(key: &[Value], seed: u64) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        seed.hash(&mut h);
        for v in key {
            v.hash(&mut h);
        }
        h.finish()
    }

    /// Insert a composite key.
    pub fn insert(&mut self, key: &[Value]) {
        for s in 0..self.hashes {
            let bit = Self::key_hash(key, s as u64) & self.mask;
            self.bits[(bit / 64) as usize] |= 1 << (bit % 64);
        }
        self.items += 1;
    }

    /// Whether the key *may* have been inserted (false positives possible,
    /// false negatives impossible).
    pub fn may_contain(&self, key: &[Value]) -> bool {
        (0..self.hashes).all(|s| {
            let bit = Self::key_hash(key, s as u64) & self.mask;
            self.bits[(bit / 64) as usize] & (1 << (bit % 64)) != 0
        })
    }

    /// Number of keys inserted.
    pub fn len(&self) -> usize {
        self.items
    }

    /// True if nothing was inserted.
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(v: i64) -> Vec<Value> {
        vec![Value::Int(v)]
    }

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::with_capacity(10_000);
        for i in 0..10_000 {
            f.insert(&key(i));
        }
        for i in 0..10_000 {
            assert!(f.may_contain(&key(i)), "false negative for {i}");
        }
    }

    #[test]
    fn false_positive_rate_reasonable() {
        let mut f = BloomFilter::with_capacity(10_000);
        for i in 0..10_000 {
            f.insert(&key(i));
        }
        let fps = (10_000..110_000)
            .filter(|&i| f.may_contain(&key(i)))
            .count();
        let rate = fps as f64 / 100_000.0;
        assert!(rate < 0.05, "false positive rate {rate}");
    }

    #[test]
    fn composite_keys() {
        let mut f = BloomFilter::with_capacity(100);
        f.insert(&[Value::Int(1), Value::str("a")]);
        assert!(f.may_contain(&[Value::Int(1), Value::str("a")]));
        assert!(!f.may_contain(&[Value::Int(1), Value::str("b")]));
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let f = BloomFilter::with_capacity(100);
        assert!(f.is_empty());
        assert!(!f.may_contain(&key(1)));
    }
}
