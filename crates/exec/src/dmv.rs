//! DMV-style runtime counters — the simulator's analog of
//! `sys.dm_exec_query_profiles`.
//!
//! Every operator updates its [`NodeCounters`] as it executes, and the
//! executor records a [`DmvSnapshot`] of all counters at a fixed virtual-time
//! interval, mirroring the SSMS client polling the DMV every 500 ms (§2.2).
//! The progress estimator consumes *only* these snapshots plus static plan
//! metadata — it never peeks at operator internals, preserving the paper's
//! client/server split.

/// Runtime counters for one plan node.
///
/// Fields mirror the real DMV columns (`row_count`, `estimate_row_count`,
/// `logical_read_count`, `segment_read_count`, `elapsed_time_ms`,
/// `cpu_time_ms`, `open_time`, `first_row_time`, `close_time`, `rewind_count`)
/// plus the buffering counters the paper lists as wished-for future
/// extensions in §7 (`rows_buffered`, `rows_processed`); estimator configs
/// control whether those extras may be used.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeCounters {
    /// Rows output so far — the `kᵢ` of the GetNext model (Equation 1).
    pub rows_output: u64,
    /// Rows consumed from all children so far.
    pub rows_input: u64,
    /// Logical page reads issued so far.
    pub logical_reads: u64,
    /// Columnstore segments fully processed so far (§4.7).
    pub segments_processed: u64,
    /// Virtual CPU nanoseconds charged to this operator.
    pub cpu_ns: u64,
    /// Virtual time at `Open()`, if the operator has opened.
    pub open_ns: Option<u64>,
    /// Virtual time when the first row was returned.
    pub first_row_ns: Option<u64>,
    /// Virtual time at `Close()`, if the operator has closed.
    pub close_ns: Option<u64>,
    /// Rows currently sitting in an internal buffer (semi-blocking
    /// operators; a §7 future-work counter).
    pub rows_buffered: u64,
    /// Outer rows fully processed by a buffering nested-loops join (a §7
    /// future-work counter).
    pub rows_processed: u64,
    /// Number of executions (1 + rewinds/rebinds).
    pub executions: u64,
}

impl NodeCounters {
    /// Whether the operator has started executing.
    pub fn is_open(&self) -> bool {
        self.open_ns.is_some()
    }

    /// Whether the operator has finished executing.
    pub fn is_closed(&self) -> bool {
        self.close_ns.is_some()
    }
}

/// A point-in-time copy of every node's counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DmvSnapshot {
    /// Virtual timestamp of the snapshot, in nanoseconds.
    pub ts_ns: u64,
    /// Counters per node, indexed by `NodeId.0`.
    pub nodes: Vec<NodeCounters>,
}

impl DmvSnapshot {
    /// Counters of node `i`.
    pub fn node(&self, i: usize) -> &NodeCounters {
        &self.nodes[i]
    }

    /// The `kᵢ` (rows output) of node `i`.
    pub fn k(&self, i: usize) -> f64 {
        self.nodes[i].rows_output as f64
    }
}
