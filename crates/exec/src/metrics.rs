//! Close-time metrics: fold a finished run's per-operator counters into
//! [`lqs_metrics`] families.
//!
//! The engine itself never touches an atomic mid-run — recording happens
//! once, after the root operator closes, from the already-final counters.
//! That keeps the virtual clock and the counter trace byte-identical
//! whether metrics are attached or not, and makes the disabled path one
//! `Option` check per query.

use crate::executor::QueryRun;
use lqs_metrics::MetricsRegistry;
use lqs_plan::PhysicalPlan;
use std::sync::Arc;

/// Records per-operator and per-query execution totals into a shared
/// [`MetricsRegistry`] when a run completes.
///
/// Attach one via [`crate::ExecHooks::metrics`]; the same instance can be
/// shared by every worker in a pool (recording only reads the run and
/// touches atomics).
pub struct ExecMetrics {
    registry: Arc<MetricsRegistry>,
}

impl ExecMetrics {
    /// Metrics recording into `registry`.
    pub fn new(registry: Arc<MetricsRegistry>) -> Self {
        ExecMetrics { registry }
    }

    /// The registry this recorder writes to.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Fold one completed run's final counters into the operator and query
    /// families. Called by the executor after the root operator closes.
    pub(crate) fn record_run(&self, plan: &PhysicalPlan, run: &QueryRun) {
        for (node, counters) in plan.nodes().iter().zip(&run.final_counters) {
            let labels = [("op", node.op.display_name())];
            self.registry
                .histogram(
                    "lqs_operator_rows_output",
                    "Rows produced by an operator over one query execution",
                    &labels,
                )
                .observe_u64(counters.rows_output);
            self.registry
                .histogram(
                    "lqs_operator_logical_reads",
                    "Pages read by an operator over one query execution",
                    &labels,
                )
                .observe_u64(counters.logical_reads);
            self.registry
                .histogram(
                    "lqs_operator_cpu_virtual_ns",
                    "Virtual CPU nanoseconds charged to an operator over one query execution",
                    &labels,
                )
                .observe_u64(counters.cpu_ns);
        }
        self.registry
            .histogram(
                "lqs_query_duration_virtual_ns",
                "Total virtual execution time of a completed query",
                &[],
            )
            .observe_u64(run.duration_ns);
        self.registry
            .histogram(
                "lqs_query_rows_returned",
                "Rows returned by the root operator of a completed query",
                &[],
            )
            .observe_u64(run.rows_returned);
        self.registry
            .counter(
                "lqs_queries_executed_total",
                "Queries run to completion by the execution engine",
                &[],
            )
            .inc();
    }
}
