//! Top-level query execution: builds the operator tree, drives it to
//! completion on the virtual clock, and returns the DMV snapshot trace.

use crate::context::{
    AbortReason, CancellationToken, ExecContext, QueryAborted, SnapshotPublisher,
};
use crate::dmv::{DmvSnapshot, NodeCounters};
use crate::ops::build_operator;
use lqs_obs::EventSink;
use lqs_plan::{CostModel, PhysicalOp, PhysicalPlan};
use lqs_storage::Database;

/// Which GetNext loop drives the operator tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Batch unless a fault injector is attached (its hooks fire per I/O
    /// charge and per GetNext, which only the per-tuple loop visits). A
    /// trace sink does *not* force tuple mode: the batched path emits
    /// batch-granularity span events instead of per-row lifecycle events,
    /// so tracing no longer de-vectorizes the engine.
    #[default]
    Auto,
    /// Always the per-tuple Volcano loop.
    Tuple,
    /// Always the vectorized loop. Trace timestamps coarsen to flush
    /// granularity (one `OperatorBatch` span per settled charging scope,
    /// `first_row_ns` stamped at the settling flush); with a fault injector
    /// attached, batched I/O charges skip the injector's per-read check —
    /// which is why `Auto` falls back to `Tuple` for fault-injected runs.
    /// Counters and the clock stay exact regardless.
    Batch,
}

/// Execution options.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Desired number of DMV snapshots over the query's lifetime. The
    /// sampling interval is derived from the plan's estimated cost; the
    /// trace self-thins if the query runs much longer than estimated.
    pub snapshot_target: usize,
    /// Explicit sampling interval (overrides `snapshot_target` if set).
    pub snapshot_interval_ns: Option<u64>,
    /// Cost/charging constants.
    pub cost_model: CostModel,
    /// Per-tuple vs vectorized drive loop (see [`ExecMode`]).
    pub mode: ExecMode,
    /// Rows per batch on the vectorized path (clamped to ≥ 1).
    pub batch_size: usize,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            snapshot_target: 192,
            snapshot_interval_ns: None,
            cost_model: CostModel::default(),
            mode: ExecMode::Auto,
            batch_size: 1024,
        }
    }
}

/// Optional per-run hooks: live snapshot publishing, cooperative
/// cancellation, and a virtual-time deadline. All default to off;
/// [`execute`]/[`execute_traced`] run with no hooks.
#[derive(Default, Clone, Copy)]
pub struct ExecHooks<'a> {
    /// Trace event sink (same role as in [`execute_traced`]).
    pub sink: Option<&'a dyn EventSink>,
    /// Receives every DMV snapshot as it is recorded.
    pub publisher: Option<&'a dyn SnapshotPublisher>,
    /// Cancelling this token aborts the run at its next clock tick.
    pub cancel: Option<&'a CancellationToken>,
    /// Virtual-time budget; the run aborts once the clock reaches it.
    pub deadline_ns: Option<u64>,
    /// Records the run's final counters into metric families at close time.
    /// Aborted runs record nothing (their counters are not totals).
    pub metrics: Option<&'a crate::metrics::ExecMetrics>,
    /// Deterministic fault oracle consulted on every I/O charge and
    /// GetNext. Injected hard failures unwind with a
    /// [`crate::fault::QueryFault`] payload, which [`execute_hooked`]
    /// re-raises for the caller to catch (it is *not* an abort).
    pub fault: Option<&'a dyn crate::fault::FaultInjector>,
}

/// A run stopped early by cancellation or deadline. The partial trace up to
/// the abort tick is preserved — counters are honest, just incomplete.
#[derive(Debug, Clone)]
pub struct AbortedQuery {
    /// Why the run stopped.
    pub reason: AbortReason,
    /// Virtual time at which the abort was observed.
    pub at_ns: u64,
    /// Snapshots recorded before the abort.
    pub snapshots: Vec<DmvSnapshot>,
    /// Counter state at the abort (not final — the query did not finish).
    pub partial_counters: Vec<NodeCounters>,
}

/// The result of executing one query: the full DMV trace plus ground truth.
#[derive(Debug, Clone)]
pub struct QueryRun {
    /// DMV snapshots in time order.
    pub snapshots: Vec<DmvSnapshot>,
    /// Final counters — the ground truth (`Nᵢ` = `final_counters[i].rows_output`).
    pub final_counters: Vec<NodeCounters>,
    /// Total virtual execution time.
    pub duration_ns: u64,
    /// Rows returned by the root operator.
    pub rows_returned: u64,
    /// Cost model the run was charged under. Estimators replaying this run
    /// must use the same model, or their optimizer-estimate baselines
    /// (operator weights, time-to-completion) silently diverge from the
    /// observed counters.
    pub cost_model: CostModel,
    /// Per-node attributed self-time (virtual ns), indexed by `NodeId`:
    /// every clock advance — CPU, I/O, injected stall — credited to the
    /// node that charged it, summing exactly to `duration_ns`. Empty for
    /// runs reconstructed from journals (the journal format carries
    /// counters, not attribution).
    pub node_elapsed_ns: Vec<u64>,
}

impl QueryRun {
    /// The true total row count (`Nᵢ`) of node `i`.
    pub fn true_n(&self, i: usize) -> f64 {
        self.final_counters[i].rows_output as f64
    }

    /// True progress of the whole query in the unweighted GetNext model at
    /// snapshot `s`: `Σkᵢ(t) / ΣNᵢ`.
    pub fn true_query_progress(&self, s: &DmvSnapshot) -> f64 {
        let num: u64 = s.nodes.iter().map(|c| c.rows_output).sum();
        let den: u64 = self.final_counters.iter().map(|c| c.rows_output).sum();
        if den == 0 {
            1.0
        } else {
            num as f64 / den as f64
        }
    }

    /// True time-fraction elapsed at snapshot `s`.
    pub fn time_fraction(&self, s: &DmvSnapshot) -> f64 {
        if self.duration_ns == 0 {
            1.0
        } else {
            s.ts_ns as f64 / self.duration_ns as f64
        }
    }
}

/// Total estimated virtual duration of a plan (CPU + I/O, serial).
pub fn estimated_duration_ns(plan: &PhysicalPlan, cost: &CostModel) -> f64 {
    plan.nodes()
        .iter()
        .map(|n| n.est_cpu_ns + n.est_io_pages * cost.io_page_ns)
        .sum()
}

/// Count of bitmaps referenced anywhere in a plan.
fn bitmap_count(plan: &PhysicalPlan) -> usize {
    let mut max_id = 0usize;
    let mut any = false;
    for n in plan.nodes() {
        let ids: Vec<usize> = match &n.op {
            PhysicalOp::HashJoin {
                bitmap: Some(b), ..
            } => vec![b.0],
            PhysicalOp::BitmapCreate { bitmap, .. } => vec![bitmap.0],
            PhysicalOp::TableScan {
                bitmap_probe: Some(bp),
                ..
            }
            | PhysicalOp::IndexScan {
                bitmap_probe: Some(bp),
                ..
            }
            | PhysicalOp::ColumnstoreScan {
                bitmap_probe: Some(bp),
                ..
            } => vec![bp.bitmap.0],
            _ => vec![],
        };
        for id in ids {
            any = true;
            max_id = max_id.max(id);
        }
    }
    if any {
        max_id + 1
    } else {
        0
    }
}

/// Display names for each plan node, indexed by `NodeId` — the label table
/// the trace exporters and live view take alongside events.
pub fn plan_node_names(plan: &PhysicalPlan) -> Vec<String> {
    plan.nodes()
        .iter()
        .map(|n| n.op.display_name().to_owned())
        .collect()
}

/// Execute `plan` against `db`, returning the DMV trace and ground truth.
pub fn execute(db: &Database, plan: &PhysicalPlan, opts: &ExecOptions) -> QueryRun {
    execute_inner(db, plan, opts, ExecHooks::default())
        .expect("run without cancel/deadline hooks cannot abort")
}

/// [`execute`], with every engine event (operator lifecycle, phase
/// transitions, buffer high-water marks, bitmap builds, snapshot ticks)
/// emitted into `sink` as it happens on the virtual clock.
pub fn execute_traced(
    db: &Database,
    plan: &PhysicalPlan,
    opts: &ExecOptions,
    sink: &dyn EventSink,
) -> QueryRun {
    execute_inner(
        db,
        plan,
        opts,
        ExecHooks {
            sink: Some(sink),
            ..ExecHooks::default()
        },
    )
    .expect("run without cancel/deadline hooks cannot abort")
}

/// [`execute`] with the full hook set: live snapshot publishing,
/// cancellation, and a virtual-time deadline. An aborted run returns
/// [`AbortedQuery`] carrying the partial trace.
pub fn execute_hooked(
    db: &Database,
    plan: &PhysicalPlan,
    opts: &ExecOptions,
    hooks: ExecHooks<'_>,
) -> Result<QueryRun, AbortedQuery> {
    execute_inner(db, plan, opts, hooks)
}

fn execute_inner(
    db: &Database,
    plan: &PhysicalPlan,
    opts: &ExecOptions,
    hooks: ExecHooks<'_>,
) -> Result<QueryRun, AbortedQuery> {
    let interval = opts.snapshot_interval_ns.unwrap_or_else(|| {
        let est = estimated_duration_ns(plan, &opts.cost_model);
        ((est / opts.snapshot_target.max(1) as f64) as u64).max(1)
    });
    let mut ctx = ExecContext::new(
        db,
        plan.len(),
        bitmap_count(plan),
        interval,
        opts.cost_model.clone(),
    );
    if let Some(sink) = hooks.sink {
        ctx = ctx.with_sink(sink);
    }
    if let Some(publisher) = hooks.publisher {
        ctx = ctx.with_publisher(publisher);
    }
    if let Some(token) = hooks.cancel {
        ctx = ctx.with_cancellation(token.clone());
    }
    if let Some(deadline) = hooks.deadline_ns {
        ctx = ctx.with_deadline(deadline);
    }
    if let Some(fault) = hooks.fault {
        ctx = ctx.with_fault(fault);
    }
    // The abort path unwinds out of the operator tree with a `QueryAborted`
    // payload; catching it here (and only it) turns the unwind into a
    // structured error while leaving real panics fatal. The context lives
    // outside the catch, so the partial trace survives the unwind.
    let use_batch = match opts.mode {
        ExecMode::Tuple => false,
        ExecMode::Batch => true,
        ExecMode::Auto => ctx.batch_path_ok(),
    };
    let drive = crate::context::catch_query_abort(|| {
        let mut root = build_operator(plan, db, plan.root());
        root.open(&ctx);
        let mut rows_returned = 0u64;
        if use_batch {
            let limit = opts.batch_size.max(1);
            let mut batch = crate::ops::RowBatch::with_capacity(limit);
            loop {
                let more = root.next_batch(&ctx, &mut batch, limit);
                rows_returned += batch.len() as u64;
                batch.clear();
                if !more {
                    break;
                }
            }
        } else {
            while root.next(&ctx).is_some() {
                rows_returned += 1;
            }
        }
        root.close(&ctx);
        rows_returned
    });
    match drive {
        Ok(rows_returned) => {
            let (snapshots, final_counters, node_elapsed_ns, duration_ns) = ctx.into_results();
            let run = QueryRun {
                snapshots,
                final_counters,
                duration_ns,
                rows_returned,
                cost_model: opts.cost_model.clone(),
                node_elapsed_ns,
            };
            if let Some(metrics) = hooks.metrics {
                metrics.record_run(plan, &run);
            }
            Ok(run)
        }
        Err(payload) => match payload.downcast::<QueryAborted>() {
            Ok(aborted) => {
                let (snapshots, partial_counters, _, _) = ctx.into_results();
                Err(AbortedQuery {
                    reason: aborted.reason,
                    at_ns: aborted.at_ns,
                    snapshots,
                    partial_counters,
                })
            }
            Err(other) => std::panic::resume_unwind(other),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lqs_plan::{Expr, PlanBuilder, SortKey};
    use lqs_storage::{Column, DataType, Schema, Table, Value};

    fn db() -> (Database, lqs_storage::TableId) {
        let mut t = Table::new(
            "t",
            Schema::new(vec![
                Column::new("a", DataType::Int),
                Column::new("b", DataType::Int),
            ]),
        );
        for i in 0..5000 {
            t.insert(vec![Value::Int(i), Value::Int(i % 100)]).unwrap();
        }
        let mut db = Database::new();
        let id = db.add_table_analyzed(t);
        (db, id)
    }

    #[test]
    fn scan_sort_end_to_end() {
        let (db, t) = db();
        let mut b = PlanBuilder::new(&db);
        let scan = b.table_scan_filtered(t, Expr::col(1).lt(Expr::lit(50i64)), true);
        let sort = b.sort(scan, vec![SortKey::desc(0)]);
        let plan = b.finish(sort);
        let run = execute(&db, &plan, &ExecOptions::default());

        assert_eq!(run.rows_returned, 2500);
        assert_eq!(run.true_n(scan.0), 2500.0);
        assert_eq!(run.true_n(sort.0 as usize), 2500.0);
        assert!(run.duration_ns > 0);
        // Snapshots recorded across the run, roughly on target.
        assert!(run.snapshots.len() > 20, "got {}", run.snapshots.len());
        // Monotone counters across snapshots.
        for w in run.snapshots.windows(2) {
            for i in 0..plan.len() {
                assert!(w[0].nodes[i].rows_output <= w[1].nodes[i].rows_output);
                assert!(w[0].nodes[i].logical_reads <= w[1].nodes[i].logical_reads);
            }
        }
        // The scan charged one read per page.
        assert_eq!(
            run.final_counters[scan.0].logical_reads,
            db.table(t).page_count() as u64
        );
    }

    #[test]
    fn true_progress_is_monotone_and_bounded() {
        let (db, t) = db();
        let mut b = PlanBuilder::new(&db);
        let scan = b.table_scan(t);
        let agg = b.hash_aggregate(
            scan,
            vec![1],
            vec![lqs_plan::Aggregate::of_col(lqs_plan::AggFunc::Sum, 0)],
        );
        let plan = b.finish(agg);
        let run = execute(&db, &plan, &ExecOptions::default());
        assert_eq!(run.rows_returned, 100);
        let mut prev = 0.0;
        for s in &run.snapshots {
            let p = run.true_query_progress(s);
            assert!((0.0..=1.0).contains(&p));
            assert!(p >= prev);
            prev = p;
        }
    }
}
