//! Predicate compilation for the vectorized path.
//!
//! The interpreted [`Expr`] walk clones a [`Value`] per `Col`/`Lit` node
//! and recurses through boxed children on every row — fine for the
//! per-tuple reference path, but it dominates the per-row cost once the
//! batch loop has eliminated staging clones. A [`CompiledPredicate`] is
//! built once when the operator is constructed: the overwhelmingly common
//! pushed-down shapes (`col <op> literal`, and conjunctions of those)
//! evaluate with direct slice indexing and zero clones; anything else
//! falls back to the interpreter, so compilation never changes results.

use lqs_plan::{CmpOp, Expr};
use lqs_storage::Value;

/// One `row[col] <op> lit` comparison. NULL on either side fails the
/// match, exactly like the interpreted `Cmp` (whose NULL result is not
/// truthy).
pub(crate) struct ColLitCmp {
    col: usize,
    op: CmpOp,
    lit: Value,
}

impl ColLitCmp {
    #[inline]
    fn matches(&self, row: &[Value]) -> bool {
        let v = &row[self.col];
        if v.is_null() || self.lit.is_null() {
            return false;
        }
        self.op.apply(v, &self.lit)
    }
}

/// A predicate specialized for batch evaluation. See the module docs.
pub(crate) enum CompiledPredicate {
    /// `row[col] <op> lit`.
    Single(ColLitCmp),
    /// `AND` of col-vs-literal comparisons. An `AND` whose conjuncts are
    /// all `Cmp` can only be truthy when every conjunct is true and
    /// non-NULL, so short-circuit `all()` matches the interpreter.
    Conjunction(Vec<ColLitCmp>),
    /// Any other shape: interpreted, bit-for-bit the reference semantics.
    General(Expr),
}

impl CompiledPredicate {
    /// Compile `expr`. Never fails — unsupported shapes keep the
    /// interpreter.
    pub(crate) fn compile(expr: &Expr) -> Self {
        fn as_col_lit(e: &Expr) -> Option<ColLitCmp> {
            if let Expr::Cmp { op, lhs, rhs } = e {
                match (lhs.as_ref(), rhs.as_ref()) {
                    (Expr::Col(c), Expr::Lit(v)) => {
                        return Some(ColLitCmp {
                            col: *c,
                            op: *op,
                            lit: v.clone(),
                        })
                    }
                    (Expr::Lit(v), Expr::Col(c)) => {
                        // Flip `lit <op> col` into `col <flipped> lit`.
                        let flipped = match op {
                            CmpOp::Eq => CmpOp::Eq,
                            CmpOp::Ne => CmpOp::Ne,
                            CmpOp::Lt => CmpOp::Gt,
                            CmpOp::Le => CmpOp::Ge,
                            CmpOp::Gt => CmpOp::Lt,
                            CmpOp::Ge => CmpOp::Le,
                        };
                        return Some(ColLitCmp {
                            col: *c,
                            op: flipped,
                            lit: v.clone(),
                        });
                    }
                    _ => {}
                }
            }
            None
        }
        if let Some(c) = as_col_lit(expr) {
            return CompiledPredicate::Single(c);
        }
        if let Expr::And(parts) = expr {
            let compiled: Option<Vec<ColLitCmp>> = parts.iter().map(as_col_lit).collect();
            if let Some(cs) = compiled {
                if !cs.is_empty() {
                    return CompiledPredicate::Conjunction(cs);
                }
            }
        }
        CompiledPredicate::General(expr.clone())
    }

    /// Evaluate against a row. Identical truth table to
    /// [`Expr::matches`].
    #[inline]
    pub(crate) fn matches(&self, row: &[Value]) -> bool {
        match self {
            CompiledPredicate::Single(c) => c.matches(row),
            CompiledPredicate::Conjunction(cs) => cs.iter().all(|c| c.matches(row)),
            CompiledPredicate::General(e) => e.matches(row),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(i: i64) -> Expr {
        Expr::lit(i)
    }

    #[test]
    fn compiled_matches_interpreter() {
        let rows: Vec<Vec<Value>> = vec![
            vec![Value::Int(3), Value::Null],
            vec![Value::Int(50), Value::Int(7)],
            vec![Value::Null, Value::Int(0)],
            vec![Value::Float(2.5), Value::Int(-1)],
        ];
        let exprs = vec![
            Expr::col(0).lt(lit(10)),
            Expr::col(0).eq(lit(50)),
            lit(10).lt(Expr::col(0)),
            Expr::And(vec![Expr::col(0).ge(lit(0)), Expr::col(1).lt(lit(5))]),
            Expr::And(vec![]),
            Expr::Or(vec![Expr::col(0).lt(lit(10)), Expr::col(1).eq(lit(7))]),
            Expr::col(1).cmp(CmpOp::Ne, lit(7)),
            Expr::Not(Box::new(Expr::col(0).lt(lit(10)))),
        ];
        for e in &exprs {
            let c = CompiledPredicate::compile(e);
            for r in &rows {
                assert_eq!(
                    c.matches(r),
                    e.matches(r),
                    "expr {e:?} diverged on row {r:?}"
                );
            }
        }
    }
}
