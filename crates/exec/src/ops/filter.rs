//! Row-at-a-time pipelined operators: Filter, Compute Scalar, Top, Segment.

use super::{BoxedOperator, Operator, RowBatch};
use crate::context::ExecContext;
use crate::pred::CompiledPredicate;
use lqs_plan::{Expr, NodeId};
use lqs_storage::{Row, Value};

/// CPU discount applied to batch-mode row operations.
const BATCH_FACTOR: f64 = 0.2;

/// Row filter.
pub struct FilterOp {
    id: NodeId,
    predicate: Expr,
    /// Specialized form of `predicate` for the batch loop (same results).
    compiled: CompiledPredicate,
    batch: bool,
    child: BoxedOperator,
    done: bool,
}

impl FilterOp {
    pub(crate) fn new(id: NodeId, predicate: Expr, batch: bool, child: BoxedOperator) -> Self {
        FilterOp {
            id,
            compiled: CompiledPredicate::compile(&predicate),
            predicate,
            batch,
            child,
            done: false,
        }
    }
}

impl Operator for FilterOp {
    fn open(&mut self, ctx: &ExecContext) {
        ctx.mark_open(self.id);
        self.child.open(ctx);
    }

    fn next(&mut self, ctx: &ExecContext) -> Option<Row> {
        if self.done {
            return None;
        }
        let factor = if self.batch { BATCH_FACTOR } else { 1.0 };
        loop {
            let Some(row) = self.child.next(ctx) else {
                self.done = true;
                ctx.mark_close(self.id);
                return None;
            };
            ctx.count_input(self.id, 1);
            ctx.charge_cpu(self.id, ctx.cost.filter_row_ns * factor);
            if self.predicate.matches(&row) {
                ctx.count_output(self.id);
                return Some(row);
            }
        }
    }

    fn next_batch(&mut self, ctx: &ExecContext, out: &mut RowBatch, limit: usize) -> bool {
        if self.done {
            return false;
        }
        if limit == 0 {
            return true;
        }
        let factor = if self.batch { BATCH_FACTOR } else { 1.0 };
        let row_cpu = ctx.cost.filter_row_ns * factor;
        // In-place filtering: the child appends straight into `out` (no
        // staging buffer, no per-row move between batches) and survivors
        // are compacted over rejected rows with swaps. A child appends at
        // most `limit` rows per call, so the appended range is always
        // fully processed before the next pull — no leftover carries
        // across calls, exactly like a staged scratch would behave.
        let before = out.len();
        loop {
            if !self.child.next_batch(ctx, out, limit) {
                self.done = true;
                ctx.mark_close(self.id);
                return false;
            }
            // Row counts go through the scope, interleaved per row, so
            // any snapshot a flush records sees input and output in
            // step — the filter's UB bound treats every input-counted
            // row beyond the first in-flight one as fully emitted.
            let mut scope = ctx.batch_charge(self.id);
            let mut kept = before;
            let rows = out.contiguous_mut();
            for i in before..rows.len() {
                scope.rows_in(1);
                scope.cpu(row_cpu);
                if self.compiled.matches(&rows[i]) {
                    if kept != i {
                        rows.swap(kept, i);
                    }
                    kept += 1;
                    scope.rows_out(1);
                }
            }
            out.truncate(kept);
            scope.finish();
            if kept > before {
                return true;
            }
        }
    }

    fn close(&mut self, ctx: &ExecContext) {
        self.child.close(ctx);
        ctx.mark_close(self.id);
    }

    fn rewind(&mut self, ctx: &ExecContext) {
        ctx.mark_open(self.id);
        self.child.rewind(ctx);
        self.done = false;
    }
}

/// Appends computed columns.
pub struct ComputeScalarOp {
    id: NodeId,
    exprs: Vec<Expr>,
    batch: bool,
    child: BoxedOperator,
    done: bool,
}

impl ComputeScalarOp {
    pub(crate) fn new(id: NodeId, exprs: Vec<Expr>, batch: bool, child: BoxedOperator) -> Self {
        ComputeScalarOp {
            id,
            exprs,
            batch,
            child,
            done: false,
        }
    }
}

impl Operator for ComputeScalarOp {
    fn open(&mut self, ctx: &ExecContext) {
        ctx.mark_open(self.id);
        self.child.open(ctx);
    }

    fn next(&mut self, ctx: &ExecContext) -> Option<Row> {
        if self.done {
            return None;
        }
        let factor = if self.batch { BATCH_FACTOR } else { 1.0 };
        let Some(row) = self.child.next(ctx) else {
            self.done = true;
            ctx.mark_close(self.id);
            return None;
        };
        ctx.count_input(self.id, 1);
        ctx.charge_cpu(
            self.id,
            ctx.cost.compute_expr_ns * self.exprs.len() as f64 * factor,
        );
        let mut out: Vec<Value> = row.to_vec();
        for e in &self.exprs {
            out.push(e.eval(&row));
        }
        ctx.count_output(self.id);
        Some(out.into())
    }

    fn next_batch(&mut self, ctx: &ExecContext, out: &mut RowBatch, limit: usize) -> bool {
        if self.done {
            return false;
        }
        if limit == 0 {
            return true;
        }
        let factor = if self.batch { BATCH_FACTOR } else { 1.0 };
        let row_cpu = ctx.cost.compute_expr_ns * self.exprs.len() as f64 * factor;
        // 1:1 transform rewritten in place over the child's appended range
        // (see FilterOp::next_batch for why no rows carry across calls).
        let before = out.len();
        if !self.child.next_batch(ctx, out, limit) {
            self.done = true;
            ctx.mark_close(self.id);
            return false;
        }
        let n = out.len() - before;
        let mut scope = ctx.batch_charge(self.id);
        let rows = out.contiguous_mut();
        for row in &mut rows[before..] {
            scope.cpu(row_cpu);
            let mut v: Vec<Value> = row.to_vec();
            for e in &self.exprs {
                v.push(e.eval(row));
            }
            *row = v.into();
        }
        scope.finish();
        ctx.count_input(self.id, n as u64);
        ctx.count_output_batch(self.id, n as u64);
        true
    }

    fn close(&mut self, ctx: &ExecContext) {
        self.child.close(ctx);
        ctx.mark_close(self.id);
    }

    fn rewind(&mut self, ctx: &ExecContext) {
        ctx.mark_open(self.id);
        self.child.rewind(ctx);
        self.done = false;
    }
}

/// Pass through the first `n` rows, then stop pulling from the child.
pub struct TopOp {
    id: NodeId,
    n: usize,
    emitted: usize,
    child: BoxedOperator,
    done: bool,
}

impl TopOp {
    pub(crate) fn new(id: NodeId, n: usize, child: BoxedOperator) -> Self {
        TopOp {
            id,
            n,
            emitted: 0,
            child,
            done: false,
        }
    }
}

impl Operator for TopOp {
    fn open(&mut self, ctx: &ExecContext) {
        ctx.mark_open(self.id);
        self.child.open(ctx);
    }

    fn next(&mut self, ctx: &ExecContext) -> Option<Row> {
        if self.done || self.emitted >= self.n {
            if !self.done {
                self.done = true;
                ctx.mark_close(self.id);
            }
            return None;
        }
        let Some(row) = self.child.next(ctx) else {
            self.done = true;
            ctx.mark_close(self.id);
            return None;
        };
        ctx.count_input(self.id, 1);
        ctx.charge_cpu(self.id, 2.0);
        self.emitted += 1;
        ctx.count_output(self.id);
        Some(row)
    }

    fn next_batch(&mut self, ctx: &ExecContext, out: &mut RowBatch, limit: usize) -> bool {
        if self.done {
            return false;
        }
        if self.emitted >= self.n {
            self.done = true;
            ctx.mark_close(self.id);
            return false;
        }
        if limit == 0 {
            return true;
        }
        // Rows pass through unchanged, so pull the child straight into
        // `out`, clamped to the remaining demand — the child never
        // overproduces past the TOP bound.
        let want = limit.min(self.n - self.emitted);
        let before = out.len();
        if !self.child.next_batch(ctx, out, want) {
            self.done = true;
            ctx.mark_close(self.id);
            return false;
        }
        let got = (out.len() - before) as u64;
        if got > 0 {
            let mut scope = ctx.batch_charge(self.id);
            for _ in 0..got {
                scope.cpu(2.0);
            }
            scope.finish();
            ctx.count_input(self.id, got);
            self.emitted += got as usize;
            ctx.count_output_batch(self.id, got);
        }
        true
    }

    fn close(&mut self, ctx: &ExecContext) {
        self.child.close(ctx);
        ctx.mark_close(self.id);
    }

    fn rewind(&mut self, ctx: &ExecContext) {
        ctx.mark_open(self.id);
        self.child.rewind(ctx);
        self.emitted = 0;
        self.done = false;
    }
}

/// Appends a segment-boundary marker column (1 at the first row of each
/// group of equal `group_by` values, 0 otherwise). Input must be sorted.
pub struct SegmentOp {
    id: NodeId,
    group_by: Vec<usize>,
    prev_key: Option<Vec<Value>>,
    child: BoxedOperator,
    done: bool,
}

impl SegmentOp {
    pub(crate) fn new(id: NodeId, group_by: Vec<usize>, child: BoxedOperator) -> Self {
        SegmentOp {
            id,
            group_by,
            prev_key: None,
            child,
            done: false,
        }
    }
}

impl Operator for SegmentOp {
    fn open(&mut self, ctx: &ExecContext) {
        ctx.mark_open(self.id);
        self.child.open(ctx);
    }

    fn next(&mut self, ctx: &ExecContext) -> Option<Row> {
        if self.done {
            return None;
        }
        let Some(row) = self.child.next(ctx) else {
            self.done = true;
            ctx.mark_close(self.id);
            return None;
        };
        ctx.count_input(self.id, 1);
        ctx.charge_cpu(self.id, 5.0);
        let key = super::key_of(&row, &self.group_by);
        let boundary = self.prev_key.as_ref() != Some(&key);
        self.prev_key = Some(key);
        let mut out: Vec<Value> = row.to_vec();
        out.push(Value::Int(boundary as i64));
        ctx.count_output(self.id);
        Some(out.into())
    }

    fn next_batch(&mut self, ctx: &ExecContext, out: &mut RowBatch, limit: usize) -> bool {
        if self.done {
            return false;
        }
        if limit == 0 {
            return true;
        }
        // 1:1 transform rewritten in place over the child's appended range
        // (see FilterOp::next_batch for why no rows carry across calls).
        let before = out.len();
        if !self.child.next_batch(ctx, out, limit) {
            self.done = true;
            ctx.mark_close(self.id);
            return false;
        }
        let n = out.len() - before;
        let mut scope = ctx.batch_charge(self.id);
        let rows = out.contiguous_mut();
        for row in &mut rows[before..] {
            scope.cpu(5.0);
            let key = super::key_of(row, &self.group_by);
            let boundary = self.prev_key.as_ref() != Some(&key);
            self.prev_key = Some(key);
            let mut v: Vec<Value> = row.to_vec();
            v.push(Value::Int(boundary as i64));
            *row = v.into();
        }
        scope.finish();
        ctx.count_input(self.id, n as u64);
        ctx.count_output_batch(self.id, n as u64);
        true
    }

    fn close(&mut self, ctx: &ExecContext) {
        self.child.close(ctx);
        ctx.mark_close(self.id);
    }

    fn rewind(&mut self, ctx: &ExecContext) {
        ctx.mark_open(self.id);
        self.child.rewind(ctx);
        self.prev_key = None;
        self.done = false;
    }
}
