//! Row-at-a-time pipelined operators: Filter, Compute Scalar, Top, Segment.

use super::{BoxedOperator, Operator};
use crate::context::ExecContext;
use lqs_plan::{Expr, NodeId};
use lqs_storage::{Row, Value};

/// CPU discount applied to batch-mode row operations.
const BATCH_FACTOR: f64 = 0.2;

/// Row filter.
pub struct FilterOp {
    id: NodeId,
    predicate: Expr,
    batch: bool,
    child: BoxedOperator,
    done: bool,
}

impl FilterOp {
    pub(crate) fn new(id: NodeId, predicate: Expr, batch: bool, child: BoxedOperator) -> Self {
        FilterOp {
            id,
            predicate,
            batch,
            child,
            done: false,
        }
    }
}

impl Operator for FilterOp {
    fn open(&mut self, ctx: &ExecContext) {
        ctx.mark_open(self.id);
        self.child.open(ctx);
    }

    fn next(&mut self, ctx: &ExecContext) -> Option<Row> {
        if self.done {
            return None;
        }
        let factor = if self.batch { BATCH_FACTOR } else { 1.0 };
        loop {
            let Some(row) = self.child.next(ctx) else {
                self.done = true;
                ctx.mark_close(self.id);
                return None;
            };
            ctx.count_input(self.id, 1);
            ctx.charge_cpu(self.id, ctx.cost.filter_row_ns * factor);
            if self.predicate.matches(&row) {
                ctx.count_output(self.id);
                return Some(row);
            }
        }
    }

    fn close(&mut self, ctx: &ExecContext) {
        self.child.close(ctx);
        ctx.mark_close(self.id);
    }

    fn rewind(&mut self, ctx: &ExecContext) {
        ctx.mark_open(self.id);
        self.child.rewind(ctx);
        self.done = false;
    }
}

/// Appends computed columns.
pub struct ComputeScalarOp {
    id: NodeId,
    exprs: Vec<Expr>,
    batch: bool,
    child: BoxedOperator,
    done: bool,
}

impl ComputeScalarOp {
    pub(crate) fn new(id: NodeId, exprs: Vec<Expr>, batch: bool, child: BoxedOperator) -> Self {
        ComputeScalarOp {
            id,
            exprs,
            batch,
            child,
            done: false,
        }
    }
}

impl Operator for ComputeScalarOp {
    fn open(&mut self, ctx: &ExecContext) {
        ctx.mark_open(self.id);
        self.child.open(ctx);
    }

    fn next(&mut self, ctx: &ExecContext) -> Option<Row> {
        if self.done {
            return None;
        }
        let factor = if self.batch { BATCH_FACTOR } else { 1.0 };
        let Some(row) = self.child.next(ctx) else {
            self.done = true;
            ctx.mark_close(self.id);
            return None;
        };
        ctx.count_input(self.id, 1);
        ctx.charge_cpu(
            self.id,
            ctx.cost.compute_expr_ns * self.exprs.len() as f64 * factor,
        );
        let mut out: Vec<Value> = row.to_vec();
        for e in &self.exprs {
            out.push(e.eval(&row));
        }
        ctx.count_output(self.id);
        Some(out.into())
    }

    fn close(&mut self, ctx: &ExecContext) {
        self.child.close(ctx);
        ctx.mark_close(self.id);
    }

    fn rewind(&mut self, ctx: &ExecContext) {
        ctx.mark_open(self.id);
        self.child.rewind(ctx);
        self.done = false;
    }
}

/// Pass through the first `n` rows, then stop pulling from the child.
pub struct TopOp {
    id: NodeId,
    n: usize,
    emitted: usize,
    child: BoxedOperator,
    done: bool,
}

impl TopOp {
    pub(crate) fn new(id: NodeId, n: usize, child: BoxedOperator) -> Self {
        TopOp {
            id,
            n,
            emitted: 0,
            child,
            done: false,
        }
    }
}

impl Operator for TopOp {
    fn open(&mut self, ctx: &ExecContext) {
        ctx.mark_open(self.id);
        self.child.open(ctx);
    }

    fn next(&mut self, ctx: &ExecContext) -> Option<Row> {
        if self.done || self.emitted >= self.n {
            if !self.done {
                self.done = true;
                ctx.mark_close(self.id);
            }
            return None;
        }
        let Some(row) = self.child.next(ctx) else {
            self.done = true;
            ctx.mark_close(self.id);
            return None;
        };
        ctx.count_input(self.id, 1);
        ctx.charge_cpu(self.id, 2.0);
        self.emitted += 1;
        ctx.count_output(self.id);
        Some(row)
    }

    fn close(&mut self, ctx: &ExecContext) {
        self.child.close(ctx);
        ctx.mark_close(self.id);
    }

    fn rewind(&mut self, ctx: &ExecContext) {
        ctx.mark_open(self.id);
        self.child.rewind(ctx);
        self.emitted = 0;
        self.done = false;
    }
}

/// Appends a segment-boundary marker column (1 at the first row of each
/// group of equal `group_by` values, 0 otherwise). Input must be sorted.
pub struct SegmentOp {
    id: NodeId,
    group_by: Vec<usize>,
    prev_key: Option<Vec<Value>>,
    child: BoxedOperator,
    done: bool,
}

impl SegmentOp {
    pub(crate) fn new(id: NodeId, group_by: Vec<usize>, child: BoxedOperator) -> Self {
        SegmentOp {
            id,
            group_by,
            prev_key: None,
            child,
            done: false,
        }
    }
}

impl Operator for SegmentOp {
    fn open(&mut self, ctx: &ExecContext) {
        ctx.mark_open(self.id);
        self.child.open(ctx);
    }

    fn next(&mut self, ctx: &ExecContext) -> Option<Row> {
        if self.done {
            return None;
        }
        let Some(row) = self.child.next(ctx) else {
            self.done = true;
            ctx.mark_close(self.id);
            return None;
        };
        ctx.count_input(self.id, 1);
        ctx.charge_cpu(self.id, 5.0);
        let key = super::key_of(&row, &self.group_by);
        let boundary = self.prev_key.as_ref() != Some(&key);
        self.prev_key = Some(key);
        let mut out: Vec<Value> = row.to_vec();
        out.push(Value::Int(boundary as i64));
        ctx.count_output(self.id);
        Some(out.into())
    }

    fn close(&mut self, ctx: &ExecContext) {
        self.child.close(ctx);
        ctx.mark_close(self.id);
    }

    fn rewind(&mut self, ctx: &ExecContext) {
        ctx.mark_open(self.id);
        self.child.rewind(ctx);
        self.prev_key = None;
        self.done = false;
    }
}
