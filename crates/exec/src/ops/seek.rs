//! Index seeks (point, range, and correlated) and RID lookups.

use super::{Operator, RowBatch};
use crate::context::ExecContext;
use lqs_plan::{Expr, IndexOutput, NodeId, SeekKey, SeekRange};
use lqs_storage::{IndexId, Row, RowId, TableId, Value};

/// B+tree seek. Correlated seeks (`SeekKey::OuterRef`) resolve against the
/// current nested-loops outer row; each rewind re-executes the seek with the
/// new binding, which is how index nested-loops joins drive the inner side.
pub struct IndexSeekOp {
    id: NodeId,
    index: IndexId,
    seek: SeekRange,
    residual: Option<Expr>,
    output: IndexOutput,
    rids: Vec<RowId>,
    pos: usize,
    executed: bool,
    done: bool,
}

impl IndexSeekOp {
    pub(crate) fn new(
        id: NodeId,
        index: IndexId,
        seek: SeekRange,
        residual: Option<Expr>,
        output: IndexOutput,
    ) -> Self {
        IndexSeekOp {
            id,
            index,
            seek,
            residual,
            output,
            rids: Vec::new(),
            pos: 0,
            executed: false,
            done: false,
        }
    }

    fn resolve(&self, ctx: &ExecContext, key: &SeekKey) -> Value {
        match key {
            SeekKey::Lit(v) => v.clone(),
            SeekKey::OuterRef(c) => ctx.current_outer()[*c].clone(),
        }
    }

    fn run_seek(&mut self, ctx: &ExecContext) {
        let prefix: Vec<Value> = self
            .seek
            .eq_keys
            .iter()
            .map(|k| self.resolve(ctx, k))
            .collect();
        let (lo, lo_inc) = match &self.seek.lo {
            Some((k, inc)) => {
                let mut v = prefix.clone();
                v.push(self.resolve(ctx, k));
                (v, *inc)
            }
            None => (prefix.clone(), true),
        };
        let (hi, hi_inc) = match &self.seek.hi {
            Some((k, inc)) => {
                let mut v = prefix.clone();
                v.push(self.resolve(ctx, k));
                (v, *inc)
            }
            None => (prefix.clone(), true),
        };
        let ix = ctx.db.btree(self.index);
        let (rids, reads) = if lo.is_empty() && hi.is_empty() {
            ix.seek_range(None, true, None, true)
        } else {
            ix.seek_range(Some(&lo), lo_inc, Some(&hi), hi_inc)
        };
        self.rids = rids;
        self.pos = 0;
        ctx.charge_io(self.id, reads as u64);
    }

    fn emit_row(&self, ctx: &ExecContext, rid: RowId) -> Row {
        let table_id = ctx.db.btree_table(self.index);
        let base = ctx.db.table(table_id).row(rid);
        match self.output {
            IndexOutput::BaseRow => base.clone(),
            IndexOutput::KeyAndRid => {
                let ix = ctx.db.btree(self.index);
                let mut out: Vec<Value> =
                    ix.key_columns().iter().map(|&c| base[c].clone()).collect();
                out.push(Value::Int(rid as i64));
                out.into()
            }
        }
    }
}

impl Operator for IndexSeekOp {
    fn open(&mut self, ctx: &ExecContext) {
        ctx.mark_open(self.id);
        self.executed = false;
        self.done = false;
    }

    fn next(&mut self, ctx: &ExecContext) -> Option<Row> {
        if self.done {
            return None;
        }
        if !self.executed {
            self.executed = true;
            self.run_seek(ctx);
        }
        let table_id = ctx.db.btree_table(self.index);
        while self.pos < self.rids.len() {
            let rid = self.rids[self.pos];
            self.pos += 1;
            ctx.charge_cpu(self.id, ctx.cost.seek_row_ns);
            if let Some(r) = &self.residual {
                let base = ctx.db.table(table_id).row(rid);
                if !r.matches(base) {
                    continue;
                }
            }
            ctx.count_output(self.id);
            return Some(self.emit_row(ctx, rid));
        }
        self.done = true;
        ctx.mark_close(self.id);
        None
    }

    fn next_batch(&mut self, ctx: &ExecContext, out: &mut RowBatch, limit: usize) -> bool {
        if self.done {
            return false;
        }
        if limit == 0 {
            return true;
        }
        if !self.executed {
            self.executed = true;
            self.run_seek(ctx);
        }
        let table_id = ctx.db.btree_table(self.index);
        let mut appended = 0u64;
        let mut scope = ctx.batch_charge(self.id);
        while self.pos < self.rids.len() && (appended as usize) < limit {
            let rid = self.rids[self.pos];
            self.pos += 1;
            scope.cpu(ctx.cost.seek_row_ns);
            if let Some(r) = &self.residual {
                let base = ctx.db.table(table_id).row(rid);
                if !r.matches(base) {
                    continue;
                }
            }
            out.push(self.emit_row(ctx, rid));
            appended += 1;
        }
        scope.finish();
        if appended == 0 {
            self.done = true;
            ctx.mark_close(self.id);
            return false;
        }
        ctx.count_output_batch(self.id, appended);
        true
    }

    fn close(&mut self, ctx: &ExecContext) {
        ctx.mark_close(self.id);
    }

    fn rewind(&mut self, ctx: &ExecContext) {
        ctx.mark_open(self.id);
        self.executed = false;
        self.done = false;
        self.rids.clear();
        self.pos = 0;
    }
}

/// Fetch base rows by heap RID: the child's **last** output column must be
/// the RID (produced by a `KeyAndRid` index access). Charges one random
/// page read per row.
pub struct RidLookupOp {
    id: NodeId,
    table: TableId,
    child: super::BoxedOperator,
    scratch: RowBatch,
    done: bool,
}

impl RidLookupOp {
    pub(crate) fn new(id: NodeId, table: TableId, child: super::BoxedOperator) -> Self {
        RidLookupOp {
            id,
            table,
            child,
            scratch: RowBatch::default(),
            done: false,
        }
    }
}

impl Operator for RidLookupOp {
    fn open(&mut self, ctx: &ExecContext) {
        ctx.mark_open(self.id);
        self.child.open(ctx);
    }

    fn next(&mut self, ctx: &ExecContext) -> Option<Row> {
        if self.done {
            return None;
        }
        let Some(row) = self.child.next(ctx) else {
            self.done = true;
            ctx.mark_close(self.id);
            return None;
        };
        ctx.count_input(self.id, 1);
        let rid = row
            .last()
            .and_then(Value::as_int)
            .expect("RID Lookup child must emit a trailing integer RID") as RowId;
        ctx.charge_io(self.id, ctx.cost.rid_lookup_pages as u64);
        ctx.charge_cpu(self.id, ctx.cost.seek_row_ns);
        let base = ctx.db.table(self.table).row(rid).clone();
        ctx.count_output(self.id);
        Some(base)
    }

    fn next_batch(&mut self, ctx: &ExecContext, out: &mut RowBatch, limit: usize) -> bool {
        if self.done {
            return false;
        }
        if limit == 0 {
            return true;
        }
        // 1:1 transform rewritten in place over the child's appended range
        // (see FilterOp::next_batch for why no rows carry across calls).
        let before = out.len();
        if !self.child.next_batch(ctx, out, limit) {
            self.done = true;
            ctx.mark_close(self.id);
            return false;
        }
        let n = out.len() - before;
        let mut scope = ctx.batch_charge(self.id);
        let rows = out.contiguous_mut();
        for row in &mut rows[before..] {
            let rid = row
                .last()
                .and_then(Value::as_int)
                .expect("RID Lookup child must emit a trailing integer RID")
                as RowId;
            scope.io(ctx.cost.rid_lookup_pages as u64);
            scope.cpu(ctx.cost.seek_row_ns);
            *row = ctx.db.table(self.table).row(rid).clone();
        }
        scope.finish();
        ctx.count_input(self.id, n as u64);
        ctx.count_output_batch(self.id, n as u64);
        true
    }

    fn close(&mut self, ctx: &ExecContext) {
        self.child.close(ctx);
        ctx.mark_close(self.id);
    }

    fn rewind(&mut self, ctx: &ExecContext) {
        ctx.mark_open(self.id);
        self.child.rewind(ctx);
        self.scratch.clear();
        self.done = false;
    }
}
