//! Concatenation (UNION ALL) and Bitmap Create.

use super::{key_of, BoxedOperator, Operator, RowBatch};
use crate::context::ExecContext;
use lqs_plan::{BitmapId, NodeId};
use lqs_storage::Row;

/// UNION ALL: drains each child in order.
pub struct ConcatOp {
    id: NodeId,
    children: Vec<BoxedOperator>,
    current: usize,
    done: bool,
}

impl ConcatOp {
    pub(crate) fn new(id: NodeId, children: Vec<BoxedOperator>) -> Self {
        ConcatOp {
            id,
            children,
            current: 0,
            done: false,
        }
    }
}

impl Operator for ConcatOp {
    fn open(&mut self, ctx: &ExecContext) {
        ctx.mark_open(self.id);
        for c in &mut self.children {
            c.open(ctx);
        }
    }

    fn next(&mut self, ctx: &ExecContext) -> Option<Row> {
        if self.done {
            return None;
        }
        while self.current < self.children.len() {
            match self.children[self.current].next(ctx) {
                Some(row) => {
                    ctx.count_input(self.id, 1);
                    ctx.charge_cpu(self.id, 2.0);
                    ctx.count_output(self.id);
                    return Some(row);
                }
                None => self.current += 1,
            }
        }
        self.done = true;
        ctx.mark_close(self.id);
        None
    }

    fn next_batch(&mut self, ctx: &ExecContext, out: &mut RowBatch, limit: usize) -> bool {
        if self.done {
            return false;
        }
        if limit == 0 {
            return true;
        }
        while self.current < self.children.len() {
            // Rows pass through unchanged, so the child appends straight
            // into `out`.
            let before = out.len();
            if !self.children[self.current].next_batch(ctx, out, limit) {
                self.current += 1;
                continue;
            }
            let got = (out.len() - before) as u64;
            if got > 0 {
                let mut scope = ctx.batch_charge(self.id);
                for _ in 0..got {
                    scope.cpu(2.0);
                }
                scope.finish();
                ctx.count_input(self.id, got);
                ctx.count_output_batch(self.id, got);
            }
            return true;
        }
        self.done = true;
        ctx.mark_close(self.id);
        false
    }

    fn close(&mut self, ctx: &ExecContext) {
        for c in &mut self.children {
            c.close(ctx);
        }
        ctx.mark_close(self.id);
    }

    fn rewind(&mut self, ctx: &ExecContext) {
        ctx.mark_open(self.id);
        for c in &mut self.children {
            c.rewind(ctx);
        }
        self.current = 0;
        self.done = false;
    }
}

/// Builds a bitmap (Bloom filter) from the rows streaming through it,
/// passing them along unchanged (Figure 6: sits on the build side of a hash
/// join, with the bitmap probed by the opposite side's scan).
pub struct BitmapCreateOp {
    id: NodeId,
    key_columns: Vec<usize>,
    bitmap: BitmapId,
    capacity_hint: usize,
    child: BoxedOperator,
    keys_inserted: u64,
    done: bool,
}

impl BitmapCreateOp {
    pub(crate) fn new(
        id: NodeId,
        key_columns: Vec<usize>,
        bitmap: BitmapId,
        capacity_hint: usize,
        child: BoxedOperator,
    ) -> Self {
        BitmapCreateOp {
            id,
            key_columns,
            bitmap,
            capacity_hint: capacity_hint.max(64),
            child,
            keys_inserted: 0,
            done: false,
        }
    }
}

impl Operator for BitmapCreateOp {
    fn open(&mut self, ctx: &ExecContext) {
        ctx.mark_open(self.id);
        self.child.open(ctx);
    }

    fn next(&mut self, ctx: &ExecContext) -> Option<Row> {
        if self.done {
            return None;
        }
        let Some(row) = self.child.next(ctx) else {
            self.done = true;
            ctx.emit_bitmap_built(self.id, self.keys_inserted);
            ctx.mark_close(self.id);
            return None;
        };
        ctx.count_input(self.id, 1);
        ctx.charge_cpu(self.id, ctx.cost.bitmap_row_ns);
        let key = key_of(&row, &self.key_columns);
        if !super::key_has_null(&key) {
            ctx.bitmap_insert(self.bitmap, &key, self.capacity_hint);
            self.keys_inserted += 1;
        }
        ctx.count_output(self.id);
        Some(row)
    }

    fn next_batch(&mut self, ctx: &ExecContext, out: &mut RowBatch, limit: usize) -> bool {
        if self.done {
            return false;
        }
        if limit == 0 {
            return true;
        }
        // Rows pass through unchanged; pull straight into `out`, then fold
        // the appended slice into the bitmap.
        let before = out.len();
        if !self.child.next_batch(ctx, out, limit) {
            self.done = true;
            ctx.emit_bitmap_built(self.id, self.keys_inserted);
            ctx.mark_close(self.id);
            return false;
        }
        let got = (out.len() - before) as u64;
        if got > 0 {
            let mut scope = ctx.batch_charge(self.id);
            for i in before..out.len() {
                scope.cpu(ctx.cost.bitmap_row_ns);
                let key = key_of(out.get(i), &self.key_columns);
                if !super::key_has_null(&key) {
                    ctx.bitmap_insert(self.bitmap, &key, self.capacity_hint);
                    self.keys_inserted += 1;
                }
            }
            scope.finish();
            ctx.count_input(self.id, got);
            ctx.count_output_batch(self.id, got);
        }
        true
    }

    fn close(&mut self, ctx: &ExecContext) {
        self.child.close(ctx);
        ctx.mark_close(self.id);
    }

    fn rewind(&mut self, ctx: &ExecContext) {
        ctx.mark_open(self.id);
        self.child.rewind(ctx);
        self.keys_inserted = 0;
        self.done = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::scan::ConstantScanOp;
    use lqs_plan::CostModel;
    use lqs_storage::{Database, Value};

    #[test]
    fn concat_drains_children_in_order() {
        let db = Database::new();
        let ctx = ExecContext::new(&db, 3, 0, u64::MAX, CostModel::default());
        let c1 = Box::new(ConstantScanOp::new(
            NodeId(0),
            vec![vec![Value::Int(1)], vec![Value::Int(2)]],
        ));
        let c2 = Box::new(ConstantScanOp::new(NodeId(1), vec![vec![Value::Int(3)]]));
        let mut cat = ConcatOp::new(NodeId(2), vec![c1, c2]);
        cat.open(&ctx);
        let mut vals = Vec::new();
        while let Some(r) = cat.next(&ctx) {
            vals.push(r[0].as_int().unwrap());
        }
        assert_eq!(vals, vec![1, 2, 3]);
        cat.close(&ctx);
    }

    #[test]
    fn bitmap_create_populates_filter() {
        let db = Database::new();
        let ctx = ExecContext::new(&db, 2, 1, u64::MAX, CostModel::default());
        let child = Box::new(ConstantScanOp::new(
            NodeId(0),
            vec![vec![Value::Int(5)], vec![Value::Null]],
        ));
        let mut op = BitmapCreateOp::new(NodeId(1), vec![0], BitmapId(0), 64, child);
        op.open(&ctx);
        let mut n = 0;
        while op.next(&ctx).is_some() {
            n += 1;
        }
        assert_eq!(n, 2); // rows pass through, including the null-key row
        assert!(ctx.bitmap_may_contain(BitmapId(0), &[Value::Int(5)]));
        assert!(!ctx.bitmap_may_contain(BitmapId(0), &[Value::Int(6)]));
        op.close(&ctx);
    }
}
