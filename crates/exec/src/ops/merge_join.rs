//! Merge join over key-sorted inputs.
//!
//! Both children must deliver rows ascending in their join keys (guaranteed
//! by the planner: merge joins are placed over index scans or sorts).
//! Duplicate right-side key groups are buffered so each matching left row
//! joins the whole group.

use super::{concat_rows, key_has_null, key_of, null_row, BoxedOperator, Operator};
use crate::context::ExecContext;
use lqs_plan::{JoinKind, NodeId};
use lqs_storage::{Row, Value};
use std::cmp::Ordering;

pub struct MergeJoinOp {
    id: NodeId,
    kind: JoinKind,
    left_keys: Vec<usize>,
    right_keys: Vec<usize>,
    left_arity: usize,
    right_arity: usize,
    left: BoxedOperator,
    right: BoxedOperator,
    cur_left: Option<Row>,
    left_done: bool,
    /// Buffered right rows sharing `group_key`.
    group: Vec<Row>,
    group_key: Option<Vec<Value>>,
    group_matched: bool,
    /// Lookahead right row not yet in a group.
    right_peek: Option<Row>,
    right_done: bool,
    emit_idx: usize,
    /// Whether the current left row already matched the current group.
    started: bool,
    done: bool,
}

impl MergeJoinOp {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        id: NodeId,
        kind: JoinKind,
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
        left_arity: usize,
        right_arity: usize,
        left: BoxedOperator,
        right: BoxedOperator,
    ) -> Self {
        MergeJoinOp {
            id,
            kind,
            left_keys,
            right_keys,
            left_arity,
            right_arity,
            left,
            right,
            cur_left: None,
            left_done: false,
            group: Vec::new(),
            group_key: None,
            group_matched: false,
            right_peek: None,
            right_done: false,
            emit_idx: 0,
            started: false,
            done: false,
        }
    }

    fn pull_left(&mut self, ctx: &ExecContext) {
        match self.left.next(ctx) {
            Some(r) => {
                ctx.count_input(self.id, 1);
                ctx.charge_cpu(self.id, ctx.cost.merge_row_ns);
                self.cur_left = Some(r);
            }
            None => {
                self.cur_left = None;
                self.left_done = true;
            }
        }
    }

    fn pull_right(&mut self, ctx: &ExecContext) -> Option<Row> {
        if let Some(r) = self.right_peek.take() {
            return Some(r);
        }
        if self.right_done {
            return None;
        }
        match self.right.next(ctx) {
            Some(r) => {
                ctx.count_input(self.id, 1);
                ctx.charge_cpu(self.id, ctx.cost.merge_row_ns);
                Some(r)
            }
            None => {
                self.right_done = true;
                None
            }
        }
    }

    /// Load the next right-side group (consecutive equal keys) into
    /// `self.group`. Returns false when the right side is exhausted.
    fn load_group(&mut self, ctx: &ExecContext) -> bool {
        self.group.clear();
        self.group_matched = false;
        let Some(first) = self.pull_right(ctx) else {
            self.group_key = None;
            return false;
        };
        let key = key_of(&first, &self.right_keys);
        self.group.push(first);
        while let Some(next) = self.pull_right(ctx) {
            if key_of(&next, &self.right_keys) == key {
                self.group.push(next);
            } else {
                self.right_peek = Some(next);
                break;
            }
        }
        self.group_key = Some(key);
        true
    }

    fn left_key(&self) -> Vec<Value> {
        key_of(
            self.cur_left.as_ref().expect("cur_left set"),
            &self.left_keys,
        )
    }

    /// Handle a left row with no matching right group.
    fn left_unmatched(&mut self, ctx: &ExecContext) -> Option<Row> {
        let left = self.cur_left.take().expect("left row present");
        match self.kind {
            JoinKind::LeftOuter | JoinKind::FullOuter => {
                ctx.count_output(self.id);
                Some(concat_rows(&left, &null_row(self.right_arity)))
            }
            JoinKind::LeftAnti => {
                ctx.count_output(self.id);
                Some(left)
            }
            _ => None,
        }
    }

    /// Handle a right group with no matching left row (FullOuter only).
    fn group_unmatched(&mut self, ctx: &ExecContext) -> Option<Row> {
        if self.kind == JoinKind::FullOuter
            && !self.group_matched
            && self.emit_idx < self.group.len()
        {
            let r = self.group[self.emit_idx].clone();
            self.emit_idx += 1;
            ctx.count_output(self.id);
            return Some(concat_rows(&null_row(self.left_arity), &r));
        }
        None
    }
}

impl Operator for MergeJoinOp {
    fn open(&mut self, ctx: &ExecContext) {
        ctx.mark_open(self.id);
        self.left.open(ctx);
        self.right.open(ctx);
    }

    fn next(&mut self, ctx: &ExecContext) -> Option<Row> {
        if self.done {
            return None;
        }
        loop {
            // Emit remaining cross-product rows for the current match.
            if self.started {
                if let Some(left) = &self.cur_left {
                    if self.emit_idx < self.group.len() {
                        let out = concat_rows(left, &self.group[self.emit_idx]);
                        self.emit_idx += 1;
                        ctx.count_output(self.id);
                        return Some(out);
                    }
                }
                // Current left row finished with this group.
                self.started = false;
                self.cur_left = None;
            }
            if self.cur_left.is_none() && !self.left_done {
                self.pull_left(ctx);
            }
            if self.cur_left.is_none() {
                // Left exhausted: FullOuter drains remaining right rows.
                if self.kind == JoinKind::FullOuter {
                    if !self.group_matched {
                        if let Some(r) = self.group_unmatched(ctx) {
                            return Some(r);
                        }
                    }
                    if self.load_group(ctx) {
                        self.emit_idx = 0;
                        continue;
                    }
                }
                self.done = true;
                ctx.mark_close(self.id);
                return None;
            }
            let lkey = self.left_key();
            if key_has_null(&lkey) {
                if let Some(r) = self.left_unmatched(ctx) {
                    return Some(r);
                }
                continue;
            }
            // Ensure we have a group at or above lkey.
            loop {
                match &self.group_key {
                    None => {
                        if !self.load_group(ctx) {
                            break; // right exhausted
                        }
                        self.emit_idx = 0;
                    }
                    Some(gk) if key_has_null(gk) || gk < &lkey => {
                        // Advance past this group; FullOuter emits it first.
                        if self.kind == JoinKind::FullOuter && !self.group_matched {
                            if let Some(r) = self.group_unmatched(ctx) {
                                return Some(r);
                            }
                        }
                        if !self.load_group(ctx) {
                            break;
                        }
                        self.emit_idx = 0;
                    }
                    Some(_) => break,
                }
            }
            match &self.group_key {
                Some(gk) if gk.cmp(&lkey) == Ordering::Equal => {
                    self.group_matched = true;
                    match self.kind {
                        JoinKind::LeftSemi => {
                            let left = self.cur_left.take().expect("left present");
                            ctx.count_output(self.id);
                            return Some(left);
                        }
                        JoinKind::LeftAnti => {
                            self.cur_left = None;
                        }
                        _ => {
                            self.started = true;
                            self.emit_idx = 0;
                        }
                    }
                }
                _ => {
                    // No group matches this left row (right ahead/exhausted).
                    if let Some(r) = self.left_unmatched(ctx) {
                        return Some(r);
                    }
                }
            }
        }
    }

    fn close(&mut self, ctx: &ExecContext) {
        self.left.close(ctx);
        self.right.close(ctx);
        ctx.mark_close(self.id);
    }

    fn rewind(&mut self, ctx: &ExecContext) {
        ctx.mark_open(self.id);
        self.left.rewind(ctx);
        self.right.rewind(ctx);
        self.cur_left = None;
        self.left_done = false;
        self.group.clear();
        self.group_key = None;
        self.group_matched = false;
        self.right_peek = None;
        self.right_done = false;
        self.emit_idx = 0;
        self.started = false;
        self.done = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::scan::ConstantScanOp;
    use lqs_plan::CostModel;
    use lqs_storage::Database;

    fn rows(v: &[(i64, i64)]) -> Vec<Vec<Value>> {
        v.iter()
            .map(|&(a, b)| vec![Value::Int(a), Value::Int(b)])
            .collect()
    }

    fn run_join(kind: JoinKind, left: Vec<Vec<Value>>, right: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
        let db = Database::new();
        let ctx = ExecContext::new(&db, 3, 0, u64::MAX, CostModel::default());
        let l = Box::new(ConstantScanOp::new(NodeId(0), left));
        let r = Box::new(ConstantScanOp::new(NodeId(1), right));
        let mut j = MergeJoinOp::new(NodeId(2), kind, vec![0], vec![0], 2, 2, l, r);
        j.open(&ctx);
        let mut out = Vec::new();
        while let Some(row) = j.next(&ctx) {
            out.push(row.to_vec());
        }
        j.close(&ctx);
        out
    }

    #[test]
    fn inner_merge_with_duplicates() {
        let out = run_join(
            JoinKind::Inner,
            rows(&[(1, 0), (2, 0), (2, 1), (4, 0)]),
            rows(&[(2, 10), (2, 11), (3, 12)]),
        );
        // Left rows (2,0) and (2,1) each join right group {(2,10),(2,11)}.
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|r| r[0] == Value::Int(2)));
    }

    #[test]
    fn left_outer_merge() {
        let out = run_join(
            JoinKind::LeftOuter,
            rows(&[(1, 0), (2, 0)]),
            rows(&[(2, 10)]),
        );
        assert_eq!(out.len(), 2);
        assert_eq!(
            out[0],
            vec![Value::Int(1), Value::Int(0), Value::Null, Value::Null]
        );
        assert_eq!(out[1][2], Value::Int(2));
    }

    #[test]
    fn semi_anti_merge() {
        let semi = run_join(
            JoinKind::LeftSemi,
            rows(&[(1, 0), (2, 0), (3, 0)]),
            rows(&[(2, 10), (2, 11)]),
        );
        assert_eq!(semi, vec![vec![Value::Int(2), Value::Int(0)]]);
        let anti = run_join(
            JoinKind::LeftAnti,
            rows(&[(1, 0), (2, 0), (3, 0)]),
            rows(&[(2, 10)]),
        );
        assert_eq!(anti.len(), 2);
        assert_eq!(anti[0][0], Value::Int(1));
        assert_eq!(anti[1][0], Value::Int(3));
    }

    #[test]
    fn full_outer_merge() {
        let out = run_join(
            JoinKind::FullOuter,
            rows(&[(1, 0), (3, 0)]),
            rows(&[(2, 10), (3, 11), (5, 12)]),
        );
        // 1 left-only, 2 right-only, 3 match, 5 right-only.
        assert_eq!(out.len(), 4);
        let left_only = out.iter().filter(|r| r[2] == Value::Null).count();
        let right_only = out.iter().filter(|r| r[0] == Value::Null).count();
        assert_eq!(left_only, 1);
        assert_eq!(right_only, 2);
    }

    #[test]
    fn null_keys_do_not_join() {
        let left = vec![
            vec![Value::Null, Value::Int(0)],
            vec![Value::Int(1), Value::Int(0)],
        ];
        let right = vec![
            vec![Value::Null, Value::Int(9)],
            vec![Value::Int(1), Value::Int(9)],
        ];
        let out = run_join(JoinKind::Inner, left, right);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0][0], Value::Int(1));
    }

    #[test]
    fn empty_sides() {
        assert!(run_join(JoinKind::Inner, vec![], rows(&[(1, 0)])).is_empty());
        assert!(run_join(JoinKind::Inner, rows(&[(1, 0)]), vec![]).is_empty());
        let out = run_join(JoinKind::LeftOuter, rows(&[(1, 0)]), vec![]);
        assert_eq!(out.len(), 1);
    }
}
