//! Scan operators: heap table scan, ordered index scan, batch-mode
//! columnstore scan, and constant scan.

use super::{key_of, Operator, RowBatch};
use crate::context::ExecContext;
use crate::pred::CompiledPredicate;
use lqs_plan::{BitmapProbe, CmpOp, Expr, IndexOutput, NodeId};
use lqs_storage::{ColumnstoreId, IndexId, Row, RowId, TableId, Value};

/// Full heap scan. Charges one logical read per page crossed and per-row
/// CPU; when a predicate and/or bitmap probe is attached, it is evaluated
/// against every stored row but only qualifying rows are emitted — the
/// storage-engine-pushdown behaviour of §4.3.
pub struct TableScanOp {
    id: NodeId,
    table: TableId,
    predicate: Option<Expr>,
    /// Specialized form of `predicate` for the batch loop (same results).
    compiled: Option<CompiledPredicate>,
    bitmap: Option<BitmapProbe>,
    pos: RowId,
    last_page: Option<usize>,
    done: bool,
}

impl TableScanOp {
    pub(crate) fn new(
        id: NodeId,
        table: TableId,
        predicate: Option<Expr>,
        bitmap: Option<BitmapProbe>,
    ) -> Self {
        TableScanOp {
            id,
            table,
            compiled: predicate.as_ref().map(CompiledPredicate::compile),
            predicate,
            bitmap,
            pos: 0,
            last_page: None,
            done: false,
        }
    }
}

impl Operator for TableScanOp {
    fn open(&mut self, ctx: &ExecContext) {
        ctx.mark_open(self.id);
    }

    fn next(&mut self, ctx: &ExecContext) -> Option<Row> {
        if self.done {
            return None;
        }
        let table = ctx.db.table(self.table);
        loop {
            if self.pos >= table.row_count() {
                self.done = true;
                ctx.mark_close(self.id);
                return None;
            }
            let rid = self.pos;
            self.pos += 1;
            let page = table.page_of(rid);
            if self.last_page != Some(page) {
                self.last_page = Some(page);
                ctx.charge_io(self.id, 1);
            }
            let preds = self.predicate.is_some() as u8 as f64;
            ctx.charge_cpu(self.id, ctx.cost.scan_row_ns + preds * ctx.cost.pred_row_ns);
            let row = table.row(rid);
            if let Some(p) = &self.predicate {
                if !p.matches(row) {
                    continue;
                }
            }
            if let Some(bp) = &self.bitmap {
                let key = key_of(row, &bp.key_columns);
                if !ctx.bitmap_may_contain(bp.bitmap, &key) {
                    continue;
                }
            }
            ctx.count_output(self.id);
            return Some(row.clone());
        }
    }

    fn next_batch(&mut self, ctx: &ExecContext, out: &mut RowBatch, limit: usize) -> bool {
        if self.done {
            return false;
        }
        if limit == 0 {
            return true;
        }
        let table = ctx.db.table(self.table);
        let preds = self.predicate.is_some() as u8 as f64;
        let row_cpu = ctx.cost.scan_row_ns + preds * ctx.cost.pred_row_ns;
        let mut appended = 0usize;
        let mut scope = ctx.batch_charge(self.id);
        while appended < limit {
            if self.pos >= table.row_count() {
                if appended == 0 {
                    scope.finish();
                    self.done = true;
                    ctx.mark_close(self.id);
                    return false;
                }
                break;
            }
            let rid = self.pos;
            self.pos += 1;
            let page = table.page_of(rid);
            if self.last_page != Some(page) {
                self.last_page = Some(page);
                scope.io(1);
            }
            scope.cpu(row_cpu);
            let row = table.row(rid);
            if let Some(p) = &self.compiled {
                if !p.matches(row) {
                    continue;
                }
            }
            if let Some(bp) = &self.bitmap {
                let key = key_of(row, &bp.key_columns);
                if !ctx.bitmap_may_contain(bp.bitmap, &key) {
                    continue;
                }
            }
            out.push(row.clone());
            appended += 1;
        }
        scope.finish();
        ctx.count_output_batch(self.id, appended as u64);
        true
    }

    fn close(&mut self, ctx: &ExecContext) {
        ctx.mark_close(self.id);
    }

    fn rewind(&mut self, ctx: &ExecContext) {
        ctx.mark_open(self.id);
        self.pos = 0;
        self.last_page = None;
        self.done = false;
    }
}

/// Ordered scan of a B+tree index, charging one logical read per leaf node
/// visited. Emits either full base rows or `(key..., rid)`.
pub struct IndexScanOp {
    id: NodeId,
    index: IndexId,
    predicate: Option<Expr>,
    /// Specialized form of `predicate` for the batch loop (same results).
    compiled: Option<CompiledPredicate>,
    bitmap: Option<BitmapProbe>,
    output: IndexOutput,
    /// Materialized `(leaf_ordinal, rid)` in key order (lazily filled).
    entries: Option<Vec<(usize, RowId)>>,
    pos: usize,
    last_leaf: Option<usize>,
    done: bool,
}

impl IndexScanOp {
    pub(crate) fn new(
        id: NodeId,
        index: IndexId,
        predicate: Option<Expr>,
        bitmap: Option<BitmapProbe>,
        output: IndexOutput,
    ) -> Self {
        IndexScanOp {
            id,
            index,
            compiled: predicate.as_ref().map(CompiledPredicate::compile),
            predicate,
            bitmap,
            output,
            entries: None,
            pos: 0,
            last_leaf: None,
            done: false,
        }
    }

    fn emit_row(&self, ctx: &ExecContext, rid: RowId) -> Row {
        let table_id = ctx.db.btree_table(self.index);
        let base = ctx.db.table(table_id).row(rid);
        match self.output {
            IndexOutput::BaseRow => base.clone(),
            IndexOutput::KeyAndRid => {
                let ix = ctx.db.btree(self.index);
                let mut out: Vec<Value> =
                    ix.key_columns().iter().map(|&c| base[c].clone()).collect();
                out.push(Value::Int(rid as i64));
                out.into()
            }
        }
    }
}

impl Operator for IndexScanOp {
    fn open(&mut self, ctx: &ExecContext) {
        ctx.mark_open(self.id);
    }

    fn next(&mut self, ctx: &ExecContext) -> Option<Row> {
        if self.done {
            return None;
        }
        if self.entries.is_none() {
            self.entries = Some(
                ctx.db
                    .btree(self.index)
                    .scan()
                    .map(|(leaf, _, rid)| (leaf, rid))
                    .collect(),
            );
        }
        let table_id = ctx.db.btree_table(self.index);
        loop {
            let entries = self.entries.as_ref().expect("filled above");
            if self.pos >= entries.len() {
                self.done = true;
                ctx.mark_close(self.id);
                return None;
            }
            let (leaf, rid) = entries[self.pos];
            self.pos += 1;
            if self.last_leaf != Some(leaf) {
                self.last_leaf = Some(leaf);
                ctx.charge_io(self.id, 1);
            }
            let preds = self.predicate.is_some() as u8 as f64;
            ctx.charge_cpu(self.id, ctx.cost.scan_row_ns + preds * ctx.cost.pred_row_ns);
            let base = ctx.db.table(table_id).row(rid).clone();
            if let Some(p) = &self.predicate {
                if !p.matches(&base) {
                    continue;
                }
            }
            if let Some(bp) = &self.bitmap {
                // Probe keys are ordinals in this scan's *output*; for
                // KeyAndRid output they reference the key+rid layout.
                let out = self.emit_row(ctx, rid);
                let key = key_of(&out, &bp.key_columns);
                if !ctx.bitmap_may_contain(bp.bitmap, &key) {
                    continue;
                }
                ctx.count_output(self.id);
                return Some(out);
            }
            ctx.count_output(self.id);
            return Some(self.emit_row(ctx, rid));
        }
    }

    fn next_batch(&mut self, ctx: &ExecContext, out: &mut RowBatch, limit: usize) -> bool {
        if self.done {
            return false;
        }
        if limit == 0 {
            return true;
        }
        if self.entries.is_none() {
            self.entries = Some(
                ctx.db
                    .btree(self.index)
                    .scan()
                    .map(|(leaf, _, rid)| (leaf, rid))
                    .collect(),
            );
        }
        let table_id = ctx.db.btree_table(self.index);
        let preds = self.predicate.is_some() as u8 as f64;
        let row_cpu = ctx.cost.scan_row_ns + preds * ctx.cost.pred_row_ns;
        let mut appended = 0usize;
        let mut scope = ctx.batch_charge(self.id);
        while appended < limit {
            let entries = self.entries.as_ref().expect("filled above");
            if self.pos >= entries.len() {
                if appended == 0 {
                    scope.finish();
                    self.done = true;
                    ctx.mark_close(self.id);
                    return false;
                }
                break;
            }
            let (leaf, rid) = entries[self.pos];
            self.pos += 1;
            if self.last_leaf != Some(leaf) {
                self.last_leaf = Some(leaf);
                scope.io(1);
            }
            scope.cpu(row_cpu);
            let base = ctx.db.table(table_id).row(rid);
            if let Some(p) = &self.compiled {
                if !p.matches(base) {
                    continue;
                }
            }
            let out_row = self.emit_row(ctx, rid);
            if let Some(bp) = &self.bitmap {
                let key = key_of(&out_row, &bp.key_columns);
                if !ctx.bitmap_may_contain(bp.bitmap, &key) {
                    continue;
                }
            }
            out.push(out_row);
            appended += 1;
        }
        scope.finish();
        ctx.count_output_batch(self.id, appended as u64);
        true
    }

    fn close(&mut self, ctx: &ExecContext) {
        ctx.mark_close(self.id);
    }

    fn rewind(&mut self, ctx: &ExecContext) {
        ctx.mark_open(self.id);
        self.pos = 0;
        self.last_leaf = None;
        self.done = false;
    }
}

/// Batch-mode columnstore scan (§4.7): processes a whole segment at a time,
/// charging batch-rate CPU and segment I/O up front and then emitting the
/// segment's qualifying rows. Progress for this operator is tracked in
/// *segments processed*, not GetNext calls.
pub struct ColumnstoreScanOp {
    id: NodeId,
    columnstore: ColumnstoreId,
    predicate: Option<Expr>,
    bitmap: Option<BitmapProbe>,
    seg: usize,
    pending: Vec<Row>,
    pending_pos: usize,
    done: bool,
}

impl ColumnstoreScanOp {
    pub(crate) fn new(
        id: NodeId,
        columnstore: ColumnstoreId,
        predicate: Option<Expr>,
        bitmap: Option<BitmapProbe>,
    ) -> Self {
        ColumnstoreScanOp {
            id,
            columnstore,
            predicate,
            bitmap,
            seg: 0,
            pending: Vec::new(),
            pending_pos: 0,
            done: false,
        }
    }

    /// Extract simple `[lo, hi]` bounds per column from a conjunctive
    /// predicate, for segment elimination.
    fn range_bounds(&self) -> Vec<(usize, Option<Value>, Option<Value>)> {
        let mut out = Vec::new();
        let Some(pred) = &self.predicate else {
            return out;
        };
        let conjuncts: Vec<&Expr> = match pred {
            Expr::And(parts) => parts.iter().collect(),
            other => vec![other],
        };
        for c in conjuncts {
            if let Expr::Cmp { op, lhs, rhs } = c {
                if let (Expr::Col(col), Expr::Lit(v)) = (lhs.as_ref(), rhs.as_ref()) {
                    match op {
                        CmpOp::Eq => out.push((*col, Some(v.clone()), Some(v.clone()))),
                        CmpOp::Lt | CmpOp::Le => out.push((*col, None, Some(v.clone()))),
                        CmpOp::Gt | CmpOp::Ge => out.push((*col, Some(v.clone()), None)),
                        CmpOp::Ne => {}
                    }
                }
            }
        }
        out
    }

    /// Load the next segment into `pending`. Returns false when exhausted.
    fn load_segment(&mut self, ctx: &ExecContext) -> bool {
        let cs = ctx.db.columnstore(self.columnstore);
        let bounds = self.range_bounds();
        loop {
            if self.seg >= cs.segment_count() {
                return false;
            }
            let seg = &cs.segments()[self.seg];
            self.seg += 1;
            // Segment elimination from min/max metadata.
            let eliminated = bounds
                .iter()
                .any(|(col, lo, hi)| !seg.may_match_range(*col, lo.as_ref(), hi.as_ref()));
            if eliminated {
                // Metadata-only: the segment counts as processed but costs
                // almost nothing.
                ctx.charge_cpu(self.id, 100.0);
                ctx.count_segment(self.id);
                continue;
            }
            ctx.charge_io(self.id, ctx.cost.segment_io_pages as u64);
            ctx.charge_cpu(self.id, seg.row_count as f64 * ctx.cost.batch_row_ns);
            self.pending.clear();
            self.pending_pos = 0;
            for off in 0..seg.row_count {
                let row = seg.row(off);
                if let Some(p) = &self.predicate {
                    if !p.matches(&row) {
                        continue;
                    }
                }
                if let Some(bp) = &self.bitmap {
                    let key = key_of(&row, &bp.key_columns);
                    if !ctx.bitmap_may_contain(bp.bitmap, &key) {
                        continue;
                    }
                }
                self.pending.push(row);
            }
            ctx.count_segment(self.id);
            if !self.pending.is_empty() {
                return true;
            }
        }
    }
}

impl Operator for ColumnstoreScanOp {
    fn open(&mut self, ctx: &ExecContext) {
        ctx.mark_open(self.id);
    }

    fn next(&mut self, ctx: &ExecContext) -> Option<Row> {
        if self.done {
            return None;
        }
        loop {
            if self.pending_pos < self.pending.len() {
                let row = self.pending[self.pending_pos].clone();
                self.pending_pos += 1;
                ctx.count_output(self.id);
                return Some(row);
            }
            if !self.load_segment(ctx) {
                self.done = true;
                ctx.mark_close(self.id);
                return None;
            }
        }
    }

    fn next_batch(&mut self, ctx: &ExecContext, out: &mut RowBatch, limit: usize) -> bool {
        if self.done {
            return false;
        }
        if limit == 0 {
            return true;
        }
        loop {
            let avail = self.pending.len() - self.pending_pos;
            if avail > 0 {
                let n = avail.min(limit);
                for _ in 0..n {
                    out.push(self.pending[self.pending_pos].clone());
                    self.pending_pos += 1;
                }
                ctx.count_output_batch(self.id, n as u64);
                return true;
            }
            if !self.load_segment(ctx) {
                self.done = true;
                ctx.mark_close(self.id);
                return false;
            }
        }
    }

    fn close(&mut self, ctx: &ExecContext) {
        ctx.mark_close(self.id);
    }

    fn rewind(&mut self, ctx: &ExecContext) {
        ctx.mark_open(self.id);
        self.seg = 0;
        self.pending.clear();
        self.pending_pos = 0;
        self.done = false;
    }
}

/// In-plan constant rows.
pub struct ConstantScanOp {
    id: NodeId,
    rows: Vec<Vec<Value>>,
    pos: usize,
    done: bool,
}

impl ConstantScanOp {
    pub(crate) fn new(id: NodeId, rows: Vec<Vec<Value>>) -> Self {
        ConstantScanOp {
            id,
            rows,
            pos: 0,
            done: false,
        }
    }
}

impl Operator for ConstantScanOp {
    fn open(&mut self, ctx: &ExecContext) {
        ctx.mark_open(self.id);
    }

    fn next(&mut self, ctx: &ExecContext) -> Option<Row> {
        if self.done || self.pos >= self.rows.len() {
            if !self.done {
                self.done = true;
                ctx.mark_close(self.id);
            }
            return None;
        }
        let row: Row = self.rows[self.pos].clone().into();
        self.pos += 1;
        ctx.charge_cpu(self.id, 2.0);
        ctx.count_output(self.id);
        Some(row)
    }

    fn next_batch(&mut self, ctx: &ExecContext, out: &mut RowBatch, limit: usize) -> bool {
        if self.done {
            return false;
        }
        if limit == 0 {
            return true;
        }
        let n = (self.rows.len() - self.pos).min(limit);
        if n == 0 {
            self.done = true;
            ctx.mark_close(self.id);
            return false;
        }
        let mut scope = ctx.batch_charge(self.id);
        for _ in 0..n {
            scope.cpu(2.0);
            out.push(self.rows[self.pos].clone().into());
            self.pos += 1;
        }
        scope.finish();
        ctx.count_output_batch(self.id, n as u64);
        true
    }

    fn close(&mut self, ctx: &ExecContext) {
        ctx.mark_close(self.id);
    }

    fn rewind(&mut self, ctx: &ExecContext) {
        ctx.mark_open(self.id);
        self.pos = 0;
        self.done = false;
    }
}
