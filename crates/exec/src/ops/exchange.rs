//! The Parallelism (exchange) operator.
//!
//! The simulator is single-threaded, but real exchanges decouple producer
//! and consumer threads: producers race ahead, filling packet buffers, while
//! the consumer drains at its own pace. We reproduce the *counter shape*
//! that matters to progress estimation (Figures 7–8: the exchange's `k`
//! lagging its child's `k` by large, slowly converging ratios) by
//! prefetching a large initial block on first demand and `degree` child rows
//! per `next()` thereafter.

use super::sort::CONSUME_BATCH;
use super::{BoxedOperator, Operator, RowBatch};
use crate::context::ExecContext;
use lqs_plan::{ExchangeKind, NodeId};
use lqs_storage::Row;
use std::collections::VecDeque;

/// Rows prefetched per degree of parallelism on first demand (models the
/// initial packet fill by `degree` producer threads).
pub const INITIAL_FILL_PER_DOP: usize = 256;

/// Maximum buffered rows per degree of parallelism: producers block when the
/// packet buffers are full, so the child's counter lead is bounded.
pub const MAX_BUFFER_PER_DOP: usize = 512;

pub struct ExchangeOp {
    id: NodeId,
    #[allow(dead_code)]
    kind: ExchangeKind,
    degree: usize,
    batch: bool,
    child: BoxedOperator,
    queue: VecDeque<Row>,
    started: bool,
    child_done: bool,
    done: bool,
}

impl ExchangeOp {
    pub(crate) fn new(
        id: NodeId,
        kind: ExchangeKind,
        degree: usize,
        batch: bool,
        child: BoxedOperator,
    ) -> Self {
        ExchangeOp {
            id,
            kind,
            degree: degree.max(1),
            batch,
            child,
            queue: VecDeque::new(),
            started: false,
            child_done: false,
            done: false,
        }
    }

    fn pull(&mut self, ctx: &ExecContext, n: usize) {
        let cap = MAX_BUFFER_PER_DOP * self.degree;
        if ctx.batch_path_ok() {
            // Producers fill in chunks; the pull never charges CPU, so the
            // child's counters and close time match the per-tuple loop
            // exactly.
            let mut remaining = n.min(cap.saturating_sub(self.queue.len()));
            let mut scratch = RowBatch::with_capacity(remaining.min(CONSUME_BATCH));
            while remaining > 0 && !self.child_done {
                let want = remaining.min(CONSUME_BATCH);
                scratch.clear();
                if !self.child.next_batch(ctx, &mut scratch, want) {
                    self.child_done = true;
                    break;
                }
                let got = scratch.len();
                ctx.count_input(self.id, got as u64);
                while let Some(row) = scratch.pop_front() {
                    self.queue.push_back(row);
                }
                remaining -= got;
            }
        } else {
            for _ in 0..n {
                if self.child_done || self.queue.len() >= cap {
                    break;
                }
                match self.child.next(ctx) {
                    Some(r) => {
                        ctx.count_input(self.id, 1);
                        self.queue.push_back(r);
                    }
                    None => self.child_done = true,
                }
            }
        }
        ctx.set_buffered(self.id, self.queue.len() as u64);
    }
}

impl Operator for ExchangeOp {
    fn open(&mut self, ctx: &ExecContext) {
        ctx.mark_open(self.id);
        self.child.open(ctx);
    }

    fn next(&mut self, ctx: &ExecContext) -> Option<Row> {
        if self.done {
            return None;
        }
        if !self.started {
            self.started = true;
            self.pull(ctx, INITIAL_FILL_PER_DOP * self.degree);
        } else {
            self.pull(ctx, self.degree);
        }
        let Some(row) = self.queue.pop_front() else {
            self.done = true;
            ctx.mark_close(self.id);
            return None;
        };
        ctx.set_buffered(self.id, self.queue.len() as u64);
        let factor = if self.batch { 0.3 } else { 1.0 };
        ctx.charge_cpu(self.id, ctx.cost.exchange_row_ns * factor);
        ctx.count_output(self.id);
        Some(row)
    }

    fn close(&mut self, ctx: &ExecContext) {
        self.child.close(ctx);
        ctx.mark_close(self.id);
    }

    fn rewind(&mut self, ctx: &ExecContext) {
        ctx.mark_open(self.id);
        self.child.rewind(ctx);
        self.queue.clear();
        // The gauge must follow the queue: a rebind that discards buffered
        // rows would otherwise leave a phantom `rows_buffered` in every
        // snapshot until the next pull.
        ctx.set_buffered(self.id, 0);
        self.started = false;
        self.child_done = false;
        self.done = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::scan::ConstantScanOp;
    use lqs_plan::CostModel;
    use lqs_storage::{Database, Value};

    fn make(degree: usize, n: i64) -> (Database, Vec<Vec<Value>>, usize) {
        let db = Database::new();
        let rows: Vec<Vec<Value>> = (0..n).map(|v| vec![Value::Int(v)]).collect();
        (db, rows, degree)
    }

    #[test]
    fn passes_all_rows_in_order() {
        let (db, rows, degree) = make(4, 100);
        let ctx = ExecContext::new(&db, 2, 0, u64::MAX, CostModel::default());
        let child = Box::new(ConstantScanOp::new(NodeId(0), rows));
        let mut ex = ExchangeOp::new(NodeId(1), ExchangeKind::GatherStreams, degree, false, child);
        ex.open(&ctx);
        let mut count = 0i64;
        while let Some(r) = ex.next(&ctx) {
            assert_eq!(r[0], Value::Int(count));
            count += 1;
        }
        assert_eq!(count, 100);
        ex.close(&ctx);
    }

    #[test]
    fn rewind_resets_buffered_gauge() {
        // Regression: rewind cleared the queue but left the gauge, so a
        // nested-loops rebind reported phantom buffered rows to the §4.4
        // semi-blocking adjustments until the next pull.
        let (db, rows, degree) = make(4, 5000);
        let ctx = ExecContext::new(&db, 2, 0, u64::MAX, CostModel::default());
        let child = Box::new(ConstantScanOp::new(NodeId(0), rows));
        let mut ex = ExchangeOp::new(NodeId(1), ExchangeKind::GatherStreams, degree, false, child);
        ex.open(&ctx);
        let _ = ex.next(&ctx);
        assert!(ctx.counters_of(NodeId(1)).rows_buffered > 0);
        ex.rewind(&ctx);
        assert_eq!(ctx.counters_of(NodeId(1)).rows_buffered, 0);
        ex.close(&ctx);
    }

    #[test]
    fn rewind_mid_batch_resets_queue_and_gauge() {
        // Batched path: the queue is filled by the vectorized pull; a rewind
        // with rows still queued must discard them, zero the gauge, and
        // restart the child from the top.
        let (db, rows, degree) = make(4, 3000);
        let ctx = ExecContext::new(&db, 2, 0, u64::MAX, CostModel::default());
        let child = Box::new(ConstantScanOp::new(NodeId(0), rows));
        let mut ex = ExchangeOp::new(NodeId(1), ExchangeKind::GatherStreams, degree, false, child);
        ex.open(&ctx);
        let mut batch = RowBatch::default();
        assert!(ex.next_batch(&ctx, &mut batch, 16));
        assert!(ctx.counters_of(NodeId(1)).rows_buffered > 0);
        ex.rewind(&ctx);
        assert_eq!(ctx.counters_of(NodeId(1)).rows_buffered, 0);
        batch.clear();
        let mut seen = 0i64;
        loop {
            batch.clear();
            if !ex.next_batch(&ctx, &mut batch, 256) {
                break;
            }
            for r in &batch {
                assert_eq!(r[0], Value::Int(seen));
                seen += 1;
            }
        }
        assert_eq!(seen, 3000);
        ex.close(&ctx);
    }

    #[test]
    fn child_counter_races_ahead() {
        let (db, rows, degree) = make(4, 10_000);
        let ctx = ExecContext::new(&db, 2, 0, u64::MAX, CostModel::default());
        let child = Box::new(ConstantScanOp::new(NodeId(0), rows));
        let mut ex = ExchangeOp::new(NodeId(1), ExchangeKind::GatherStreams, degree, false, child);
        ex.open(&ctx);
        let _ = ex.next(&ctx);
        let child_k = ctx.counters_of(NodeId(0)).rows_output;
        let ex_k = ctx.counters_of(NodeId(1)).rows_output;
        // Large initial ratio (Figure 8's ">88x" regime).
        assert!(child_k >= 1024, "child_k={child_k}");
        assert_eq!(ex_k, 1);
        // After draining halfway, the gap narrows relative to progress.
        for _ in 0..5000 {
            let _ = ex.next(&ctx);
        }
        let child_k2 = ctx.counters_of(NodeId(0)).rows_output;
        let ex_k2 = ctx.counters_of(NodeId(1)).rows_output;
        assert!((child_k2 as f64) / (ex_k2 as f64) < 3.0);
        ex.close(&ctx);
    }
}
