//! Blocking sorts: Sort, Top N Sort, Distinct Sort.
//!
//! Sorts are the canonical fully blocking operator of the paper's §4.5: they
//! perform substantial work (consuming and ordering the input) before the
//! first row is output. The implementation charges a configurable fraction
//! of the sort CPU during the input phase and the remainder during the
//! output phase, so DMV snapshots observe the same two-phase counter shape
//! as the real engine (input rows climbing while `k = 0`, then `k` climbing).

use super::{key_of, BoxedOperator, Operator, RowBatch};
use crate::context::ExecContext;
use lqs_plan::{CostModel, NodeId, SortKey};
use lqs_storage::Row;
use std::cmp::Ordering;

/// Chunk size for internally batched blocking phases.
pub(crate) const CONSUME_BATCH: usize = 1024;

enum Phase {
    Input,
    Output,
}

/// Unified Sort / Top N Sort / Distinct Sort operator.
pub struct SortOp {
    id: NodeId,
    keys: Vec<SortKey>,
    /// `Some(n)` = Top N Sort.
    top_n: Option<usize>,
    /// Distinct Sort: drop adjacent duplicate keys after sorting.
    distinct: bool,
    child: BoxedOperator,
    buffer: Vec<Row>,
    pos: usize,
    phase: Phase,
    done: bool,
}

impl SortOp {
    pub(crate) fn new(
        id: NodeId,
        keys: Vec<SortKey>,
        top_n: Option<usize>,
        distinct: bool,
        child: BoxedOperator,
    ) -> Self {
        SortOp {
            id,
            keys,
            top_n,
            distinct,
            child,
            buffer: Vec::new(),
            pos: 0,
            phase: Phase::Input,
            done: false,
        }
    }

    fn consume_input(&mut self, ctx: &ExecContext) {
        // Per-row input cost: comparisons against the run being built. The
        // log factor uses the limit for Top N sorts (bounded heap).
        let top_n_depth = self.top_n.map(|n| CostModel::log2_rows(n as f64));
        if ctx.batch_path_ok() {
            // Blocking consume already multi-pulls within one `next()`, so
            // batching it changes no close event; charge totals are
            // order-independent, keeping the clock and final counters
            // bit-identical to the per-tuple loop.
            let mut scratch = super::RowBatch::with_capacity(CONSUME_BATCH);
            while self.child.next_batch(ctx, &mut scratch, CONSUME_BATCH) {
                ctx.count_input(self.id, scratch.len() as u64);
                let mut scope = ctx.batch_charge(self.id);
                while let Some(row) = scratch.pop_front() {
                    let depth = top_n_depth
                        .unwrap_or_else(|| CostModel::log2_rows((self.buffer.len() + 1) as f64));
                    scope.cpu(ctx.cost.sort_cmp_ns * depth * ctx.cost.sort_input_fraction);
                    self.buffer.push(row);
                }
                scope.finish();
            }
        } else {
            while let Some(row) = self.child.next(ctx) {
                ctx.count_input(self.id, 1);
                let depth = top_n_depth
                    .unwrap_or_else(|| CostModel::log2_rows((self.buffer.len() + 1) as f64));
                ctx.charge_cpu(
                    self.id,
                    ctx.cost.sort_cmp_ns * depth * ctx.cost.sort_input_fraction,
                );
                self.buffer.push(row);
            }
        }
        let keys = self.keys.clone();
        self.buffer.sort_by(|a, b| compare_rows(&keys, a, b));
        if self.distinct {
            let cols: Vec<usize> = self.keys.iter().map(|k| k.column).collect();
            self.buffer
                .dedup_by(|a, b| key_of(a, &cols) == key_of(b, &cols));
        }
        if let Some(n) = self.top_n {
            self.buffer.truncate(n);
        }
        self.phase = Phase::Output;
        self.pos = 0;
        ctx.emit_phase(self.id, "blocking", "emit");
    }
}

/// Multi-key row comparison with per-key direction.
fn compare_rows(keys: &[SortKey], a: &Row, b: &Row) -> Ordering {
    for k in keys {
        let ord = a[k.column].cmp(&b[k.column]);
        let ord = if k.descending { ord.reverse() } else { ord };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

impl Operator for SortOp {
    fn open(&mut self, ctx: &ExecContext) {
        ctx.mark_open(self.id);
        self.child.open(ctx);
    }

    fn next(&mut self, ctx: &ExecContext) -> Option<Row> {
        if self.done {
            return None;
        }
        if matches!(self.phase, Phase::Input) {
            self.consume_input(ctx);
        }
        if self.pos >= self.buffer.len() {
            self.done = true;
            ctx.mark_close(self.id);
            return None;
        }
        let row = self.buffer[self.pos].clone();
        self.pos += 1;
        let log_n = CostModel::log2_rows(self.buffer.len() as f64);
        ctx.charge_cpu(
            self.id,
            ctx.cost.sort_cmp_ns * log_n * (1.0 - ctx.cost.sort_input_fraction),
        );
        ctx.count_output(self.id);
        Some(row)
    }

    fn next_batch(&mut self, ctx: &ExecContext, out: &mut RowBatch, limit: usize) -> bool {
        if self.done {
            return false;
        }
        if limit == 0 {
            return true;
        }
        if matches!(self.phase, Phase::Input) {
            self.consume_input(ctx);
        }
        let n = (self.buffer.len() - self.pos).min(limit);
        if n == 0 {
            self.done = true;
            ctx.mark_close(self.id);
            return false;
        }
        let log_n = CostModel::log2_rows(self.buffer.len() as f64);
        let row_cpu = ctx.cost.sort_cmp_ns * log_n * (1.0 - ctx.cost.sort_input_fraction);
        let mut scope = ctx.batch_charge(self.id);
        for row in &self.buffer[self.pos..self.pos + n] {
            scope.cpu(row_cpu);
            out.push(row.clone());
        }
        scope.finish();
        self.pos += n;
        ctx.count_output_batch(self.id, n as u64);
        true
    }

    fn close(&mut self, ctx: &ExecContext) {
        self.child.close(ctx);
        ctx.mark_close(self.id);
    }

    fn rewind(&mut self, ctx: &ExecContext) {
        // Rewind = replay the sorted buffer (a rebind without correlation
        // change does not re-sort, matching the engine's rewind semantics).
        ctx.mark_open(self.id);
        if matches!(self.phase, Phase::Output) {
            self.pos = 0;
            self.done = false;
        } else {
            self.child.rewind(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExecContext;
    use crate::ops::scan::ConstantScanOp;
    use lqs_storage::{Database, Value};

    fn run_sort(keys: Vec<SortKey>, top_n: Option<usize>, distinct: bool) -> Vec<i64> {
        let db = Database::new();
        let ctx = ExecContext::new(&db, 2, 0, u64::MAX, CostModel::default());
        let rows: Vec<Vec<Value>> = [5i64, 3, 9, 3, 1, 7]
            .iter()
            .map(|&v| vec![Value::Int(v)])
            .collect();
        let child = Box::new(ConstantScanOp::new(NodeId(0), rows));
        let mut sort = SortOp::new(NodeId(1), keys, top_n, distinct, child);
        sort.open(&ctx);
        let mut out = Vec::new();
        while let Some(r) = sort.next(&ctx) {
            out.push(r[0].as_int().unwrap());
        }
        sort.close(&ctx);
        out
    }

    #[test]
    fn ascending_sort() {
        assert_eq!(
            run_sort(vec![SortKey::asc(0)], None, false),
            vec![1, 3, 3, 5, 7, 9]
        );
    }

    #[test]
    fn descending_sort() {
        assert_eq!(
            run_sort(vec![SortKey::desc(0)], None, false),
            vec![9, 7, 5, 3, 3, 1]
        );
    }

    #[test]
    fn top_n_sort() {
        assert_eq!(
            run_sort(vec![SortKey::asc(0)], Some(3), false),
            vec![1, 3, 3]
        );
    }

    #[test]
    fn distinct_sort() {
        assert_eq!(
            run_sort(vec![SortKey::asc(0)], None, true),
            vec![1, 3, 5, 7, 9]
        );
    }

    #[test]
    fn blocking_counters_two_phase() {
        let db = Database::new();
        let ctx = ExecContext::new(&db, 2, 0, u64::MAX, CostModel::default());
        let rows: Vec<Vec<Value>> = (0..100).map(|v| vec![Value::Int(v)]).collect();
        let child = Box::new(ConstantScanOp::new(NodeId(0), rows));
        let mut sort = SortOp::new(NodeId(1), vec![SortKey::asc(0)], None, false, child);
        sort.open(&ctx);
        // Before the first next(), nothing consumed.
        assert_eq!(ctx.counters_of(NodeId(1)).rows_input, 0);
        let first = sort.next(&ctx).unwrap();
        assert_eq!(first[0], Value::Int(0));
        // After the first next(), the entire input was consumed (blocking).
        let c = ctx.counters_of(NodeId(1));
        assert_eq!(c.rows_input, 100);
        assert_eq!(c.rows_output, 1);
    }
}
