//! Aggregation: Stream Aggregate (pipelined over sorted input) and Hash
//! Aggregate (fully blocking).
//!
//! The hash aggregate is the paper's running example of a blocking operator
//! whose progress is badly characterized by output rows alone (Figures
//! 10–11): it consumes (say) 10,000 rows to produce 10. Its counters are
//! therefore the ones the two-phase model of §4.5 targets — `rows_input`
//! climbs during the build while `rows_output` stays 0.

use super::sort::CONSUME_BATCH;
use super::{key_of, BoxedOperator, Operator, RowBatch};
use crate::context::ExecContext;
use lqs_plan::{AggState, Aggregate, NodeId};
use lqs_storage::{Row, Value};
use std::collections::HashMap;

fn make_states(aggs: &[Aggregate]) -> Vec<AggState> {
    aggs.iter().map(|a| AggState::new(a.func)).collect()
}

fn fold(aggs: &[Aggregate], states: &mut [AggState], row: &Row) {
    for (a, s) in aggs.iter().zip(states.iter_mut()) {
        s.update(&a.input.eval(row));
    }
}

fn finish_group(key: Vec<Value>, states: &[AggState]) -> Row {
    let mut out = key;
    out.extend(states.iter().map(AggState::finish));
    out.into()
}

/// Aggregation over sorted input; emits each group as it completes, so it is
/// pipelined (not blocking) — a group boundary releases the previous group.
pub struct StreamAggregateOp {
    id: NodeId,
    group_by: Vec<usize>,
    aggs: Vec<Aggregate>,
    child: BoxedOperator,
    current: Option<(Vec<Value>, Vec<AggState>)>,
    scratch: RowBatch,
    input_done: bool,
    emitted_scalar: bool,
    done: bool,
}

impl StreamAggregateOp {
    pub(crate) fn new(
        id: NodeId,
        group_by: Vec<usize>,
        aggs: Vec<Aggregate>,
        child: BoxedOperator,
    ) -> Self {
        StreamAggregateOp {
            id,
            group_by,
            aggs,
            child,
            current: None,
            scratch: RowBatch::default(),
            input_done: false,
            emitted_scalar: false,
            done: false,
        }
    }
}

impl Operator for StreamAggregateOp {
    fn open(&mut self, ctx: &ExecContext) {
        ctx.mark_open(self.id);
        self.child.open(ctx);
    }

    fn next(&mut self, ctx: &ExecContext) -> Option<Row> {
        if self.done {
            return None;
        }
        loop {
            if self.input_done {
                // Flush the final group; scalar aggregates emit one row even
                // over empty input.
                if let Some((key, states)) = self.current.take() {
                    ctx.count_output(self.id);
                    return Some(finish_group(key, &states));
                }
                if self.group_by.is_empty() && !self.emitted_scalar {
                    self.emitted_scalar = true;
                    ctx.count_output(self.id);
                    return Some(finish_group(Vec::new(), &make_states(&self.aggs)));
                }
                self.done = true;
                ctx.mark_close(self.id);
                return None;
            }
            match self.child.next(ctx) {
                None => {
                    self.input_done = true;
                }
                Some(row) => {
                    ctx.count_input(self.id, 1);
                    ctx.charge_cpu(
                        self.id,
                        ctx.cost.stream_agg_row_ns
                            + self.aggs.len() as f64 * ctx.cost.compute_expr_ns,
                    );
                    let key = key_of(&row, &self.group_by);
                    match &mut self.current {
                        Some((cur_key, states)) if *cur_key == key => {
                            fold(&self.aggs, states, &row);
                        }
                        Some(_) => {
                            // Group boundary: emit the finished group, start
                            // the new one.
                            let (done_key, done_states) =
                                self.current.take().expect("checked Some");
                            let mut states = make_states(&self.aggs);
                            fold(&self.aggs, &mut states, &row);
                            if self.group_by.is_empty() {
                                unreachable!("scalar aggregate has a single group");
                            }
                            self.current = Some((key, states));
                            self.emitted_scalar = true;
                            ctx.count_output(self.id);
                            return Some(finish_group(done_key, &done_states));
                        }
                        None => {
                            let mut states = make_states(&self.aggs);
                            fold(&self.aggs, &mut states, &row);
                            self.current = Some((key, states));
                            self.emitted_scalar = true;
                        }
                    }
                }
            }
        }
    }

    fn next_batch(&mut self, ctx: &ExecContext, out: &mut RowBatch, limit: usize) -> bool {
        if self.done {
            return false;
        }
        if limit == 0 {
            return true;
        }
        let row_cpu =
            ctx.cost.stream_agg_row_ns + self.aggs.len() as f64 * ctx.cost.compute_expr_ns;
        loop {
            if !self.scratch.is_empty() {
                let mut appended = 0u64;
                let mut consumed = 0u64;
                let mut scope = ctx.batch_charge(self.id);
                while (appended as usize) < limit {
                    let Some(row) = self.scratch.pop_front() else {
                        break;
                    };
                    consumed += 1;
                    scope.cpu(row_cpu);
                    let key = key_of(&row, &self.group_by);
                    match &mut self.current {
                        Some((cur_key, states)) if *cur_key == key => {
                            fold(&self.aggs, states, &row);
                        }
                        Some(_) => {
                            let (done_key, done_states) =
                                self.current.take().expect("checked Some");
                            let mut states = make_states(&self.aggs);
                            fold(&self.aggs, &mut states, &row);
                            self.current = Some((key, states));
                            self.emitted_scalar = true;
                            out.push(finish_group(done_key, &done_states));
                            appended += 1;
                        }
                        None => {
                            let mut states = make_states(&self.aggs);
                            fold(&self.aggs, &mut states, &row);
                            self.current = Some((key, states));
                            self.emitted_scalar = true;
                        }
                    }
                }
                scope.finish();
                ctx.count_input(self.id, consumed);
                if appended > 0 {
                    ctx.count_output_batch(self.id, appended);
                    return true;
                }
                continue;
            }
            if self.input_done {
                if let Some((key, states)) = self.current.take() {
                    out.push(finish_group(key, &states));
                    ctx.count_output_batch(self.id, 1);
                    return true;
                }
                if self.group_by.is_empty() && !self.emitted_scalar {
                    self.emitted_scalar = true;
                    out.push(finish_group(Vec::new(), &make_states(&self.aggs)));
                    ctx.count_output_batch(self.id, 1);
                    return true;
                }
                self.done = true;
                ctx.mark_close(self.id);
                return false;
            }
            if !self.child.next_batch(ctx, &mut self.scratch, limit) {
                self.input_done = true;
            }
        }
    }

    fn close(&mut self, ctx: &ExecContext) {
        self.child.close(ctx);
        ctx.mark_close(self.id);
    }

    fn rewind(&mut self, ctx: &ExecContext) {
        ctx.mark_open(self.id);
        self.child.rewind(ctx);
        self.current = None;
        self.scratch.clear();
        self.input_done = false;
        self.emitted_scalar = false;
        self.done = false;
    }
}

/// Blocking hash aggregation: consumes the entire input into a hash table on
/// first demand, then emits groups (sorted by key for determinism).
pub struct HashAggregateOp {
    id: NodeId,
    group_by: Vec<usize>,
    aggs: Vec<Aggregate>,
    batch: bool,
    child: BoxedOperator,
    output: Option<Vec<Row>>,
    pos: usize,
    done: bool,
}

impl HashAggregateOp {
    pub(crate) fn new(
        id: NodeId,
        group_by: Vec<usize>,
        aggs: Vec<Aggregate>,
        batch: bool,
        child: BoxedOperator,
    ) -> Self {
        HashAggregateOp {
            id,
            group_by,
            aggs,
            batch,
            child,
            output: None,
            pos: 0,
            done: false,
        }
    }

    fn build(&mut self, ctx: &ExecContext) {
        let factor = if self.batch { 0.3 } else { 1.0 };
        let row_cpu = (ctx.cost.hash_build_row_ns
            + self.aggs.len() as f64 * ctx.cost.compute_expr_ns)
            * factor;
        let mut table: HashMap<Vec<Value>, Vec<AggState>> = HashMap::new();
        if ctx.batch_path_ok() {
            let mut scratch = RowBatch::with_capacity(CONSUME_BATCH);
            while self.child.next_batch(ctx, &mut scratch, CONSUME_BATCH) {
                ctx.count_input(self.id, scratch.len() as u64);
                let mut scope = ctx.batch_charge(self.id);
                for row in scratch.iter() {
                    scope.cpu(row_cpu);
                    let key = key_of(row, &self.group_by);
                    let states = table.entry(key).or_insert_with(|| make_states(&self.aggs));
                    fold(&self.aggs, states, row);
                }
                scope.finish();
                scratch.clear();
            }
        } else {
            while let Some(row) = self.child.next(ctx) {
                ctx.count_input(self.id, 1);
                ctx.charge_cpu(self.id, row_cpu);
                let key = key_of(&row, &self.group_by);
                let states = table.entry(key).or_insert_with(|| make_states(&self.aggs));
                fold(&self.aggs, states, &row);
            }
        }
        if self.group_by.is_empty() && table.is_empty() {
            table.insert(Vec::new(), make_states(&self.aggs));
        }
        let mut groups: Vec<(Vec<Value>, Vec<AggState>)> = table.into_iter().collect();
        groups.sort_by(|a, b| a.0.cmp(&b.0));
        self.output = Some(
            groups
                .into_iter()
                .map(|(k, s)| finish_group(k, &s))
                .collect(),
        );
        self.pos = 0;
        ctx.emit_phase(self.id, "blocking", "emit");
    }
}

impl Operator for HashAggregateOp {
    fn open(&mut self, ctx: &ExecContext) {
        ctx.mark_open(self.id);
        self.child.open(ctx);
    }

    fn next(&mut self, ctx: &ExecContext) -> Option<Row> {
        if self.done {
            return None;
        }
        if self.output.is_none() {
            self.build(ctx);
        }
        let out = self.output.as_ref().expect("built above");
        if self.pos >= out.len() {
            self.done = true;
            ctx.mark_close(self.id);
            return None;
        }
        let row = out[self.pos].clone();
        self.pos += 1;
        let factor = if self.batch { 0.3 } else { 1.0 };
        ctx.charge_cpu(self.id, ctx.cost.hash_output_row_ns * factor);
        ctx.count_output(self.id);
        Some(row)
    }

    fn next_batch(&mut self, ctx: &ExecContext, out: &mut RowBatch, limit: usize) -> bool {
        if self.done {
            return false;
        }
        if limit == 0 {
            return true;
        }
        if self.output.is_none() {
            self.build(ctx);
        }
        let rows = self.output.as_ref().expect("built above");
        let n = (rows.len() - self.pos).min(limit);
        if n == 0 {
            self.done = true;
            ctx.mark_close(self.id);
            return false;
        }
        let factor = if self.batch { 0.3 } else { 1.0 };
        let row_cpu = ctx.cost.hash_output_row_ns * factor;
        let mut scope = ctx.batch_charge(self.id);
        for row in &rows[self.pos..self.pos + n] {
            scope.cpu(row_cpu);
            out.push(row.clone());
        }
        scope.finish();
        self.pos += n;
        ctx.count_output_batch(self.id, n as u64);
        true
    }

    fn close(&mut self, ctx: &ExecContext) {
        self.child.close(ctx);
        ctx.mark_close(self.id);
    }

    fn rewind(&mut self, ctx: &ExecContext) {
        // A rebind re-executes the aggregation (the input may be correlated).
        ctx.mark_open(self.id);
        self.child.rewind(ctx);
        self.output = None;
        self.pos = 0;
        self.done = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::scan::ConstantScanOp;
    use lqs_plan::{AggFunc, CostModel};
    use lqs_storage::Database;

    fn input_rows() -> Vec<Vec<Value>> {
        // (group, value): groups 0,1,2 with 3/2/1 members.
        vec![
            vec![Value::Int(0), Value::Int(10)],
            vec![Value::Int(0), Value::Int(20)],
            vec![Value::Int(0), Value::Int(30)],
            vec![Value::Int(1), Value::Int(5)],
            vec![Value::Int(1), Value::Int(7)],
            vec![Value::Int(2), Value::Int(100)],
        ]
    }

    fn run(op: &mut dyn Operator, ctx: &ExecContext) -> Vec<Vec<Value>> {
        op.open(ctx);
        let mut out = Vec::new();
        while let Some(r) = op.next(ctx) {
            out.push(r.to_vec());
        }
        op.close(ctx);
        out
    }

    #[test]
    fn hash_aggregate_groups_and_sums() {
        let db = Database::new();
        let ctx = ExecContext::new(&db, 2, 0, u64::MAX, CostModel::default());
        let child = Box::new(ConstantScanOp::new(NodeId(0), input_rows()));
        let mut agg = HashAggregateOp::new(
            NodeId(1),
            vec![0],
            vec![Aggregate::of_col(AggFunc::Sum, 1), Aggregate::count_star()],
            false,
            child,
        );
        let out = run(&mut agg, &ctx);
        assert_eq!(
            out,
            vec![
                vec![Value::Int(0), Value::Int(60), Value::Int(3)],
                vec![Value::Int(1), Value::Int(12), Value::Int(2)],
                vec![Value::Int(2), Value::Int(100), Value::Int(1)],
            ]
        );
        // Blocking shape: input fully consumed, 3 outputs.
        let c = ctx.counters_of(NodeId(1));
        assert_eq!(c.rows_input, 6);
        assert_eq!(c.rows_output, 3);
    }

    #[test]
    fn stream_aggregate_matches_hash_on_sorted_input() {
        let db = Database::new();
        let ctx = ExecContext::new(&db, 2, 0, u64::MAX, CostModel::default());
        let child = Box::new(ConstantScanOp::new(NodeId(0), input_rows()));
        let mut agg = StreamAggregateOp::new(
            NodeId(1),
            vec![0],
            vec![Aggregate::of_col(AggFunc::Min, 1)],
            child,
        );
        let out = run(&mut agg, &ctx);
        assert_eq!(
            out,
            vec![
                vec![Value::Int(0), Value::Int(10)],
                vec![Value::Int(1), Value::Int(5)],
                vec![Value::Int(2), Value::Int(100)],
            ]
        );
    }

    #[test]
    fn scalar_aggregate_over_empty_input() {
        let db = Database::new();
        for hash in [false, true] {
            let ctx = ExecContext::new(&db, 2, 0, u64::MAX, CostModel::default());
            let child = Box::new(ConstantScanOp::new(NodeId(0), vec![]));
            let out = if hash {
                let mut agg = HashAggregateOp::new(
                    NodeId(1),
                    vec![],
                    vec![Aggregate::count_star()],
                    false,
                    child,
                );
                run(&mut agg, &ctx)
            } else {
                let mut agg =
                    StreamAggregateOp::new(NodeId(1), vec![], vec![Aggregate::count_star()], child);
                run(&mut agg, &ctx)
            };
            assert_eq!(out, vec![vec![Value::Int(0)]], "hash={hash}");
        }
    }

    #[test]
    fn grouped_aggregate_over_empty_input_emits_nothing() {
        let db = Database::new();
        let ctx = ExecContext::new(&db, 2, 0, u64::MAX, CostModel::default());
        let child = Box::new(ConstantScanOp::new(NodeId(0), vec![]));
        let mut agg = HashAggregateOp::new(
            NodeId(1),
            vec![0],
            vec![Aggregate::count_star()],
            false,
            child,
        );
        assert!(run(&mut agg, &ctx).is_empty());
    }
}
