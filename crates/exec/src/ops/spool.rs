//! Table spools (eager and lazy).
//!
//! Spools materialize their input so rewinds replay the stored rows instead
//! of re-executing the child subtree. The eager spool consumes its entire
//! input on first demand (fully blocking); the lazy spool copies rows
//! through incrementally. Both charge spill I/O at a configurable
//! rows-per-page rate.

use super::sort::CONSUME_BATCH;
use super::{BoxedOperator, Operator, RowBatch};
use crate::context::ExecContext;
use lqs_plan::NodeId;
use lqs_storage::Row;

pub struct SpoolOp {
    id: NodeId,
    lazy: bool,
    child: BoxedOperator,
    buffer: Vec<Row>,
    /// Rows written since the last spill-page charge.
    write_pending: f64,
    read_pending: f64,
    pos: usize,
    /// Child rows staged during the lazy first pass (vectorized path only).
    scratch: RowBatch,
    /// True once the child is exhausted and `buffer` is complete.
    populated: bool,
    /// True when a rewind switched us to replay mode.
    replaying: bool,
    done: bool,
}

impl SpoolOp {
    pub(crate) fn new(id: NodeId, lazy: bool, child: BoxedOperator) -> Self {
        SpoolOp {
            id,
            lazy,
            child,
            buffer: Vec::new(),
            write_pending: 0.0,
            read_pending: 0.0,
            pos: 0,
            scratch: RowBatch::default(),
            populated: false,
            replaying: false,
            done: false,
        }
    }

    fn charge_write(&mut self, ctx: &ExecContext) {
        ctx.charge_cpu(self.id, ctx.cost.spool_write_row_ns);
        self.write_pending += 1.0;
        if self.write_pending >= ctx.cost.spool_rows_per_page {
            self.write_pending -= ctx.cost.spool_rows_per_page;
            ctx.charge_io(self.id, 1);
        }
    }

    fn charge_read(&mut self, ctx: &ExecContext) {
        ctx.charge_cpu(self.id, ctx.cost.spool_read_row_ns);
        self.read_pending += 1.0;
        if self.read_pending >= ctx.cost.spool_rows_per_page {
            self.read_pending -= ctx.cost.spool_rows_per_page;
            ctx.charge_io(self.id, 1);
        }
    }

    fn populate_all(&mut self, ctx: &ExecContext) {
        if ctx.batch_path_ok() {
            let mut scratch = RowBatch::with_capacity(CONSUME_BATCH);
            while self.child.next_batch(ctx, &mut scratch, CONSUME_BATCH) {
                ctx.count_input(self.id, scratch.len() as u64);
                let mut scope = ctx.batch_charge(self.id);
                while let Some(row) = scratch.pop_front() {
                    scope.cpu(ctx.cost.spool_write_row_ns);
                    self.write_pending += 1.0;
                    if self.write_pending >= ctx.cost.spool_rows_per_page {
                        self.write_pending -= ctx.cost.spool_rows_per_page;
                        scope.io(1);
                    }
                    self.buffer.push(row);
                }
                scope.finish();
            }
        } else {
            while let Some(row) = self.child.next(ctx) {
                ctx.count_input(self.id, 1);
                self.charge_write(ctx);
                self.buffer.push(row);
            }
        }
        if !self.populated {
            self.populated = true;
            ctx.emit_phase(self.id, "write", "replay");
        }
    }
}

impl Operator for SpoolOp {
    fn open(&mut self, ctx: &ExecContext) {
        ctx.mark_open(self.id);
        self.child.open(ctx);
    }

    fn next(&mut self, ctx: &ExecContext) -> Option<Row> {
        if self.done {
            return None;
        }
        if !self.lazy && !self.populated {
            self.populate_all(ctx);
            self.pos = 0;
        }
        if self.replaying || !self.lazy || self.populated {
            // Serving from the buffer.
            if self.pos < self.buffer.len() {
                let row = self.buffer[self.pos].clone();
                self.pos += 1;
                self.charge_read(ctx);
                ctx.count_output(self.id);
                return Some(row);
            }
            if !self.lazy || self.populated || self.replaying {
                self.done = true;
                ctx.mark_close(self.id);
                return None;
            }
        }
        // Lazy first pass: copy through.
        match self.child.next(ctx) {
            Some(row) => {
                ctx.count_input(self.id, 1);
                self.charge_write(ctx);
                self.buffer.push(row.clone());
                self.pos = self.buffer.len();
                ctx.count_output(self.id);
                Some(row)
            }
            None => {
                self.populated = true;
                ctx.emit_phase(self.id, "write", "replay");
                self.done = true;
                ctx.mark_close(self.id);
                None
            }
        }
    }

    fn next_batch(&mut self, ctx: &ExecContext, out: &mut RowBatch, limit: usize) -> bool {
        if self.done {
            return false;
        }
        if limit == 0 {
            return true;
        }
        if !self.lazy && !self.populated {
            self.populate_all(ctx);
            self.pos = 0;
        }
        if self.replaying || !self.lazy || self.populated {
            // Serving from the buffer.
            let n = (self.buffer.len() - self.pos).min(limit);
            if n > 0 {
                let mut scope = ctx.batch_charge(self.id);
                for i in self.pos..self.pos + n {
                    scope.cpu(ctx.cost.spool_read_row_ns);
                    self.read_pending += 1.0;
                    if self.read_pending >= ctx.cost.spool_rows_per_page {
                        self.read_pending -= ctx.cost.spool_rows_per_page;
                        scope.io(1);
                    }
                    out.push(self.buffer[i].clone());
                }
                scope.finish();
                self.pos += n;
                ctx.count_output_batch(self.id, n as u64);
                return true;
            }
            if !self.lazy || self.populated || self.replaying {
                self.done = true;
                ctx.mark_close(self.id);
                return false;
            }
        }
        // Lazy first pass: copy a chunk through.
        self.scratch.clear();
        if !self.child.next_batch(ctx, &mut self.scratch, limit) {
            self.populated = true;
            ctx.emit_phase(self.id, "write", "replay");
            self.done = true;
            ctx.mark_close(self.id);
            return false;
        }
        let n = self.scratch.len() as u64;
        ctx.count_input(self.id, n);
        let mut scope = ctx.batch_charge(self.id);
        while let Some(row) = self.scratch.pop_front() {
            scope.cpu(ctx.cost.spool_write_row_ns);
            self.write_pending += 1.0;
            if self.write_pending >= ctx.cost.spool_rows_per_page {
                self.write_pending -= ctx.cost.spool_rows_per_page;
                scope.io(1);
            }
            // One clone is inherent: the spool keeps a replayable copy.
            self.buffer.push(row.clone());
            out.push(row);
        }
        scope.finish();
        self.pos = self.buffer.len();
        ctx.count_output_batch(self.id, n);
        true
    }

    fn close(&mut self, ctx: &ExecContext) {
        self.child.close(ctx);
        ctx.mark_close(self.id);
    }

    fn rewind(&mut self, ctx: &ExecContext) {
        ctx.mark_open(self.id);
        if self.lazy && !self.populated {
            // Rewound before the first pass completed: finish populating so
            // the replay is complete. (Matches engine behaviour: a lazy
            // spool rewound mid-stream re-reads what it has and continues
            // from the child.)
            self.populate_all(ctx);
        } else if !self.lazy && !self.populated {
            self.populate_all(ctx);
        }
        self.replaying = true;
        self.scratch.clear();
        self.pos = 0;
        self.done = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::scan::ConstantScanOp;
    use lqs_plan::CostModel;
    use lqs_storage::{Database, Value};

    fn rows(n: i64) -> Vec<Vec<Value>> {
        (0..n).map(|v| vec![Value::Int(v)]).collect()
    }

    fn drain(op: &mut dyn Operator, ctx: &ExecContext) -> usize {
        let mut n = 0;
        while op.next(ctx).is_some() {
            n += 1;
        }
        n
    }

    #[test]
    fn eager_spool_blocks_then_replays() {
        let db = Database::new();
        let ctx = ExecContext::new(&db, 2, 0, u64::MAX, CostModel::default());
        let child = Box::new(ConstantScanOp::new(NodeId(0), rows(50)));
        let mut spool = SpoolOp::new(NodeId(1), false, child);
        spool.open(&ctx);
        let first = spool.next(&ctx).unwrap();
        assert_eq!(first[0], Value::Int(0));
        // Entire input consumed on first demand.
        assert_eq!(ctx.counters_of(NodeId(1)).rows_input, 50);
        assert_eq!(drain(&mut spool, &ctx), 49);
        // Rewind replays without touching the child again.
        let child_k = ctx.counters_of(NodeId(0)).rows_output;
        spool.rewind(&ctx);
        assert_eq!(drain(&mut spool, &ctx), 50);
        assert_eq!(ctx.counters_of(NodeId(0)).rows_output, child_k);
        spool.close(&ctx);
    }

    #[test]
    fn lazy_spool_streams_through() {
        let db = Database::new();
        let ctx = ExecContext::new(&db, 2, 0, u64::MAX, CostModel::default());
        let child = Box::new(ConstantScanOp::new(NodeId(0), rows(50)));
        let mut spool = SpoolOp::new(NodeId(1), true, child);
        spool.open(&ctx);
        let _ = spool.next(&ctx).unwrap();
        // Only one row consumed so far (pipelined).
        assert_eq!(ctx.counters_of(NodeId(1)).rows_input, 1);
        assert_eq!(drain(&mut spool, &ctx), 49);
        spool.rewind(&ctx);
        assert_eq!(drain(&mut spool, &ctx), 50);
        spool.close(&ctx);
    }

    #[test]
    fn spool_charges_io() {
        let db = Database::new();
        let ctx = ExecContext::new(&db, 2, 0, u64::MAX, CostModel::default());
        let child = Box::new(ConstantScanOp::new(NodeId(0), rows(1000)));
        let mut spool = SpoolOp::new(NodeId(1), false, child);
        spool.open(&ctx);
        drain(&mut spool, &ctx);
        // 1000 rows at 200 rows/page = 5 write pages + 5 read pages.
        assert_eq!(ctx.counters_of(NodeId(1)).logical_reads, 10);
        spool.close(&ctx);
    }
}
