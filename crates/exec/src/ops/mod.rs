//! Physical operator implementations — the demand-driven iterator
//! (`Open`/`GetNext`/`Close`) engine of the simulator.
//!
//! Every operator:
//! * charges virtual CPU/I-O to its plan node as it works,
//! * increments its `kᵢ` (rows output) on every successful `next()`,
//! * marks itself closed the first time it reports exhaustion,
//!
//! so DMV snapshots taken by the [`crate::context::ExecContext`] observe
//! realistic mid-flight counter trajectories.

use crate::context::ExecContext;
use lqs_storage::Row;

mod agg;
mod exchange;
mod filter;
mod hash_join;
mod merge_join;
mod misc;
mod nested_loops;
mod scan;
mod seek;
mod sort;
mod spool;

/// A batch of rows flowing between operators on the vectorized path.
///
/// A thin wrapper over `VecDeque<Row>` so the batch contract is visible in
/// signatures: producers append with [`push`](RowBatch::push), consumers
/// take rows *by move* with [`pop_front`](RowBatch::pop_front). Moving
/// rather than cloning matters: a `Row` is an `Arc`, and a pipeline that
/// cloned at every staging buffer would pay two atomic refcount operations
/// per row per operator — which is most of what the vectorized path exists
/// to avoid.
#[derive(Debug, Default)]
pub struct RowBatch {
    rows: std::collections::VecDeque<Row>,
}

impl RowBatch {
    /// An empty batch with room for `cap` rows.
    pub fn with_capacity(cap: usize) -> Self {
        RowBatch {
            rows: std::collections::VecDeque::with_capacity(cap),
        }
    }

    /// Append a row.
    #[inline]
    pub fn push(&mut self, row: Row) {
        self.rows.push_back(row);
    }

    /// Take the oldest row out of the batch, transferring ownership (no
    /// refcount traffic).
    #[inline]
    pub fn pop_front(&mut self) -> Option<Row> {
        self.rows.pop_front()
    }

    /// Rows currently in the batch.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the batch is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Drop all rows, keeping the allocation.
    #[inline]
    pub fn clear(&mut self) {
        self.rows.clear();
    }

    /// The `i`-th row (front = 0).
    #[inline]
    pub fn get(&self, i: usize) -> &Row {
        &self.rows[i]
    }

    /// Replace the `i`-th row, returning nothing (the old row is dropped).
    /// Used by 1:1 transform operators rewriting a child's output in place.
    #[inline]
    pub fn replace(&mut self, i: usize, row: Row) {
        self.rows[i] = row;
    }

    /// Swap two rows. Used by in-place filtering to compact survivors.
    #[inline]
    pub fn swap(&mut self, i: usize, j: usize) {
        self.rows.swap(i, j);
    }

    /// Drop rows from the back until `len` remain.
    #[inline]
    pub fn truncate(&mut self, len: usize) {
        self.rows.truncate(len);
    }

    /// The rows as one contiguous mutable slice (front = index 0).
    ///
    /// In-place operators index the appended range heavily; a slice skips
    /// the per-access wrap-around arithmetic of deque indexing. Rearranges
    /// the ring buffer only when it has wrapped, which a freshly filled
    /// batch never has.
    #[inline]
    pub fn contiguous_mut(&mut self) -> &mut [Row] {
        self.rows.make_contiguous()
    }

    /// Iterate over the rows, front to back.
    pub fn iter(&self) -> std::collections::vec_deque::Iter<'_, Row> {
        self.rows.iter()
    }

    /// Move all rows out into a `Vec`, leaving the batch empty.
    pub fn take_rows(&mut self) -> Vec<Row> {
        std::mem::take(&mut self.rows).into()
    }
}

impl<'b> IntoIterator for &'b RowBatch {
    type Item = &'b Row;
    type IntoIter = std::collections::vec_deque::Iter<'b, Row>;
    fn into_iter(self) -> Self::IntoIter {
        self.rows.iter()
    }
}

/// The iterator interface every physical operator implements.
pub trait Operator {
    /// Prepare for execution. Parents open children.
    fn open(&mut self, ctx: &ExecContext);
    /// Produce the next row, or `None` when exhausted.
    fn next(&mut self, ctx: &ExecContext) -> Option<Row>;
    /// Vectorized `GetNext`: append up to `limit` rows to `out`, charging
    /// through the batched context methods. Returns `false` exactly when
    /// this call appended **zero** rows and the operator is exhausted (the
    /// per-batch analogue of `next() == None`).
    ///
    /// Contract, relied on for close-time equivalence with the per-tuple
    /// path:
    /// * a call returns as soon as it has appended at least one row — it
    ///   never pulls a child again once `out` has grown this call, so when
    ///   an operator observes its input exhausted (and stamps its close
    ///   time), no rows of that input are still buffered in an ancestor's
    ///   in-progress batch;
    /// * `false` is only returned by a call that appended nothing, and the
    ///   operator marks itself closed on that call, exactly like `next()`
    ///   returning `None`.
    ///
    /// The default implementation bridges to `next()` one row per call, so
    /// operators gain batch support incrementally; single-row bridging (not
    /// a fill loop) is what preserves the zero-rows-in-flight guarantee for
    /// unconverted operators.
    fn next_batch(&mut self, ctx: &ExecContext, out: &mut RowBatch, limit: usize) -> bool {
        if limit == 0 {
            return true;
        }
        match self.next(ctx) {
            Some(row) => {
                out.push(row);
                true
            }
            None => false,
        }
    }
    /// Release resources at end of query.
    fn close(&mut self, ctx: &ExecContext);
    /// Re-execute for a new correlation binding (the inner side of a
    /// nested-loops join). Spools and sorts replay their buffers; other
    /// operators reset and re-execute.
    fn rewind(&mut self, ctx: &ExecContext);
}

/// A heap-allocated operator.
pub type BoxedOperator = Box<dyn Operator>;

/// Build the executable operator tree for `plan`.
#[allow(clippy::only_used_in_recursion)]
pub fn build_operator(
    plan: &lqs_plan::PhysicalPlan,
    db: &lqs_storage::Database,
    node: lqs_plan::NodeId,
) -> BoxedOperator {
    use lqs_plan::PhysicalOp as P;
    let n = plan.node(node);
    let child = |i: usize| build_operator(plan, db, n.children[i]);
    match &n.op {
        P::TableScan {
            table,
            predicate,
            bitmap_probe,
            ..
        } => Box::new(scan::TableScanOp::new(
            n.id,
            *table,
            predicate.clone(),
            bitmap_probe.clone(),
        )),
        P::IndexScan {
            index,
            predicate,
            bitmap_probe,
            output,
            ..
        } => Box::new(scan::IndexScanOp::new(
            n.id,
            *index,
            predicate.clone(),
            bitmap_probe.clone(),
            *output,
        )),
        P::ColumnstoreScan {
            columnstore,
            predicate,
            bitmap_probe,
        } => Box::new(scan::ColumnstoreScanOp::new(
            n.id,
            *columnstore,
            predicate.clone(),
            bitmap_probe.clone(),
        )),
        P::ConstantScan { rows } => Box::new(scan::ConstantScanOp::new(n.id, rows.clone())),
        P::IndexSeek {
            index,
            seek,
            residual,
            output,
        } => Box::new(seek::IndexSeekOp::new(
            n.id,
            *index,
            seek.clone(),
            residual.clone(),
            *output,
        )),
        P::RidLookup { table } => Box::new(seek::RidLookupOp::new(n.id, *table, child(0))),
        P::Filter { predicate } => Box::new(filter::FilterOp::new(
            n.id,
            predicate.clone(),
            n.batch_mode,
            child(0),
        )),
        P::ComputeScalar { exprs } => Box::new(filter::ComputeScalarOp::new(
            n.id,
            exprs.clone(),
            n.batch_mode,
            child(0),
        )),
        P::Top { n: limit } => Box::new(filter::TopOp::new(n.id, *limit, child(0))),
        P::Segment { group_by } => {
            Box::new(filter::SegmentOp::new(n.id, group_by.clone(), child(0)))
        }
        P::Sort { keys } => Box::new(sort::SortOp::new(n.id, keys.clone(), None, false, child(0))),
        P::TopNSort { n: limit, keys } => Box::new(sort::SortOp::new(
            n.id,
            keys.clone(),
            Some(*limit),
            false,
            child(0),
        )),
        P::DistinctSort { keys } => {
            Box::new(sort::SortOp::new(n.id, keys.clone(), None, true, child(0)))
        }
        P::StreamAggregate { group_by, aggs } => Box::new(agg::StreamAggregateOp::new(
            n.id,
            group_by.clone(),
            aggs.clone(),
            child(0),
        )),
        P::HashAggregate { group_by, aggs } => Box::new(agg::HashAggregateOp::new(
            n.id,
            group_by.clone(),
            aggs.clone(),
            n.batch_mode,
            child(0),
        )),
        P::HashJoin {
            kind,
            build_keys,
            probe_keys,
            bitmap,
        } => Box::new(hash_join::HashJoinOp::new(
            n.id,
            *kind,
            build_keys.clone(),
            probe_keys.clone(),
            *bitmap,
            plan.node(n.children[0]).output_arity,
            plan.node(n.children[1]).output_arity,
            plan.node(n.children[0]).est_total_rows() as usize,
            n.batch_mode,
            child(0),
            child(1),
        )),
        P::MergeJoin {
            kind,
            left_keys,
            right_keys,
        } => Box::new(merge_join::MergeJoinOp::new(
            n.id,
            *kind,
            left_keys.clone(),
            right_keys.clone(),
            plan.node(n.children[0]).output_arity,
            plan.node(n.children[1]).output_arity,
            child(0),
            child(1),
        )),
        P::NestedLoops {
            kind,
            predicate,
            outer_buffer,
        } => Box::new(nested_loops::NestedLoopsOp::new(
            n.id,
            *kind,
            predicate.clone(),
            *outer_buffer,
            plan.node(n.children[1]).output_arity,
            child(0),
            child(1),
        )),
        P::Exchange { kind, degree } => Box::new(exchange::ExchangeOp::new(
            n.id,
            *kind,
            *degree,
            n.batch_mode,
            child(0),
        )),
        P::Spool { lazy } => Box::new(spool::SpoolOp::new(n.id, *lazy, child(0))),
        P::Concat => {
            let children = (0..n.children.len()).map(child).collect();
            Box::new(misc::ConcatOp::new(n.id, children))
        }
        P::BitmapCreate {
            key_columns,
            bitmap,
        } => Box::new(misc::BitmapCreateOp::new(
            n.id,
            key_columns.clone(),
            *bitmap,
            n.est_total_rows() as usize,
            child(0),
        )),
    }
}

/// Concatenate two rows.
pub(crate) fn concat_rows(a: &[lqs_storage::Value], b: &[lqs_storage::Value]) -> Row {
    a.iter().chain(b.iter()).cloned().collect::<Vec<_>>().into()
}

/// A row of `n` NULLs, for outer-join padding.
pub(crate) fn null_row(n: usize) -> Vec<lqs_storage::Value> {
    vec![lqs_storage::Value::Null; n]
}

/// Extract key values at `cols` from a row.
pub(crate) fn key_of(row: &[lqs_storage::Value], cols: &[usize]) -> Vec<lqs_storage::Value> {
    cols.iter().map(|&c| row[c].clone()).collect()
}

/// Whether any component of a join key is NULL (null keys never join).
pub(crate) fn key_has_null(key: &[lqs_storage::Value]) -> bool {
    key.iter().any(|v| v.is_null())
}
