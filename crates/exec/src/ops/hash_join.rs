//! Hash join with optional bitmap (semi-join filter) creation.
//!
//! Child 0 is the **build** input, consumed entirely during `Open()` (its
//! subtree forms a separate pipeline); child 1 is the **probe** input.
//! Output rows are probe columns followed by build columns. When a bitmap id
//! is attached, the build phase also populates a Bloom filter that
//! probe-side scans consult (§4.3, Figure 6).

use super::{concat_rows, key_has_null, key_of, BoxedOperator, Operator};
use crate::context::ExecContext;
use lqs_plan::{BitmapId, JoinKind, NodeId};
use lqs_storage::{Row, Value};
use std::collections::HashMap;

pub struct HashJoinOp {
    id: NodeId,
    kind: JoinKind,
    build_keys: Vec<usize>,
    probe_keys: Vec<usize>,
    bitmap: Option<BitmapId>,
    build_arity: usize,
    probe_arity: usize,
    build_capacity_hint: usize,
    batch: bool,
    build: BoxedOperator,
    probe: BoxedOperator,
    /// All build rows; `map` holds indices into it.
    build_rows: Vec<Row>,
    matched: Vec<bool>,
    map: HashMap<Vec<Value>, Vec<usize>>,
    built: bool,
    /// Matches pending emission for the current probe row.
    pending: Vec<usize>,
    pending_probe: Option<Row>,
    pending_pos: usize,
    probe_done: bool,
    /// For FullOuter: cursor over unmatched build rows.
    unmatched_pos: usize,
    done: bool,
}

impl HashJoinOp {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        id: NodeId,
        kind: JoinKind,
        build_keys: Vec<usize>,
        probe_keys: Vec<usize>,
        bitmap: Option<BitmapId>,
        build_arity: usize,
        probe_arity: usize,
        build_capacity_hint: usize,
        batch: bool,
        build: BoxedOperator,
        probe: BoxedOperator,
    ) -> Self {
        HashJoinOp {
            id,
            kind,
            build_keys,
            probe_keys,
            bitmap,
            build_arity,
            probe_arity,
            build_capacity_hint: build_capacity_hint.max(64),
            batch,
            build,
            probe,
            build_rows: Vec::new(),
            matched: Vec::new(),
            map: HashMap::new(),
            built: false,
            pending: Vec::new(),
            pending_probe: None,
            pending_pos: 0,
            probe_done: false,
            unmatched_pos: 0,
            done: false,
        }
    }

    fn factor(&self) -> f64 {
        if self.batch {
            0.3
        } else {
            1.0
        }
    }

    fn build_phase(&mut self, ctx: &ExecContext) {
        let factor = self.factor();
        while let Some(row) = self.build.next(ctx) {
            ctx.count_input(self.id, 1);
            ctx.charge_cpu(self.id, ctx.cost.hash_build_row_ns * factor);
            let key = key_of(&row, &self.build_keys);
            let idx = self.build_rows.len();
            self.build_rows.push(row);
            self.matched.push(false);
            if !key_has_null(&key) {
                if let Some(bm) = self.bitmap {
                    ctx.charge_cpu(self.id, ctx.cost.bitmap_row_ns * factor);
                    ctx.bitmap_insert(bm, &key, self.build_capacity_hint);
                }
                self.map.entry(key).or_default().push(idx);
            }
        }
        self.built = true;
        if self.bitmap.is_some() {
            ctx.emit_bitmap_built(self.id, self.map.len() as u64);
        }
        ctx.emit_phase(self.id, "build", "probe");
    }

    /// Emit one pending (probe × build) match if any are queued.
    fn emit_pending(&mut self, ctx: &ExecContext) -> Option<Row> {
        if self.pending_pos < self.pending.len() {
            let bidx = self.pending[self.pending_pos];
            self.pending_pos += 1;
            self.matched[bidx] = true;
            let probe = self.pending_probe.as_ref().expect("probe row queued");
            let out = concat_rows(probe, &self.build_rows[bidx]);
            ctx.count_output(self.id);
            return Some(out);
        }
        None
    }
}

impl Operator for HashJoinOp {
    fn open(&mut self, ctx: &ExecContext) {
        ctx.mark_open(self.id);
        self.build.open(ctx);
        self.probe.open(ctx);
        self.build_phase(ctx);
    }

    fn next(&mut self, ctx: &ExecContext) -> Option<Row> {
        if self.done {
            return None;
        }
        let factor = self.factor();
        loop {
            if let Some(row) = self.emit_pending(ctx) {
                return Some(row);
            }
            if self.probe_done {
                // FullOuter tail: unmatched build rows padded with NULLs on
                // the probe side.
                if self.kind == JoinKind::FullOuter {
                    while self.unmatched_pos < self.build_rows.len() {
                        let i = self.unmatched_pos;
                        self.unmatched_pos += 1;
                        if !self.matched[i] {
                            let pad = super::null_row(self.probe_arity);
                            ctx.count_output(self.id);
                            return Some(concat_rows(&pad, &self.build_rows[i]));
                        }
                    }
                }
                self.done = true;
                ctx.mark_close(self.id);
                return None;
            }
            // Pull the next probe row.
            let Some(probe_row) = self.probe.next(ctx) else {
                self.probe_done = true;
                continue;
            };
            ctx.count_input(self.id, 1);
            ctx.charge_cpu(self.id, ctx.cost.hash_probe_row_ns * factor);
            let key = key_of(&probe_row, &self.probe_keys);
            let matches: &[usize] = if key_has_null(&key) {
                &[]
            } else {
                self.map.get(&key).map_or(&[][..], |v| &v[..])
            };
            match self.kind {
                JoinKind::Inner => {
                    if !matches.is_empty() {
                        self.pending = matches.to_vec();
                        self.pending_pos = 0;
                        self.pending_probe = Some(probe_row);
                    }
                }
                JoinKind::LeftOuter | JoinKind::FullOuter => {
                    if matches.is_empty() {
                        ctx.count_output(self.id);
                        return Some(concat_rows(&probe_row, &super::null_row(self.build_arity)));
                    }
                    self.pending = matches.to_vec();
                    self.pending_pos = 0;
                    self.pending_probe = Some(probe_row);
                }
                JoinKind::LeftSemi => {
                    if !matches.is_empty() {
                        for &m in matches {
                            self.matched[m] = true;
                        }
                        ctx.count_output(self.id);
                        return Some(probe_row);
                    }
                }
                JoinKind::LeftAnti => {
                    if matches.is_empty() {
                        ctx.count_output(self.id);
                        return Some(probe_row);
                    }
                }
            }
        }
    }

    fn close(&mut self, ctx: &ExecContext) {
        self.build.close(ctx);
        self.probe.close(ctx);
        ctx.mark_close(self.id);
    }

    fn rewind(&mut self, ctx: &ExecContext) {
        ctx.mark_open(self.id);
        self.build.rewind(ctx);
        self.probe.rewind(ctx);
        self.build_rows.clear();
        self.matched.clear();
        self.map.clear();
        self.built = false;
        self.pending.clear();
        self.pending_probe = None;
        self.pending_pos = 0;
        self.probe_done = false;
        self.unmatched_pos = 0;
        self.done = false;
        self.build_phase(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::scan::ConstantScanOp;
    use lqs_plan::CostModel;
    use lqs_storage::Database;

    fn rows(v: &[(i64, i64)]) -> Vec<Vec<Value>> {
        v.iter()
            .map(|&(a, b)| vec![Value::Int(a), Value::Int(b)])
            .collect()
    }

    fn run_join(kind: JoinKind, build: Vec<Vec<Value>>, probe: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
        let db = Database::new();
        let ctx = ExecContext::new(&db, 3, 1, u64::MAX, CostModel::default());
        let b = Box::new(ConstantScanOp::new(NodeId(0), build));
        let p = Box::new(ConstantScanOp::new(NodeId(1), probe));
        let mut j = HashJoinOp::new(
            NodeId(2),
            kind,
            vec![0],
            vec![0],
            None,
            2,
            2,
            16,
            false,
            b,
            p,
        );
        j.open(&ctx);
        let mut out = Vec::new();
        while let Some(r) = j.next(&ctx) {
            out.push(r.to_vec());
        }
        j.close(&ctx);
        out
    }

    #[test]
    fn inner_join_matches() {
        let out = run_join(
            JoinKind::Inner,
            rows(&[(1, 100), (2, 200), (2, 201)]),
            rows(&[(2, 9), (3, 8)]),
        );
        // Probe row (2,9) matches two build rows.
        assert_eq!(out.len(), 2);
        for r in &out {
            assert_eq!(r[0], Value::Int(2)); // probe cols first
            assert_eq!(r[2], Value::Int(2)); // then build cols
        }
    }

    #[test]
    fn left_outer_pads_unmatched_probe() {
        let out = run_join(
            JoinKind::LeftOuter,
            rows(&[(1, 100)]),
            rows(&[(1, 9), (3, 8)]),
        );
        assert_eq!(out.len(), 2);
        assert_eq!(
            out[1],
            vec![Value::Int(3), Value::Int(8), Value::Null, Value::Null]
        );
    }

    #[test]
    fn semi_and_anti() {
        let semi = run_join(
            JoinKind::LeftSemi,
            rows(&[(1, 0), (1, 1)]),
            rows(&[(1, 9), (3, 8)]),
        );
        // Semi emits the probe row once despite two matches, probe cols only.
        assert_eq!(semi, vec![vec![Value::Int(1), Value::Int(9)]]);
        let anti = run_join(JoinKind::LeftAnti, rows(&[(1, 0)]), rows(&[(1, 9), (3, 8)]));
        assert_eq!(anti, vec![vec![Value::Int(3), Value::Int(8)]]);
    }

    #[test]
    fn full_outer_emits_both_sides() {
        let out = run_join(
            JoinKind::FullOuter,
            rows(&[(1, 100), (4, 400)]),
            rows(&[(1, 9), (3, 8)]),
        );
        // (1) match, (3) probe-unmatched, (4) build-unmatched.
        assert_eq!(out.len(), 3);
        assert_eq!(out[2][0], Value::Null); // padded probe side
        assert_eq!(out[2][2], Value::Int(4));
    }

    #[test]
    fn null_keys_never_match() {
        let build = vec![vec![Value::Null, Value::Int(1)]];
        let probe = vec![vec![Value::Null, Value::Int(2)]];
        assert!(run_join(JoinKind::Inner, build.clone(), probe.clone()).is_empty());
        // But LeftOuter still preserves the probe row.
        let out = run_join(JoinKind::LeftOuter, build, probe);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0][2], Value::Null);
    }

    #[test]
    fn bitmap_published_during_build() {
        let db = Database::new();
        let ctx = ExecContext::new(&db, 3, 1, u64::MAX, CostModel::default());
        let b = Box::new(ConstantScanOp::new(NodeId(0), rows(&[(1, 0), (2, 0)])));
        let p = Box::new(ConstantScanOp::new(NodeId(1), vec![]));
        let mut j = HashJoinOp::new(
            NodeId(2),
            JoinKind::Inner,
            vec![0],
            vec![0],
            Some(BitmapId(0)),
            2,
            2,
            16,
            false,
            b,
            p,
        );
        j.open(&ctx);
        assert!(ctx.bitmap_may_contain(BitmapId(0), &[Value::Int(1)]));
        assert!(!ctx.bitmap_may_contain(BitmapId(0), &[Value::Int(99)]));
        j.close(&ctx);
    }

    #[test]
    fn build_consumed_during_open() {
        let db = Database::new();
        let ctx = ExecContext::new(&db, 3, 1, u64::MAX, CostModel::default());
        let b = Box::new(ConstantScanOp::new(NodeId(0), rows(&[(1, 0), (2, 0)])));
        let p = Box::new(ConstantScanOp::new(NodeId(1), rows(&[(1, 5)])));
        let mut j = HashJoinOp::new(
            NodeId(2),
            JoinKind::Inner,
            vec![0],
            vec![0],
            None,
            2,
            2,
            16,
            false,
            b,
            p,
        );
        j.open(&ctx);
        // Build side (node 0) fully consumed before any next().
        assert_eq!(ctx.counters_of(NodeId(0)).rows_output, 2);
        assert_eq!(ctx.counters_of(NodeId(1)).rows_output, 0);
        j.close(&ctx);
    }
}
