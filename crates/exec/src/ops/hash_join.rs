//! Hash join with optional bitmap (semi-join filter) creation.
//!
//! Child 0 is the **build** input, consumed entirely during `Open()` (its
//! subtree forms a separate pipeline); child 1 is the **probe** input.
//! Output rows are probe columns followed by build columns. When a bitmap id
//! is attached, the build phase also populates a Bloom filter that
//! probe-side scans consult (§4.3, Figure 6).

use super::sort::CONSUME_BATCH;
use super::{concat_rows, key_has_null, key_of, BoxedOperator, Operator, RowBatch};
use crate::context::ExecContext;
use lqs_plan::{BitmapId, JoinKind, NodeId};
use lqs_storage::{Row, Value};
use std::collections::HashMap;

pub struct HashJoinOp {
    id: NodeId,
    kind: JoinKind,
    build_keys: Vec<usize>,
    probe_keys: Vec<usize>,
    bitmap: Option<BitmapId>,
    build_arity: usize,
    probe_arity: usize,
    build_capacity_hint: usize,
    batch: bool,
    build: BoxedOperator,
    probe: BoxedOperator,
    /// All build rows; `map` holds indices into it.
    build_rows: Vec<Row>,
    matched: Vec<bool>,
    map: HashMap<Vec<Value>, Vec<usize>>,
    built: bool,
    /// Matches pending emission for the current probe row.
    pending: Vec<usize>,
    pending_probe: Option<Row>,
    pending_pos: usize,
    /// Probe rows pulled but not yet joined (vectorized path only).
    scratch: RowBatch,
    probe_done: bool,
    /// For FullOuter: cursor over unmatched build rows.
    unmatched_pos: usize,
    done: bool,
}

impl HashJoinOp {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        id: NodeId,
        kind: JoinKind,
        build_keys: Vec<usize>,
        probe_keys: Vec<usize>,
        bitmap: Option<BitmapId>,
        build_arity: usize,
        probe_arity: usize,
        build_capacity_hint: usize,
        batch: bool,
        build: BoxedOperator,
        probe: BoxedOperator,
    ) -> Self {
        HashJoinOp {
            id,
            kind,
            build_keys,
            probe_keys,
            bitmap,
            build_arity,
            probe_arity,
            build_capacity_hint: build_capacity_hint.max(64),
            batch,
            build,
            probe,
            build_rows: Vec::new(),
            matched: Vec::new(),
            map: HashMap::new(),
            built: false,
            pending: Vec::new(),
            pending_probe: None,
            pending_pos: 0,
            scratch: RowBatch::default(),
            probe_done: false,
            unmatched_pos: 0,
            done: false,
        }
    }

    fn factor(&self) -> f64 {
        if self.batch {
            0.3
        } else {
            1.0
        }
    }

    fn build_phase(&mut self, ctx: &ExecContext) {
        let factor = self.factor();
        if ctx.batch_path_ok() {
            let mut scratch = RowBatch::with_capacity(CONSUME_BATCH);
            while self.build.next_batch(ctx, &mut scratch, CONSUME_BATCH) {
                // Input counted through the scope, per row: the join bound
                // derives "probe rows processed" from rows_input, so it
                // must never lead the rows actually folded into the table.
                let mut scope = ctx.batch_charge(self.id);
                while let Some(row) = scratch.pop_front() {
                    scope.rows_in(1);
                    scope.cpu(ctx.cost.hash_build_row_ns * factor);
                    let key = key_of(&row, &self.build_keys);
                    let idx = self.build_rows.len();
                    self.build_rows.push(row);
                    self.matched.push(false);
                    if !key_has_null(&key) {
                        if let Some(bm) = self.bitmap {
                            scope.cpu(ctx.cost.bitmap_row_ns * factor);
                            ctx.bitmap_insert(bm, &key, self.build_capacity_hint);
                        }
                        self.map.entry(key).or_default().push(idx);
                    }
                }
                scope.finish();
            }
        } else {
            while let Some(row) = self.build.next(ctx) {
                ctx.count_input(self.id, 1);
                ctx.charge_cpu(self.id, ctx.cost.hash_build_row_ns * factor);
                let key = key_of(&row, &self.build_keys);
                let idx = self.build_rows.len();
                self.build_rows.push(row);
                self.matched.push(false);
                if !key_has_null(&key) {
                    if let Some(bm) = self.bitmap {
                        ctx.charge_cpu(self.id, ctx.cost.bitmap_row_ns * factor);
                        ctx.bitmap_insert(bm, &key, self.build_capacity_hint);
                    }
                    self.map.entry(key).or_default().push(idx);
                }
            }
        }
        self.built = true;
        if self.bitmap.is_some() {
            ctx.emit_bitmap_built(self.id, self.map.len() as u64);
        }
        ctx.emit_phase(self.id, "build", "probe");
    }

    /// Emit one pending (probe × build) match if any are queued.
    fn emit_pending(&mut self, ctx: &ExecContext) -> Option<Row> {
        if self.pending_pos < self.pending.len() {
            let bidx = self.pending[self.pending_pos];
            self.pending_pos += 1;
            self.matched[bidx] = true;
            let probe = self.pending_probe.as_ref().expect("probe row queued");
            let out = concat_rows(probe, &self.build_rows[bidx]);
            ctx.count_output(self.id);
            return Some(out);
        }
        None
    }
}

impl Operator for HashJoinOp {
    fn open(&mut self, ctx: &ExecContext) {
        ctx.mark_open(self.id);
        self.build.open(ctx);
        self.probe.open(ctx);
        self.build_phase(ctx);
    }

    fn next(&mut self, ctx: &ExecContext) -> Option<Row> {
        if self.done {
            return None;
        }
        let factor = self.factor();
        loop {
            if let Some(row) = self.emit_pending(ctx) {
                return Some(row);
            }
            if self.probe_done {
                // FullOuter tail: unmatched build rows padded with NULLs on
                // the probe side.
                if self.kind == JoinKind::FullOuter {
                    while self.unmatched_pos < self.build_rows.len() {
                        let i = self.unmatched_pos;
                        self.unmatched_pos += 1;
                        if !self.matched[i] {
                            let pad = super::null_row(self.probe_arity);
                            ctx.count_output(self.id);
                            return Some(concat_rows(&pad, &self.build_rows[i]));
                        }
                    }
                }
                self.done = true;
                ctx.mark_close(self.id);
                return None;
            }
            // Pull the next probe row.
            let Some(probe_row) = self.probe.next(ctx) else {
                self.probe_done = true;
                continue;
            };
            ctx.count_input(self.id, 1);
            ctx.charge_cpu(self.id, ctx.cost.hash_probe_row_ns * factor);
            let key = key_of(&probe_row, &self.probe_keys);
            let matches: &[usize] = if key_has_null(&key) {
                &[]
            } else {
                self.map.get(&key).map_or(&[][..], |v| &v[..])
            };
            match self.kind {
                JoinKind::Inner => {
                    if !matches.is_empty() {
                        self.pending = matches.to_vec();
                        self.pending_pos = 0;
                        self.pending_probe = Some(probe_row);
                    }
                }
                JoinKind::LeftOuter | JoinKind::FullOuter => {
                    if matches.is_empty() {
                        ctx.count_output(self.id);
                        return Some(concat_rows(&probe_row, &super::null_row(self.build_arity)));
                    }
                    self.pending = matches.to_vec();
                    self.pending_pos = 0;
                    self.pending_probe = Some(probe_row);
                }
                JoinKind::LeftSemi => {
                    if !matches.is_empty() {
                        for &m in matches {
                            self.matched[m] = true;
                        }
                        ctx.count_output(self.id);
                        return Some(probe_row);
                    }
                }
                JoinKind::LeftAnti => {
                    if matches.is_empty() {
                        ctx.count_output(self.id);
                        return Some(probe_row);
                    }
                }
            }
        }
    }

    fn next_batch(&mut self, ctx: &ExecContext, out: &mut RowBatch, limit: usize) -> bool {
        if self.done {
            return false;
        }
        if limit == 0 {
            return true;
        }
        let factor = self.factor();
        let mut appended = 0usize;
        loop {
            // One charging scope covers the whole drain↔probe alternation
            // over the current probe batch — one trace span per batch, not
            // one per matching probe row. Drained matches count through the
            // scope: pending row counts settle at every flush *before* the
            // clock advances, so any snapshot still sees the counters in
            // step with the charges, and the queued match set belongs to at
            // most one probe row at any instant (the +1 the §4.2 join bound
            // allows). The scope must end before pulling the probe child,
            // which opens its own exclusive scope.
            if self.pending_pos < self.pending.len() || !self.scratch.is_empty() {
                let mut scope = ctx.batch_charge(self.id);
                loop {
                    // Drain matches queued for the current probe row first;
                    // a wide match set may span several calls without
                    // overshooting `limit`.
                    let mut drained = 0u64;
                    while self.pending_pos < self.pending.len() && appended < limit {
                        let bidx = self.pending[self.pending_pos];
                        self.pending_pos += 1;
                        self.matched[bidx] = true;
                        let probe = self.pending_probe.as_ref().expect("probe row queued");
                        out.push(concat_rows(probe, &self.build_rows[bidx]));
                        appended += 1;
                        drained += 1;
                    }
                    scope.rows_out(drained);
                    if appended >= limit || self.scratch.is_empty() {
                        break;
                    }
                    while appended < limit && self.pending_pos >= self.pending.len() {
                        let Some(probe_row) = self.scratch.pop_front() else {
                            break;
                        };
                        scope.rows_in(1);
                        scope.cpu(ctx.cost.hash_probe_row_ns * factor);
                        let key = key_of(&probe_row, &self.probe_keys);
                        let matches: &[usize] = if key_has_null(&key) {
                            &[]
                        } else {
                            self.map.get(&key).map_or(&[][..], |v| &v[..])
                        };
                        match self.kind {
                            JoinKind::Inner => {
                                if !matches.is_empty() {
                                    self.pending = matches.to_vec();
                                    self.pending_pos = 0;
                                    self.pending_probe = Some(probe_row);
                                }
                            }
                            JoinKind::LeftOuter | JoinKind::FullOuter => {
                                if matches.is_empty() {
                                    out.push(concat_rows(
                                        &probe_row,
                                        &super::null_row(self.build_arity),
                                    ));
                                    scope.rows_out(1);
                                    appended += 1;
                                } else {
                                    self.pending = matches.to_vec();
                                    self.pending_pos = 0;
                                    self.pending_probe = Some(probe_row);
                                }
                            }
                            JoinKind::LeftSemi => {
                                if !matches.is_empty() {
                                    for m in matches.iter().copied() {
                                        self.matched[m] = true;
                                    }
                                    out.push(probe_row);
                                    scope.rows_out(1);
                                    appended += 1;
                                }
                            }
                            JoinKind::LeftAnti => {
                                if matches.is_empty() {
                                    out.push(probe_row);
                                    scope.rows_out(1);
                                    appended += 1;
                                }
                            }
                        }
                    }
                }
                scope.finish();
            }
            if appended > 0 {
                break;
            }
            if self.probe_done {
                // FullOuter tail: unmatched build rows padded with NULLs on
                // the probe side. The tail charges nothing, so the post-loop
                // count is snapshot-atomic like the pending drain above.
                if self.kind == JoinKind::FullOuter {
                    let mut padded = 0u64;
                    while self.unmatched_pos < self.build_rows.len() && appended < limit {
                        let i = self.unmatched_pos;
                        self.unmatched_pos += 1;
                        if !self.matched[i] {
                            let pad = super::null_row(self.probe_arity);
                            out.push(concat_rows(&pad, &self.build_rows[i]));
                            appended += 1;
                            padded += 1;
                        }
                    }
                    ctx.count_output_batch(self.id, padded);
                }
                if appended > 0 {
                    break;
                }
                self.done = true;
                ctx.mark_close(self.id);
                return false;
            }
            if !self.probe.next_batch(ctx, &mut self.scratch, limit) {
                self.probe_done = true;
            }
        }
        true
    }

    fn close(&mut self, ctx: &ExecContext) {
        self.build.close(ctx);
        self.probe.close(ctx);
        ctx.mark_close(self.id);
    }

    fn rewind(&mut self, ctx: &ExecContext) {
        ctx.mark_open(self.id);
        self.build.rewind(ctx);
        self.probe.rewind(ctx);
        self.build_rows.clear();
        self.matched.clear();
        self.map.clear();
        self.built = false;
        self.pending.clear();
        self.pending_probe = None;
        self.pending_pos = 0;
        self.scratch.clear();
        self.probe_done = false;
        self.unmatched_pos = 0;
        self.done = false;
        self.build_phase(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::scan::ConstantScanOp;
    use lqs_plan::CostModel;
    use lqs_storage::Database;

    fn rows(v: &[(i64, i64)]) -> Vec<Vec<Value>> {
        v.iter()
            .map(|&(a, b)| vec![Value::Int(a), Value::Int(b)])
            .collect()
    }

    fn run_join(kind: JoinKind, build: Vec<Vec<Value>>, probe: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
        let db = Database::new();
        let ctx = ExecContext::new(&db, 3, 1, u64::MAX, CostModel::default());
        let b = Box::new(ConstantScanOp::new(NodeId(0), build));
        let p = Box::new(ConstantScanOp::new(NodeId(1), probe));
        let mut j = HashJoinOp::new(
            NodeId(2),
            kind,
            vec![0],
            vec![0],
            None,
            2,
            2,
            16,
            false,
            b,
            p,
        );
        j.open(&ctx);
        let mut out = Vec::new();
        while let Some(r) = j.next(&ctx) {
            out.push(r.to_vec());
        }
        j.close(&ctx);
        out
    }

    #[test]
    fn inner_join_matches() {
        let out = run_join(
            JoinKind::Inner,
            rows(&[(1, 100), (2, 200), (2, 201)]),
            rows(&[(2, 9), (3, 8)]),
        );
        // Probe row (2,9) matches two build rows.
        assert_eq!(out.len(), 2);
        for r in &out {
            assert_eq!(r[0], Value::Int(2)); // probe cols first
            assert_eq!(r[2], Value::Int(2)); // then build cols
        }
    }

    #[test]
    fn left_outer_pads_unmatched_probe() {
        let out = run_join(
            JoinKind::LeftOuter,
            rows(&[(1, 100)]),
            rows(&[(1, 9), (3, 8)]),
        );
        assert_eq!(out.len(), 2);
        assert_eq!(
            out[1],
            vec![Value::Int(3), Value::Int(8), Value::Null, Value::Null]
        );
    }

    #[test]
    fn semi_and_anti() {
        let semi = run_join(
            JoinKind::LeftSemi,
            rows(&[(1, 0), (1, 1)]),
            rows(&[(1, 9), (3, 8)]),
        );
        // Semi emits the probe row once despite two matches, probe cols only.
        assert_eq!(semi, vec![vec![Value::Int(1), Value::Int(9)]]);
        let anti = run_join(JoinKind::LeftAnti, rows(&[(1, 0)]), rows(&[(1, 9), (3, 8)]));
        assert_eq!(anti, vec![vec![Value::Int(3), Value::Int(8)]]);
    }

    #[test]
    fn full_outer_emits_both_sides() {
        let out = run_join(
            JoinKind::FullOuter,
            rows(&[(1, 100), (4, 400)]),
            rows(&[(1, 9), (3, 8)]),
        );
        // (1) match, (3) probe-unmatched, (4) build-unmatched.
        assert_eq!(out.len(), 3);
        assert_eq!(out[2][0], Value::Null); // padded probe side
        assert_eq!(out[2][2], Value::Int(4));
    }

    #[test]
    fn null_keys_never_match() {
        let build = vec![vec![Value::Null, Value::Int(1)]];
        let probe = vec![vec![Value::Null, Value::Int(2)]];
        assert!(run_join(JoinKind::Inner, build.clone(), probe.clone()).is_empty());
        // But LeftOuter still preserves the probe row.
        let out = run_join(JoinKind::LeftOuter, build, probe);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0][2], Value::Null);
    }

    #[test]
    fn rewind_mid_batch_discards_scratch_and_pending() {
        // Batched path: a small limit against a multi-match build leaves
        // probe rows staged in scratch and matches queued in pending; a
        // rewind at that point must discard both, rebuild, and replay the
        // complete join output.
        let db = Database::new();
        let ctx = ExecContext::new(&db, 3, 1, u64::MAX, CostModel::default());
        let build: Vec<Vec<Value>> = (0..4).map(|v| vec![Value::Int(1), Value::Int(v)]).collect();
        let probe: Vec<Vec<Value>> = (0..8).map(|v| vec![Value::Int(1), Value::Int(v)]).collect();
        let b = Box::new(ConstantScanOp::new(NodeId(0), build));
        let p = Box::new(ConstantScanOp::new(NodeId(1), probe));
        let mut j = HashJoinOp::new(
            NodeId(2),
            JoinKind::Inner,
            vec![0],
            vec![0],
            None,
            2,
            2,
            16,
            false,
            b,
            p,
        );
        j.open(&ctx);
        let mut batch = RowBatch::default();
        // Each probe row matches 4 build rows; limit 2 leaves pending
        // matches queued and probe rows staged in scratch.
        assert!(j.next_batch(&ctx, &mut batch, 2));
        assert_eq!(batch.len(), 2);
        j.rewind(&ctx);
        let mut total = 0usize;
        loop {
            batch.clear();
            if !j.next_batch(&ctx, &mut batch, 5) {
                break;
            }
            total += batch.len();
        }
        assert_eq!(total, 8 * 4);
        j.close(&ctx);
    }

    #[test]
    fn bitmap_published_during_build() {
        let db = Database::new();
        let ctx = ExecContext::new(&db, 3, 1, u64::MAX, CostModel::default());
        let b = Box::new(ConstantScanOp::new(NodeId(0), rows(&[(1, 0), (2, 0)])));
        let p = Box::new(ConstantScanOp::new(NodeId(1), vec![]));
        let mut j = HashJoinOp::new(
            NodeId(2),
            JoinKind::Inner,
            vec![0],
            vec![0],
            Some(BitmapId(0)),
            2,
            2,
            16,
            false,
            b,
            p,
        );
        j.open(&ctx);
        assert!(ctx.bitmap_may_contain(BitmapId(0), &[Value::Int(1)]));
        assert!(!ctx.bitmap_may_contain(BitmapId(0), &[Value::Int(99)]));
        j.close(&ctx);
    }

    #[test]
    fn build_consumed_during_open() {
        let db = Database::new();
        let ctx = ExecContext::new(&db, 3, 1, u64::MAX, CostModel::default());
        let b = Box::new(ConstantScanOp::new(NodeId(0), rows(&[(1, 0), (2, 0)])));
        let p = Box::new(ConstantScanOp::new(NodeId(1), rows(&[(1, 5)])));
        let mut j = HashJoinOp::new(
            NodeId(2),
            JoinKind::Inner,
            vec![0],
            vec![0],
            None,
            2,
            2,
            16,
            false,
            b,
            p,
        );
        j.open(&ctx);
        // Build side (node 0) fully consumed before any next().
        assert_eq!(ctx.counters_of(NodeId(0)).rows_output, 2);
        assert_eq!(ctx.counters_of(NodeId(1)).rows_output, 0);
        j.close(&ctx);
    }
}
