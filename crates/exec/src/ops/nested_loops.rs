//! Nested-loops join with optional outer-side buffering.
//!
//! The inner child is re-executed (rewound) once per outer row with the
//! outer row pushed as correlation context, which is how correlated index
//! seeks receive their parameters.
//!
//! With `outer_buffer > 1` the operator prefetches a block of outer rows
//! before probing — the real engine does this for I/O locality on index
//! nested loops — which makes it **semi-blocking** (§4.4): the outer
//! subtree's counters race ahead of the join's output, and with a large
//! buffer the outer driver node can reach 100% while the join has barely
//! started (the failure mode the paper describes for driver-node progress).

use super::sort::CONSUME_BATCH;
use super::{concat_rows, null_row, BoxedOperator, Operator, RowBatch};
use crate::context::ExecContext;
use lqs_plan::{Expr, JoinKind, NodeId};
use lqs_storage::Row;
use std::collections::VecDeque;

pub struct NestedLoopsOp {
    id: NodeId,
    kind: JoinKind,
    predicate: Option<Expr>,
    outer_buffer: usize,
    inner_arity: usize,
    outer: BoxedOperator,
    inner: BoxedOperator,
    buffer: VecDeque<Row>,
    outer_done: bool,
    cur_outer: Option<Row>,
    /// Whether the correlation context for `cur_outer` is pushed.
    ctx_pushed: bool,
    inner_opened: bool,
    cur_matched: bool,
    done: bool,
}

impl NestedLoopsOp {
    pub(crate) fn new(
        id: NodeId,
        kind: JoinKind,
        predicate: Option<Expr>,
        outer_buffer: usize,
        inner_arity: usize,
        outer: BoxedOperator,
        inner: BoxedOperator,
    ) -> Self {
        assert!(
            kind != JoinKind::FullOuter,
            "nested loops cannot implement FULL OUTER joins"
        );
        NestedLoopsOp {
            id,
            kind,
            predicate,
            outer_buffer: outer_buffer.max(1),
            inner_arity,
            outer,
            inner,
            buffer: VecDeque::new(),
            outer_done: false,
            cur_outer: None,
            ctx_pushed: false,
            inner_opened: false,
            cur_matched: false,
            done: false,
        }
    }

    /// Prefetch up to `outer_buffer` outer rows (semi-blocking behaviour).
    fn refill(&mut self, ctx: &ExecContext) {
        if ctx.batch_path_ok() {
            let mut scratch = RowBatch::with_capacity(CONSUME_BATCH.min(self.outer_buffer));
            while self.buffer.len() < self.outer_buffer && !self.outer_done {
                let want = (self.outer_buffer - self.buffer.len()).min(CONSUME_BATCH);
                scratch.clear();
                if !self.outer.next_batch(ctx, &mut scratch, want) {
                    self.outer_done = true;
                    break;
                }
                ctx.count_input(self.id, scratch.len() as u64);
                let mut scope = ctx.batch_charge(self.id);
                while let Some(row) = scratch.pop_front() {
                    scope.cpu(ctx.cost.nl_outer_row_ns);
                    self.buffer.push_back(row);
                }
                scope.finish();
            }
        } else {
            while self.buffer.len() < self.outer_buffer && !self.outer_done {
                match self.outer.next(ctx) {
                    Some(r) => {
                        ctx.count_input(self.id, 1);
                        ctx.charge_cpu(self.id, ctx.cost.nl_outer_row_ns);
                        self.buffer.push_back(r);
                    }
                    None => self.outer_done = true,
                }
            }
        }
        ctx.set_buffered(self.id, self.buffer.len() as u64);
    }

    /// Bind the next outer row and (re)start the inner side.
    fn advance_outer(&mut self, ctx: &ExecContext) -> bool {
        if self.ctx_pushed {
            ctx.pop_outer();
            self.ctx_pushed = false;
        }
        if self.buffer.is_empty() {
            self.refill(ctx);
        }
        let Some(outer) = self.buffer.pop_front() else {
            self.cur_outer = None;
            return false;
        };
        ctx.set_buffered(self.id, self.buffer.len() as u64);
        ctx.count_processed(self.id, 1);
        ctx.push_outer(outer.clone());
        self.ctx_pushed = true;
        self.cur_outer = Some(outer);
        self.cur_matched = false;
        if self.inner_opened {
            self.inner.rewind(ctx);
        } else {
            self.inner.open(ctx);
            self.inner_opened = true;
        }
        true
    }
}

impl Operator for NestedLoopsOp {
    fn open(&mut self, ctx: &ExecContext) {
        ctx.mark_open(self.id);
        self.outer.open(ctx);
        // The inner child is opened lazily, once a correlation binding
        // exists.
    }

    fn next(&mut self, ctx: &ExecContext) -> Option<Row> {
        if self.done {
            return None;
        }
        loop {
            if self.cur_outer.is_none() && !self.advance_outer(ctx) {
                self.done = true;
                ctx.mark_close(self.id);
                return None;
            }
            let outer = self.cur_outer.clone().expect("bound above");
            match self.inner.next(ctx) {
                Some(inner_row) => {
                    ctx.count_input(self.id, 1);
                    ctx.charge_cpu(self.id, ctx.cost.nl_pair_ns);
                    let combined = concat_rows(&outer, &inner_row);
                    if let Some(p) = &self.predicate {
                        if !p.matches(&combined) {
                            continue;
                        }
                    }
                    match self.kind {
                        JoinKind::Inner | JoinKind::LeftOuter => {
                            self.cur_matched = true;
                            ctx.count_output(self.id);
                            return Some(combined);
                        }
                        JoinKind::LeftSemi => {
                            // One match suffices; move to the next outer row.
                            self.cur_outer = None;
                            ctx.count_output(self.id);
                            return Some(outer);
                        }
                        JoinKind::LeftAnti => {
                            // A match disqualifies this outer row.
                            self.cur_matched = true;
                            self.cur_outer = None;
                        }
                        JoinKind::FullOuter => unreachable!("rejected in new()"),
                    }
                }
                None => {
                    // Inner exhausted for this outer row.
                    let unmatched = !self.cur_matched;
                    self.cur_outer = None;
                    match self.kind {
                        JoinKind::LeftOuter if unmatched => {
                            ctx.count_output(self.id);
                            return Some(concat_rows(&outer, &null_row(self.inner_arity)));
                        }
                        JoinKind::LeftAnti if unmatched => {
                            ctx.count_output(self.id);
                            return Some(outer);
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    fn close(&mut self, ctx: &ExecContext) {
        if self.ctx_pushed {
            ctx.pop_outer();
            self.ctx_pushed = false;
        }
        self.outer.close(ctx);
        if self.inner_opened {
            self.inner.close(ctx);
        }
        ctx.mark_close(self.id);
    }

    fn rewind(&mut self, ctx: &ExecContext) {
        ctx.mark_open(self.id);
        if self.ctx_pushed {
            ctx.pop_outer();
            self.ctx_pushed = false;
        }
        self.outer.rewind(ctx);
        self.buffer.clear();
        // Keep the gauge in step with the discarded buffer (same phantom-rows
        // leak as the exchange rewind).
        ctx.set_buffered(self.id, 0);
        self.outer_done = false;
        self.cur_outer = None;
        self.cur_matched = false;
        self.done = false;
        // The inner child is rewound per outer row as usual.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::scan::ConstantScanOp;
    use lqs_plan::{CostModel, Expr};
    use lqs_storage::{Database, Value};

    fn rows(v: &[i64]) -> Vec<Vec<Value>> {
        v.iter().map(|&a| vec![Value::Int(a)]).collect()
    }

    fn run_nl(
        kind: JoinKind,
        outer: Vec<Vec<Value>>,
        inner: Vec<Vec<Value>>,
        pred: Option<Expr>,
        buffer: usize,
    ) -> Vec<Vec<Value>> {
        let db = Database::new();
        let ctx = ExecContext::new(&db, 3, 0, u64::MAX, CostModel::default());
        let o = Box::new(ConstantScanOp::new(NodeId(0), outer));
        let i = Box::new(ConstantScanOp::new(NodeId(1), inner));
        let mut j = NestedLoopsOp::new(NodeId(2), kind, pred, buffer, 1, o, i);
        j.open(&ctx);
        let mut out = Vec::new();
        while let Some(r) = j.next(&ctx) {
            out.push(r.to_vec());
        }
        j.close(&ctx);
        out
    }

    fn eq_pred() -> Option<Expr> {
        Some(Expr::col(0).eq(Expr::col(1)))
    }

    #[test]
    fn inner_nl_cross_and_filter() {
        let out = run_nl(JoinKind::Inner, rows(&[1, 2]), rows(&[2, 3]), eq_pred(), 1);
        assert_eq!(out, vec![vec![Value::Int(2), Value::Int(2)]]);
        // No predicate = cross join.
        let out = run_nl(JoinKind::Inner, rows(&[1, 2]), rows(&[2, 3]), None, 1);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn left_outer_nl() {
        let out = run_nl(JoinKind::LeftOuter, rows(&[1, 2]), rows(&[2]), eq_pred(), 1);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], vec![Value::Int(1), Value::Null]);
        assert_eq!(out[1], vec![Value::Int(2), Value::Int(2)]);
    }

    #[test]
    fn semi_anti_nl() {
        let semi = run_nl(
            JoinKind::LeftSemi,
            rows(&[1, 2, 3]),
            rows(&[2, 3]),
            eq_pred(),
            1,
        );
        assert_eq!(semi, vec![vec![Value::Int(2)], vec![Value::Int(3)]]);
        let anti = run_nl(
            JoinKind::LeftAnti,
            rows(&[1, 2, 3]),
            rows(&[2]),
            eq_pred(),
            1,
        );
        assert_eq!(anti, vec![vec![Value::Int(1)], vec![Value::Int(3)]]);
    }

    #[test]
    fn buffered_outer_races_ahead() {
        // With a huge buffer, the entire outer side is consumed before the
        // first output row — the §4.4 semi-blocking failure mode.
        let db = Database::new();
        let ctx = ExecContext::new(&db, 3, 0, u64::MAX, CostModel::default());
        let o = Box::new(ConstantScanOp::new(NodeId(0), rows(&[1, 2, 3, 4, 5])));
        let i = Box::new(ConstantScanOp::new(NodeId(1), rows(&[1])));
        let mut j = NestedLoopsOp::new(NodeId(2), JoinKind::Inner, None, usize::MAX, 1, o, i);
        j.open(&ctx);
        let first = j.next(&ctx).unwrap();
        assert_eq!(first[0], Value::Int(1));
        // Outer child fully consumed already.
        assert_eq!(ctx.counters_of(NodeId(0)).rows_output, 5);
        // Join only processed one outer row so far.
        assert_eq!(ctx.counters_of(NodeId(2)).rows_processed, 1);
        assert_eq!(ctx.counters_of(NodeId(2)).rows_buffered, 4);
        j.close(&ctx);
    }

    #[test]
    fn rewind_resets_buffered_gauge() {
        // Same phantom-rows leak as the exchange: the outer prefetch buffer
        // is discarded on rewind, so the gauge must drop with it.
        let db = Database::new();
        let ctx = ExecContext::new(&db, 3, 0, u64::MAX, CostModel::default());
        let o = Box::new(ConstantScanOp::new(NodeId(0), rows(&[1, 2, 3, 4, 5])));
        let i = Box::new(ConstantScanOp::new(NodeId(1), rows(&[1])));
        let mut j = NestedLoopsOp::new(NodeId(2), JoinKind::Inner, None, 64, 1, o, i);
        j.open(&ctx);
        let _ = j.next(&ctx);
        assert!(ctx.counters_of(NodeId(2)).rows_buffered > 0);
        j.rewind(&ctx);
        assert_eq!(ctx.counters_of(NodeId(2)).rows_buffered, 0);
        j.close(&ctx);
    }

    #[test]
    fn rewind_mid_batch_restarts_outer() {
        // Batched path: the outer prefetch buffer is filled by the
        // vectorized refill; a rewind with rows still buffered must discard
        // them, zero the gauge, and replay the full cross product.
        let db = Database::new();
        let ctx = ExecContext::new(&db, 3, 0, u64::MAX, CostModel::default());
        let o = Box::new(ConstantScanOp::new(NodeId(0), rows(&[1, 2, 3, 4, 5])));
        let i = Box::new(ConstantScanOp::new(NodeId(1), rows(&[7])));
        let mut j = NestedLoopsOp::new(NodeId(2), JoinKind::Inner, None, 64, 1, o, i);
        j.open(&ctx);
        let mut batch = RowBatch::default();
        assert!(j.next_batch(&ctx, &mut batch, 2));
        assert!(ctx.counters_of(NodeId(2)).rows_buffered > 0);
        j.rewind(&ctx);
        assert_eq!(ctx.counters_of(NodeId(2)).rows_buffered, 0);
        let mut seen = Vec::new();
        loop {
            batch.clear();
            if !j.next_batch(&ctx, &mut batch, 16) {
                break;
            }
            for r in &batch {
                seen.push(r[0].as_int().unwrap());
            }
        }
        assert_eq!(seen, vec![1, 2, 3, 4, 5]);
        j.close(&ctx);
    }

    #[test]
    fn inner_rewound_per_outer_row() {
        let db = Database::new();
        let ctx = ExecContext::new(&db, 3, 0, u64::MAX, CostModel::default());
        let o = Box::new(ConstantScanOp::new(NodeId(0), rows(&[1, 2, 3])));
        let i = Box::new(ConstantScanOp::new(NodeId(1), rows(&[7])));
        let mut j = NestedLoopsOp::new(NodeId(2), JoinKind::Inner, None, 1, 1, o, i);
        j.open(&ctx);
        while j.next(&ctx).is_some() {}
        // Inner executed 3 times (1 open + 2 rewinds), emitting 3 rows total.
        assert_eq!(ctx.counters_of(NodeId(1)).executions, 3);
        assert_eq!(ctx.counters_of(NodeId(1)).rows_output, 3);
        j.close(&ctx);
    }

    #[test]
    fn empty_outer() {
        assert!(run_nl(JoinKind::Inner, vec![], rows(&[1]), None, 1).is_empty());
    }
}
