//! # lqs-exec — the instrumented query execution engine
//!
//! A single-process, demand-driven iterator (Volcano / GetNext) engine whose
//! sole consumer-facing product is its *counter trace*: per-operator DMV
//! counters sampled on a deterministic virtual clock, exactly the interface
//! the paper's client-side progress estimator polls (§2).
//!
//! * [`context`] — virtual clock, counter charging, snapshot recording,
//!   runtime bitmaps, nested-loops correlation state.
//! * [`dmv`] — the `sys.dm_exec_query_profiles` analog.
//! * [`bloom`] — Bloom filters backing bitmap semi-join reduction (§4.3).
//! * [`ops`] — ~20 physical operators, including the behaviours the paper's
//!   techniques target: blocking sorts/hash aggregates (§4.5), buffered
//!   nested loops and exchanges (§4.4), storage-pushed predicates (§4.3),
//!   and batch-mode columnstore scans (§4.7).
//! * [`executor`] — runs a plan to completion and returns the DMV trace plus
//!   ground-truth cardinalities and timings.
//!
//! Execution can additionally stream [`lqs_obs`] trace events (operator
//! lifecycle, phase transitions, buffer high-water marks, bitmap builds,
//! snapshot ticks) into an [`lqs_obs::EventSink`] via
//! [`executor::execute_traced`]; untraced runs pay nothing.

// Operator structs are documented inline; public fields of operators are
// implementation detail, so missing_docs is not enforced for this crate.

pub mod bloom;
pub mod context;
pub mod dmv;
pub mod executor;
pub mod fault;
pub mod metrics;
pub mod ops;
mod pred;

pub use context::{
    AbortReason, BatchCharge, CancellationToken, ExecContext, QueryAborted, SnapshotPublisher,
    TeePublisher,
};
pub use dmv::{DmvSnapshot, NodeCounters};
pub use executor::{
    estimated_duration_ns, execute, execute_hooked, execute_traced, plan_node_names, AbortedQuery,
    ExecHooks, ExecMode, ExecOptions, QueryRun,
};
pub use fault::{
    FaultInjector, GetNextFault, IdentityFilter, IoVerdict, QueryFault, SnapshotFilter,
};
pub use metrics::ExecMetrics;
pub use ops::{build_operator, BoxedOperator, Operator, RowBatch};
