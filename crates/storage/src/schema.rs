//! Table schemas: named, typed columns.

use crate::value::{DataType, Value};
use std::sync::Arc;

/// A single column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name, unique within its schema.
    pub name: String,
    /// Logical type.
    pub data_type: DataType,
    /// Whether NULLs are permitted.
    pub nullable: bool,
}

impl Column {
    /// A non-nullable column.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Column {
            name: name.into(),
            data_type,
            nullable: false,
        }
    }

    /// A nullable column.
    pub fn nullable(name: impl Into<String>, data_type: DataType) -> Self {
        Column {
            name: name.into(),
            data_type,
            nullable: true,
        }
    }
}

/// An ordered list of columns. Cheap to clone (shared via `Arc`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Arc<[Column]>,
}

impl Schema {
    /// Build a schema from columns.
    ///
    /// # Panics
    /// Panics if two columns share a name — schemas are authored by hand in
    /// the workload generators and a duplicate is always a programming error.
    pub fn new(columns: Vec<Column>) -> Self {
        for (i, a) in columns.iter().enumerate() {
            for b in &columns[i + 1..] {
                assert_ne!(a.name, b.name, "duplicate column name {:?}", a.name);
            }
        }
        Schema {
            columns: columns.into(),
        }
    }

    /// All columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True if the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Ordinal of the column called `name`, if any.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// The column at `idx`.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Validates that `row` matches this schema (arity, types, nullability).
    pub fn validate_row(&self, row: &[Value]) -> Result<(), SchemaError> {
        if row.len() != self.columns.len() {
            return Err(SchemaError::Arity {
                expected: self.columns.len(),
                got: row.len(),
            });
        }
        for (col, v) in self.columns.iter().zip(row) {
            if v.is_null() {
                if !col.nullable {
                    return Err(SchemaError::UnexpectedNull {
                        column: col.name.clone(),
                    });
                }
            } else if !col.data_type.accepts(v.data_type()) {
                return Err(SchemaError::TypeMismatch {
                    column: col.name.clone(),
                    expected: col.data_type,
                    got: v.data_type(),
                });
            }
        }
        Ok(())
    }
}

/// Row-vs-schema validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// Row has the wrong number of values.
    Arity {
        /// Schema arity.
        expected: usize,
        /// Row arity.
        got: usize,
    },
    /// NULL in a non-nullable column.
    UnexpectedNull {
        /// Offending column.
        column: String,
    },
    /// Value type does not match the column type.
    TypeMismatch {
        /// Offending column.
        column: String,
        /// Declared type.
        expected: DataType,
        /// Actual type.
        got: DataType,
    },
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemaError::Arity { expected, got } => {
                write!(f, "row arity {got} does not match schema arity {expected}")
            }
            SchemaError::UnexpectedNull { column } => {
                write!(f, "NULL in non-nullable column {column:?}")
            }
            SchemaError::TypeMismatch {
                column,
                expected,
                got,
            } => write!(f, "column {column:?} expects {expected}, got {got}"),
        }
    }
}

impl std::error::Error for SchemaError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::nullable("name", DataType::Str),
        ])
    }

    #[test]
    fn index_of_finds_columns() {
        let s = schema();
        assert_eq!(s.index_of("id"), Some(0));
        assert_eq!(s.index_of("name"), Some(1));
        assert_eq!(s.index_of("missing"), None);
    }

    #[test]
    fn validate_accepts_good_row() {
        let s = schema();
        assert!(s.validate_row(&[Value::Int(1), Value::str("a")]).is_ok());
        assert!(s.validate_row(&[Value::Int(1), Value::Null]).is_ok());
    }

    #[test]
    fn validate_rejects_bad_arity() {
        let s = schema();
        assert!(matches!(
            s.validate_row(&[Value::Int(1)]),
            Err(SchemaError::Arity { .. })
        ));
    }

    #[test]
    fn validate_rejects_null_in_non_nullable() {
        let s = schema();
        assert!(matches!(
            s.validate_row(&[Value::Null, Value::Null]),
            Err(SchemaError::UnexpectedNull { .. })
        ));
    }

    #[test]
    fn validate_rejects_type_mismatch() {
        let s = schema();
        assert!(matches!(
            s.validate_row(&[Value::str("x"), Value::Null]),
            Err(SchemaError::TypeMismatch { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "duplicate column name")]
    fn duplicate_columns_panic() {
        Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("a", DataType::Int),
        ]);
    }
}
