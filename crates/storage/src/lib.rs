//! # lqs-storage — storage engine substrate
//!
//! The storage layer underneath the LQS reproduction's query execution
//! engine:
//!
//! * [`value`] / [`schema`] — typed scalar values and table schemas.
//! * [`table`] — heap tables with an 8 KiB page-packing model, so scans have
//!   meaningful *logical read* counts (needed by the paper's §4.3 technique,
//!   which estimates scan progress from the fraction of I/Os issued).
//! * [`btree`] — paged B+tree indexes (clustered and nonclustered) with
//!   realistic height/leaf accounting for Index Seek / Index Scan costing.
//! * [`columnstore`] — segment-oriented columnstore indexes with min/max
//!   segment metadata; batch-mode scans report *segments processed*, the
//!   progress denominator of §4.7.
//! * [`stats`] — equi-depth histograms and distinct counts backing the mini
//!   query optimizer, so cardinality misestimates arise from real modelling
//!   assumptions rather than injected noise.
//! * [`db`] — the catalog tying it together, including the simulated
//!   `sys.column_store_segments` DMV.

#![warn(missing_docs)]

pub mod btree;
pub mod columnstore;
pub mod db;
pub mod schema;
pub mod stats;
pub mod table;
pub mod value;

pub use btree::BTreeIndex;
pub use columnstore::{ColumnstoreIndex, SEGMENT_SIZE};
pub use db::{ColumnstoreId, Database, IndexId, TableId};
pub use schema::{Column, Schema};
pub use stats::TableStats;
pub use table::{Row, RowId, Table, PAGE_SIZE};
pub use value::{DataType, Value};
