//! Table and column statistics: row counts, distinct counts and equi-depth
//! histograms.
//!
//! These back the mini query optimizer in `lqs-plan`. The point of building
//! real histograms (instead of injecting synthetic estimation noise) is that
//! the optimizer's cardinality errors then arise from the same modelling
//! assumptions that break in production systems — uniformity within buckets,
//! independence between predicates, containment for joins — which is exactly
//! the error regime the paper's refinement and bounding techniques target.

use crate::table::Table;
use crate::value::Value;
use std::collections::HashSet;

/// Number of histogram buckets (SQL Server uses up to 200 steps).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// One equi-depth histogram bucket: values in `(prev_upper, upper]`.
#[derive(Debug, Clone)]
pub struct Bucket {
    /// Inclusive upper bound of the bucket.
    pub upper: Value,
    /// Rows with value equal to `upper` (like SQL Server's EQ_ROWS).
    pub eq_rows: f64,
    /// Rows strictly inside the bucket, excluding `upper` (RANGE_ROWS).
    pub range_rows: f64,
    /// Distinct values strictly inside the bucket (DISTINCT_RANGE_ROWS).
    pub range_distinct: f64,
}

/// Equi-depth histogram over the non-null values of one column.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<Bucket>,
    /// Total non-null rows summarized.
    total_rows: f64,
    /// Smallest non-null value.
    min: Option<Value>,
}

impl Histogram {
    /// Build from a column's values (nulls are excluded from the histogram;
    /// they are tracked separately in [`ColumnStats`]).
    pub fn build(values: &mut Vec<Value>) -> Self {
        values.retain(|v| !v.is_null());
        values.sort();
        let n = values.len();
        if n == 0 {
            return Histogram {
                buckets: Vec::new(),
                total_rows: 0.0,
                min: None,
            };
        }
        let min = values.first().cloned();
        let per_bucket = n.div_ceil(HISTOGRAM_BUCKETS);
        let mut buckets = Vec::new();
        let mut i = 0usize;
        while i < n {
            // Tentative bucket end; extend to cover all duplicates of the
            // boundary value so each distinct value lands in one bucket.
            let mut end = (i + per_bucket).min(n) - 1;
            while end + 1 < n && values[end + 1] == values[end] {
                end += 1;
            }
            let upper = values[end].clone();
            // Count rows equal to upper within [i, end].
            let mut eq = 0usize;
            let mut j = end;
            loop {
                if values[j] == upper {
                    eq += 1;
                } else {
                    break;
                }
                if j == i {
                    break;
                }
                j -= 1;
            }
            let range = end + 1 - i - eq;
            let mut distinct = 0usize;
            let mut prev: Option<&Value> = None;
            // Range rows are the bucket's values below `upper`; the `eq` rows
            // sort last, so they occupy `[i, i + range)`.
            for v in &values[i..i + range] {
                if prev != Some(v) {
                    distinct += 1;
                    prev = Some(v);
                }
            }
            buckets.push(Bucket {
                upper,
                eq_rows: eq as f64,
                range_rows: range as f64,
                range_distinct: distinct as f64,
            });
            i = end + 1;
        }
        Histogram {
            buckets,
            total_rows: n as f64,
            min,
        }
    }

    /// Histogram buckets, ascending by upper bound.
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// Total non-null rows summarized.
    pub fn total_rows(&self) -> f64 {
        self.total_rows
    }

    /// Estimated number of rows with value exactly `v` (uniformity within the
    /// containing bucket).
    pub fn estimate_eq(&self, v: &Value) -> f64 {
        if self.buckets.is_empty() || v.is_null() {
            return 0.0;
        }
        if let Some(min) = &self.min {
            if v < min {
                return 0.0;
            }
        }
        let idx = self.buckets.partition_point(|b| &b.upper < v);
        let Some(b) = self.buckets.get(idx) else {
            return 0.0; // above max
        };
        if &b.upper == v {
            b.eq_rows
        } else if b.range_distinct > 0.0 {
            b.range_rows / b.range_distinct
        } else {
            0.0
        }
    }

    /// Estimated rows in `(lo, hi)` with configurable bound inclusivity;
    /// `None` means unbounded on that side.
    pub fn estimate_range(
        &self,
        lo: Option<&Value>,
        lo_inclusive: bool,
        hi: Option<&Value>,
        hi_inclusive: bool,
    ) -> f64 {
        if self.buckets.is_empty() {
            return 0.0;
        }
        // For the low bound, `None` means -infinity: nothing is below it.
        let below_lo = match lo {
            None => 0.0,
            Some(_) => self.rows_le(lo, !lo_inclusive),
        };
        let mut rows = self.rows_le(hi, hi_inclusive) - below_lo;
        if rows < 0.0 {
            rows = 0.0;
        }
        rows
    }

    /// Rows with value <= `v` (or < if `inclusive` is false). `None` means
    /// +infinity: all rows.
    fn rows_le(&self, v: Option<&Value>, inclusive: bool) -> f64 {
        let Some(v) = v else {
            return self.total_rows;
        };
        let mut acc = 0.0;
        for b in &self.buckets {
            if &b.upper < v {
                acc += b.range_rows + b.eq_rows;
            } else if &b.upper == v {
                acc += b.range_rows;
                if inclusive {
                    acc += b.eq_rows;
                }
                return acc;
            } else {
                // v falls inside this bucket: assume uniform spread over the
                // distinct values; take half the range as the classic guess.
                acc += b.range_rows * 0.5;
                return acc;
            }
        }
        acc
    }
}

/// Statistics for a single column.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// Distinct non-null values.
    pub distinct: f64,
    /// NULL rows.
    pub nulls: f64,
    /// Histogram over non-null values.
    pub histogram: Histogram,
    /// Average on-page byte width (for row-size estimates).
    pub avg_width: f64,
}

/// Statistics for a whole table.
#[derive(Debug, Clone)]
pub struct TableStats {
    /// Table cardinality.
    pub row_count: f64,
    /// Data pages.
    pub page_count: f64,
    /// Per-column statistics, indexed by ordinal.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Compute full statistics for `table` (a full scan; the simulator has
    /// no sampling because tables are small).
    pub fn compute(table: &Table) -> Self {
        let ncols = table.schema().len();
        let mut columns = Vec::with_capacity(ncols);
        for c in 0..ncols {
            let mut values: Vec<Value> = Vec::with_capacity(table.row_count());
            let mut nulls = 0usize;
            let mut width_sum = 0usize;
            for row in table.rows() {
                let v = &row[c];
                width_sum += v.byte_width();
                if v.is_null() {
                    nulls += 1;
                } else {
                    values.push(v.clone());
                }
            }
            let distinct = {
                let mut set = HashSet::new();
                for v in &values {
                    set.insert(v.clone());
                }
                set.len() as f64
            };
            let histogram = Histogram::build(&mut values);
            columns.push(ColumnStats {
                distinct,
                nulls: nulls as f64,
                histogram,
                avg_width: if table.row_count() == 0 {
                    0.0
                } else {
                    width_sum as f64 / table.row_count() as f64
                },
            });
        }
        TableStats {
            row_count: table.row_count() as f64,
            page_count: table.page_count() as f64,
            columns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Schema};
    use crate::value::DataType;

    fn uniform_table(n: i64) -> Table {
        let mut t = Table::new(
            "t",
            Schema::new(vec![
                Column::new("a", DataType::Int),
                Column::nullable("b", DataType::Int),
            ]),
        );
        for i in 0..n {
            let b = if i % 5 == 0 {
                Value::Null
            } else {
                Value::Int(i % 100)
            };
            t.insert(vec![Value::Int(i), b]).unwrap();
        }
        t
    }

    #[test]
    fn histogram_totals_add_up() {
        let stats = TableStats::compute(&uniform_table(10_000));
        let h = &stats.columns[0].histogram;
        let sum: f64 = h.buckets().iter().map(|b| b.eq_rows + b.range_rows).sum();
        assert_eq!(sum, 10_000.0);
        assert_eq!(h.total_rows(), 10_000.0);
    }

    #[test]
    fn eq_estimate_unique_column() {
        let stats = TableStats::compute(&uniform_table(10_000));
        let h = &stats.columns[0].histogram;
        // Unique column: estimate for any present value should be ~1.
        let est = h.estimate_eq(&Value::Int(4321));
        assert!((est - 1.0).abs() < 1.5, "estimate {est}");
        // Outside the domain.
        assert_eq!(h.estimate_eq(&Value::Int(-5)), 0.0);
        assert_eq!(h.estimate_eq(&Value::Int(1_000_000)), 0.0);
    }

    #[test]
    fn eq_estimate_skewless_duplicates() {
        let stats = TableStats::compute(&uniform_table(10_000));
        let h = &stats.columns[1].histogram;
        // Column b has 100 distinct values over 8000 non-null rows → ~80 each.
        let est = h.estimate_eq(&Value::Int(50));
        assert!((est - 80.0).abs() < 25.0, "estimate {est}");
    }

    #[test]
    fn range_estimate_accuracy_uniform() {
        let stats = TableStats::compute(&uniform_table(10_000));
        let h = &stats.columns[0].histogram;
        let est = h.estimate_range(
            Some(&Value::Int(1000)),
            true,
            Some(&Value::Int(2000)),
            false,
        );
        assert!((est - 1000.0).abs() < 200.0, "estimate {est}");
    }

    #[test]
    fn unbounded_range_covers_all() {
        let stats = TableStats::compute(&uniform_table(1000));
        let h = &stats.columns[0].histogram;
        let est = h.estimate_range(None, true, None, true);
        assert_eq!(est, 1000.0);
    }

    #[test]
    fn null_accounting() {
        let stats = TableStats::compute(&uniform_table(1000));
        assert_eq!(stats.columns[1].nulls, 200.0);
        assert_eq!(stats.columns[1].histogram.total_rows(), 800.0);
    }

    #[test]
    fn distinct_counts() {
        let stats = TableStats::compute(&uniform_table(1000));
        assert_eq!(stats.columns[0].distinct, 1000.0);
        // b = i%100 excluding multiples of 5 (those are NULL) -> 80 distinct.
        assert_eq!(stats.columns[1].distinct, 80.0);
    }

    #[test]
    fn empty_table_stats() {
        let stats = TableStats::compute(&uniform_table(0));
        assert_eq!(stats.row_count, 0.0);
        assert_eq!(stats.columns[0].histogram.estimate_eq(&Value::Int(1)), 0.0);
    }
}
