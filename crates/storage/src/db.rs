//! The database catalog: tables, B+tree indexes, columnstore indexes and
//! statistics, addressed by id.
//!
//! The catalog also exposes the simulator's analog of the
//! `sys.column_store_segments` DMV, which the client-side progress estimator
//! queries for segment totals (paper §4.7).

use crate::btree::BTreeIndex;
use crate::columnstore::ColumnstoreIndex;
use crate::stats::TableStats;
use crate::table::Table;

/// Identifies a table in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub usize);

/// Identifies a B+tree index in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IndexId(pub usize);

/// Identifies a columnstore index in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ColumnstoreId(pub usize);

struct IndexEntry {
    table: TableId,
    index: BTreeIndex,
}

struct ColumnstoreEntry {
    table: TableId,
    index: ColumnstoreIndex,
}

/// One row of the simulated `sys.column_store_segments` view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnstoreSegmentRow {
    /// Owning columnstore index.
    pub columnstore: ColumnstoreId,
    /// Owning table.
    pub table: TableId,
    /// Segment ordinal.
    pub segment_id: usize,
    /// Rows in the segment.
    pub row_count: usize,
}

/// An in-memory database: the unit the executor and planner operate on.
#[derive(Default)]
pub struct Database {
    tables: Vec<Table>,
    stats: Vec<Option<TableStats>>,
    indexes: Vec<IndexEntry>,
    columnstores: Vec<ColumnstoreEntry>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a table. Statistics are computed lazily via
    /// [`Database::analyze`] or eagerly with [`Database::add_table_analyzed`].
    pub fn add_table(&mut self, table: Table) -> TableId {
        let id = TableId(self.tables.len());
        self.tables.push(table);
        self.stats.push(None);
        id
    }

    /// Register a table and immediately compute its statistics.
    pub fn add_table_analyzed(&mut self, table: Table) -> TableId {
        let id = self.add_table(table);
        self.analyze(id);
        id
    }

    /// (Re)compute statistics for a table.
    pub fn analyze(&mut self, id: TableId) {
        self.stats[id.0] = Some(TableStats::compute(&self.tables[id.0]));
    }

    /// The table with the given id.
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.0]
    }

    /// Look up a table by name.
    pub fn table_by_name(&self, name: &str) -> Option<TableId> {
        self.tables
            .iter()
            .position(|t| t.name() == name)
            .map(TableId)
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Statistics for a table.
    ///
    /// # Panics
    /// Panics if the table was never analyzed — the planner requires stats.
    pub fn stats(&self, id: TableId) -> &TableStats {
        self.stats[id.0]
            .as_ref()
            .unwrap_or_else(|| panic!("table {:?} has no statistics; call analyze()", id))
    }

    /// Statistics for a table, or `None` if it was never analyzed.
    /// Robust consumers (the progress estimator's statics pass) use this
    /// and fall back to live physical counts instead of panicking.
    pub fn try_stats(&self, id: TableId) -> Option<&TableStats> {
        self.stats[id.0].as_ref()
    }

    /// Build a B+tree index over `key_columns` of `table`.
    pub fn create_btree_index(
        &mut self,
        name: impl Into<String>,
        table: TableId,
        key_columns: Vec<usize>,
        clustered: bool,
    ) -> IndexId {
        let t = &self.tables[table.0];
        let name = name.into();
        let entries = t
            .rows()
            .iter()
            .enumerate()
            .map(|(rid, row)| {
                let key: crate::btree::Key = key_columns
                    .iter()
                    .map(|&c| row[c].clone())
                    .collect::<Vec<_>>()
                    .into();
                (key, rid)
            })
            .collect();
        let index = BTreeIndex::bulk_load(name, key_columns, clustered, entries);
        let id = IndexId(self.indexes.len());
        self.indexes.push(IndexEntry { table, index });
        id
    }

    /// Build a columnstore index covering all columns of `table`.
    pub fn create_columnstore_index(
        &mut self,
        name: impl Into<String>,
        table: TableId,
    ) -> ColumnstoreId {
        let index = ColumnstoreIndex::build(name, &self.tables[table.0]);
        let id = ColumnstoreId(self.columnstores.len());
        self.columnstores.push(ColumnstoreEntry { table, index });
        id
    }

    /// The B+tree index with the given id.
    pub fn btree(&self, id: IndexId) -> &BTreeIndex {
        &self.indexes[id.0].index
    }

    /// The table an index belongs to.
    pub fn btree_table(&self, id: IndexId) -> TableId {
        self.indexes[id.0].table
    }

    /// The columnstore index with the given id.
    pub fn columnstore(&self, id: ColumnstoreId) -> &ColumnstoreIndex {
        &self.columnstores[id.0].index
    }

    /// The table a columnstore belongs to.
    pub fn columnstore_table(&self, id: ColumnstoreId) -> TableId {
        self.columnstores[id.0].table
    }

    /// The simulated `sys.column_store_segments` view: one row per segment
    /// of every columnstore index in the database.
    pub fn column_store_segments(&self) -> Vec<ColumnstoreSegmentRow> {
        self.columnstores
            .iter()
            .enumerate()
            .flat_map(|(i, e)| {
                e.index
                    .segments()
                    .iter()
                    .map(move |s| ColumnstoreSegmentRow {
                        columnstore: ColumnstoreId(i),
                        table: e.table,
                        segment_id: s.id,
                        row_count: s.row_count,
                    })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Schema};
    use crate::value::{DataType, Value};

    fn db_with_table(n: i64) -> (Database, TableId) {
        let mut t = Table::new(
            "orders",
            Schema::new(vec![
                Column::new("id", DataType::Int),
                Column::new("cust", DataType::Int),
            ]),
        );
        for i in 0..n {
            t.insert(vec![Value::Int(i), Value::Int(i % 37)]).unwrap();
        }
        let mut db = Database::new();
        let id = db.add_table_analyzed(t);
        (db, id)
    }

    #[test]
    fn catalog_lookup() {
        let (db, id) = db_with_table(100);
        assert_eq!(db.table_by_name("orders"), Some(id));
        assert_eq!(db.table_by_name("nope"), None);
        assert_eq!(db.table(id).row_count(), 100);
        assert_eq!(db.stats(id).row_count, 100.0);
    }

    #[test]
    fn btree_index_over_table() {
        let (mut db, id) = db_with_table(1000);
        let ix = db.create_btree_index("ix_cust", id, vec![1], false);
        let (rids, _) = db.btree(ix).seek(&[Value::Int(5)]);
        assert!(!rids.is_empty());
        for rid in rids {
            assert_eq!(db.table(id).row(rid)[1], Value::Int(5));
        }
        assert_eq!(db.btree_table(ix), id);
    }

    #[test]
    fn columnstore_segments_dmv() {
        let (mut db, id) = db_with_table(10_000);
        let cs = db.create_columnstore_index("cs_orders", id);
        let rows = db.column_store_segments();
        assert_eq!(rows.len(), db.columnstore(cs).segment_count());
        let total: usize = rows.iter().map(|r| r.row_count).sum();
        assert_eq!(total, 10_000);
        assert!(rows.iter().all(|r| r.table == id));
    }

    #[test]
    #[should_panic(expected = "has no statistics")]
    fn stats_require_analyze() {
        let mut db = Database::new();
        let t = Table::new("t", Schema::new(vec![Column::new("a", DataType::Int)]));
        let id = db.add_table(t);
        db.stats(id);
    }
}
