//! A paged B+tree used for clustered and nonclustered indexes.
//!
//! The tree stores `(key, RowId)` pairs, where the key is a tuple of
//! [`Value`]s drawn from the indexed columns. Nodes have a fixed fanout so
//! that tree *height* and *leaf-page counts* are realistic, which in turn
//! makes the logical-read accounting of Index Seek / Index Scan operators
//! realistic — seeks charge `height` reads, range scans charge one read per
//! leaf visited.
//!
//! The tree is bulk-loaded (the simulator's tables are immutable once
//! generated) but also supports incremental insertion, which the property
//! tests exercise against a sorted-vector model.

use crate::table::RowId;
use crate::value::Value;
use std::sync::Arc;

/// Composite index key.
pub type Key = Arc<[Value]>;

/// Maximum entries per leaf node (tuned small so scaled-down tables still
/// produce multi-level trees).
pub const LEAF_FANOUT: usize = 64;

/// Maximum children per internal node.
pub const INTERNAL_FANOUT: usize = 64;

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        /// Sorted `(key, rid)` entries. Duplicate keys allowed.
        entries: Vec<(Key, RowId)>,
        /// Next-leaf link for range scans.
        next: Option<usize>,
    },
    Internal {
        /// `separators[i]` is the smallest key in `children[i + 1]`.
        separators: Vec<Key>,
        children: Vec<usize>,
    },
}

/// A B+tree index over one or more columns of a table.
#[derive(Debug, Clone)]
pub struct BTreeIndex {
    name: String,
    /// Ordinals of the indexed columns in the base table schema.
    key_columns: Vec<usize>,
    /// Whether this is the clustered index (leaf = base rows, in our model
    /// the distinction only changes costing done by the planner).
    clustered: bool,
    /// Whether the key is unique (PK indexes): an equality seek on the full
    /// key returns at most one row, which the planner exploits for bounds.
    unique: bool,
    nodes: Vec<Node>,
    root: usize,
    height: usize,
    len: usize,
    first_leaf: usize,
}

impl BTreeIndex {
    /// Bulk-load an index from `(key, rid)` pairs (need not be pre-sorted).
    pub fn bulk_load(
        name: impl Into<String>,
        key_columns: Vec<usize>,
        clustered: bool,
        mut entries: Vec<(Key, RowId)>,
    ) -> Self {
        entries.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        let unique = entries.windows(2).all(|w| w[0].0 != w[1].0);
        let len = entries.len();
        let mut nodes = Vec::new();

        // Build leaves.
        let mut level: Vec<(Key, usize)> = Vec::new(); // (min key, node id)
        if entries.is_empty() {
            nodes.push(Node::Leaf {
                entries: Vec::new(),
                next: None,
            });
            level.push((Arc::from(vec![].into_boxed_slice()), 0));
        } else {
            let mut leaf_ids = Vec::new();
            let mut iter = entries.into_iter().peekable();
            while iter.peek().is_some() {
                let chunk: Vec<(Key, RowId)> = iter.by_ref().take(LEAF_FANOUT).collect();
                let min_key = chunk[0].0.clone();
                let id = nodes.len();
                nodes.push(Node::Leaf {
                    entries: chunk,
                    next: None,
                });
                leaf_ids.push(id);
                level.push((min_key, id));
            }
            // Wire the leaf chain.
            for w in leaf_ids.windows(2) {
                if let Node::Leaf { next, .. } = &mut nodes[w[0]] {
                    *next = Some(w[1]);
                }
            }
        }
        let first_leaf = level[0].1;

        // Build internal levels bottom-up.
        let mut height = 1;
        while level.len() > 1 {
            let mut next_level = Vec::new();
            for chunk in level.chunks(INTERNAL_FANOUT) {
                let min_key = chunk[0].0.clone();
                let id = nodes.len();
                nodes.push(Node::Internal {
                    separators: chunk[1..].iter().map(|(k, _)| k.clone()).collect(),
                    children: chunk.iter().map(|(_, c)| *c).collect(),
                });
                next_level.push((min_key, id));
            }
            level = next_level;
            height += 1;
        }

        BTreeIndex {
            name: name.into(),
            key_columns,
            clustered,
            unique,
            root: level[0].1,
            nodes,
            height,
            len,
            first_leaf,
        }
    }

    /// Index name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Indexed column ordinals.
    pub fn key_columns(&self) -> &[usize] {
        &self.key_columns
    }

    /// Whether this is a clustered index.
    pub fn is_clustered(&self) -> bool {
        self.clustered
    }

    /// Whether the key is unique (no duplicate key values at load time).
    pub fn is_unique(&self) -> bool {
        self.unique
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height (levels from root to leaf inclusive); seeks charge this
    /// many logical reads.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of leaf nodes; a full index scan charges this many reads.
    pub fn leaf_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }

    /// Extract this index's key from a base-table row.
    pub fn key_of(&self, row: &[Value]) -> Key {
        self.key_columns
            .iter()
            .map(|&c| row[c].clone())
            .collect::<Vec<_>>()
            .into()
    }

    fn leaf_for(&self, key: &[Value]) -> usize {
        let mut node = self.root;
        loop {
            match &self.nodes[node] {
                Node::Leaf { .. } => return node,
                Node::Internal {
                    separators,
                    children,
                } => {
                    // Descend to the leftmost child that may hold `key`: with
                    // duplicate keys a run can span several children, and the
                    // leaf chain walks rightward from wherever we land.
                    let idx = separators.partition_point(|s| s.as_ref() < key);
                    node = children[idx];
                }
            }
        }
    }

    /// All `(key, rid)` entries whose key equals `key` exactly.
    ///
    /// Returns the matches plus the number of logical reads performed
    /// (`height` for the root-to-leaf walk, plus one per extra leaf chained
    /// through for duplicate runs).
    pub fn seek(&self, key: &[Value]) -> (Vec<RowId>, usize) {
        self.seek_range(Some(key), true, Some(key), true)
    }

    /// Range seek: rids with `lo <(=) key <(=) hi`; `None` bound = unbounded.
    /// Returns matching rids in key order and the logical reads charged.
    pub fn seek_range(
        &self,
        lo: Option<&[Value]>,
        lo_inclusive: bool,
        hi: Option<&[Value]>,
        hi_inclusive: bool,
    ) -> (Vec<RowId>, usize) {
        let mut reads = self.height;
        let mut leaf = match lo {
            Some(k) => self.leaf_for(k),
            None => self.first_leaf,
        };
        let mut out = Vec::new();
        loop {
            let Node::Leaf { entries, next } = &self.nodes[leaf] else {
                unreachable!("leaf_for returned internal node");
            };
            let mut past_end = false;
            for (k, rid) in entries {
                let k: &[Value] = k.as_ref();
                let above_lo = match lo {
                    None => true,
                    Some(lo) => {
                        if lo_inclusive {
                            k >= lo
                        } else {
                            k > lo
                        }
                    }
                };
                if !above_lo {
                    continue;
                }
                let below_hi = match hi {
                    None => true,
                    Some(hi) => {
                        // Prefix semantics: compare only the bound's length so
                        // composite keys can be sought on a leading prefix.
                        let kp = &k[..hi.len().min(k.len())];
                        if hi_inclusive {
                            kp <= hi
                        } else {
                            kp < hi
                        }
                    }
                };
                if !below_hi {
                    past_end = true;
                    break;
                }
                // Re-check lo with prefix semantics for composite keys.
                let lo_ok = match lo {
                    None => true,
                    Some(lo) => {
                        let kp = &k[..lo.len().min(k.len())];
                        if lo_inclusive {
                            kp >= lo
                        } else {
                            kp > lo
                        }
                    }
                };
                if lo_ok {
                    out.push(*rid);
                }
            }
            if past_end {
                break;
            }
            match next {
                Some(n) => {
                    leaf = *n;
                    reads += 1;
                }
                None => break,
            }
        }
        (out, reads)
    }

    /// Iterate all entries in key order, yielding `(leaf_ordinal, key, rid)`.
    /// The leaf ordinal lets scan operators charge one read per leaf.
    pub fn scan(&self) -> impl Iterator<Item = (usize, &Key, RowId)> + '_ {
        let mut leaf = Some(self.first_leaf);
        let mut ordinal = 0usize;
        std::iter::from_fn(move || -> Option<Vec<(usize, &Key, RowId)>> {
            let l = leaf?;
            let Node::Leaf { entries, next } = &self.nodes[l] else {
                unreachable!()
            };
            let batch: Vec<_> = entries.iter().map(|(k, r)| (ordinal, k, *r)).collect();
            ordinal += 1;
            leaf = *next;
            Some(batch)
        })
        .flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key1(v: i64) -> Key {
        vec![Value::Int(v)].into()
    }

    fn build(n: i64) -> BTreeIndex {
        let entries: Vec<(Key, RowId)> = (0..n).map(|i| (key1(i), i as RowId)).collect();
        BTreeIndex::bulk_load("ix", vec![0], false, entries)
    }

    #[test]
    fn empty_tree() {
        let t = BTreeIndex::bulk_load("ix", vec![0], false, vec![]);
        assert!(t.is_empty());
        assert_eq!(t.seek(&[Value::Int(5)]).0, Vec::<RowId>::new());
        assert_eq!(t.scan().count(), 0);
    }

    #[test]
    fn point_seek_finds_exact() {
        let t = build(1000);
        let (rids, reads) = t.seek(&[Value::Int(123)]);
        assert_eq!(rids, vec![123]);
        assert!(reads >= t.height());
    }

    #[test]
    fn point_seek_missing_key() {
        let t = build(100);
        let (rids, _) = t.seek(&[Value::Int(100)]);
        assert!(rids.is_empty());
    }

    #[test]
    fn duplicates_all_returned() {
        let entries: Vec<(Key, RowId)> = (0..500).map(|i| (key1(i % 7), i as RowId)).collect();
        let t = BTreeIndex::bulk_load("ix", vec![0], false, entries);
        let (rids, _) = t.seek(&[Value::Int(3)]);
        assert_eq!(rids.len(), 500 / 7 + usize::from(3 < 500 % 7));
        // All returned rids actually have key 3.
        for r in rids {
            assert_eq!(r % 7, 3);
        }
    }

    #[test]
    fn range_seek_inclusive_exclusive() {
        let t = build(100);
        let lo = [Value::Int(10)];
        let hi = [Value::Int(20)];
        let (rids, _) = t.seek_range(Some(&lo), true, Some(&hi), false);
        assert_eq!(rids, (10..20).map(|i| i as RowId).collect::<Vec<_>>());
        let (rids, _) = t.seek_range(Some(&lo), false, Some(&hi), true);
        assert_eq!(rids, (11..=20).map(|i| i as RowId).collect::<Vec<_>>());
    }

    #[test]
    fn unbounded_range_is_full_scan() {
        let t = build(321);
        let (rids, _) = t.seek_range(None, true, None, true);
        assert_eq!(rids.len(), 321);
    }

    #[test]
    fn scan_yields_sorted_and_charges_leaves() {
        let t = build(1000);
        let items: Vec<_> = t.scan().collect();
        assert_eq!(items.len(), 1000);
        for w in items.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        let max_leaf = items.iter().map(|(l, _, _)| *l).max().unwrap();
        assert_eq!(max_leaf + 1, t.leaf_count());
    }

    #[test]
    fn multi_level_height() {
        // 100k entries / 64 per leaf ≈ 1563 leaves / 64 ≈ 25 internals / root.
        let t = build(100_000);
        assert_eq!(t.height(), 3);
        assert!(t.leaf_count() >= 100_000 / LEAF_FANOUT);
    }

    #[test]
    fn composite_key_prefix_seek() {
        // Key (a, b); seek on prefix a=2 must return all b values.
        let entries: Vec<(Key, RowId)> = (0..100)
            .map(|i| {
                let k: Key = vec![Value::Int(i / 10), Value::Int(i % 10)].into();
                (k, i as RowId)
            })
            .collect();
        let t = BTreeIndex::bulk_load("ix", vec![0, 1], false, entries);
        let (rids, _) = t.seek(&[Value::Int(2)]);
        assert_eq!(rids, (20..30).map(|i| i as RowId).collect::<Vec<_>>());
    }
}
