//! Columnstore indexes: column-oriented storage in fixed-size row groups
//! ("segments"), mirroring SQL Server's nonclustered columnstore indexes
//! [Larson et al., SIGMOD'11/'13].
//!
//! Two properties matter for the paper's §4.7 batch-mode progress technique:
//!
//! 1. Scans process data **a segment at a time** (batch mode), so GetNext-
//!    level counters are too coarse; the DMV instead exposes *segments
//!    processed*, and progress is `segments_processed / total_segments`.
//! 2. The total number of segments per index is static metadata, exposed in
//!    the simulator's analog of `sys.column_store_segments`
//!    (see [`crate::db::Database::column_store_segments`]).
//!
//! Segments also carry per-column min/max metadata so scans can perform
//! segment elimination for pushed-down range predicates, like the real
//! engine.

use crate::table::{Row, RowId, Table};
use crate::value::Value;

/// Rows per segment. SQL Server packs up to 2^20 rows per row group; the
/// simulator uses 2^10 so scaled-down tables still span many segments
/// (segment counts are the granularity of batch-mode progress, §4.7).
pub const SEGMENT_SIZE: usize = 1024;

/// Per-column metadata within one segment.
#[derive(Debug, Clone)]
pub struct SegmentColumnMeta {
    /// Minimum non-null value in the segment (None if all null/empty).
    pub min: Option<Value>,
    /// Maximum non-null value in the segment.
    pub max: Option<Value>,
}

/// One row group: a contiguous run of rows stored column-wise.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Segment ordinal within the index.
    pub id: usize,
    /// First base-table rid covered.
    pub first_rid: RowId,
    /// Number of rows in the segment.
    pub row_count: usize,
    /// Column-wise data: `columns[c][r]`.
    columns: Vec<Vec<Value>>,
    /// Per-column min/max for segment elimination.
    pub meta: Vec<SegmentColumnMeta>,
}

impl Segment {
    /// Reassemble the row at `offset` within this segment.
    pub fn row(&self, offset: usize) -> Row {
        self.columns
            .iter()
            .map(|col| col[offset].clone())
            .collect::<Vec<_>>()
            .into()
    }

    /// Column-wise access, for batch-mode evaluation.
    pub fn column(&self, c: usize) -> &[Value] {
        &self.columns[c]
    }

    /// Whether a `[lo, hi]` range predicate on column `c` can possibly match
    /// any row of this segment (used for segment elimination).
    pub fn may_match_range(&self, c: usize, lo: Option<&Value>, hi: Option<&Value>) -> bool {
        let m = &self.meta[c];
        let (Some(seg_min), Some(seg_max)) = (&m.min, &m.max) else {
            // Empty / all-null column: only NULL rows, range predicates never
            // match NULL.
            return false;
        };
        if let Some(lo) = lo {
            if seg_max < lo {
                return false;
            }
        }
        if let Some(hi) = hi {
            if seg_min > hi {
                return false;
            }
        }
        true
    }
}

/// A columnstore index over an entire table.
#[derive(Debug, Clone)]
pub struct ColumnstoreIndex {
    name: String,
    segments: Vec<Segment>,
    row_count: usize,
}

impl ColumnstoreIndex {
    /// Build a columnstore index covering all columns of `table`.
    pub fn build(name: impl Into<String>, table: &Table) -> Self {
        let ncols = table.schema().len();
        let rows = table.rows();
        let mut segments = Vec::new();
        let mut first = 0usize;
        while first < rows.len() || (rows.is_empty() && segments.is_empty()) {
            let count = SEGMENT_SIZE.min(rows.len() - first);
            if count == 0 {
                break;
            }
            let mut columns: Vec<Vec<Value>> = vec![Vec::with_capacity(count); ncols];
            for r in &rows[first..first + count] {
                for (c, v) in r.iter().enumerate() {
                    columns[c].push(v.clone());
                }
            }
            let meta = columns
                .iter()
                .map(|col| {
                    let non_null = col.iter().filter(|v| !v.is_null());
                    SegmentColumnMeta {
                        min: non_null.clone().min().cloned(),
                        max: non_null.max().cloned(),
                    }
                })
                .collect();
            segments.push(Segment {
                id: segments.len(),
                first_rid: first,
                row_count: count,
                columns,
                meta,
            });
            first += count;
        }
        ColumnstoreIndex {
            name: name.into(),
            segments,
            row_count: rows.len(),
        }
    }

    /// Index name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All segments in rid order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Number of segments — the denominator of §4.7 progress.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Total rows covered.
    pub fn row_count(&self) -> usize {
        self.row_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Schema};
    use crate::value::DataType;

    fn table(n: i64) -> Table {
        let mut t = Table::new(
            "t",
            Schema::new(vec![
                Column::new("a", DataType::Int),
                Column::nullable("b", DataType::Str),
            ]),
        );
        for i in 0..n {
            let b = if i % 10 == 0 {
                Value::Null
            } else {
                Value::str(format!("s{}", i % 3))
            };
            t.insert(vec![Value::Int(i), b]).unwrap();
        }
        t
    }

    #[test]
    fn segment_partitioning() {
        let cs = ColumnstoreIndex::build("cs", &table(10_000));
        assert_eq!(cs.segment_count(), 10_000_usize.div_ceil(SEGMENT_SIZE));
        assert_eq!(cs.row_count(), 10_000);
        let total: usize = cs.segments().iter().map(|s| s.row_count).sum();
        assert_eq!(total, 10_000);
        // Segments are contiguous.
        let mut expect_first = 0;
        for s in cs.segments() {
            assert_eq!(s.first_rid, expect_first);
            expect_first += s.row_count;
        }
    }

    #[test]
    fn row_reassembly_matches_table() {
        let t = table(5000);
        let cs = ColumnstoreIndex::build("cs", &t);
        let seg = &cs.segments()[1];
        let row = seg.row(10);
        assert_eq!(&row, t.row(seg.first_rid + 10));
    }

    #[test]
    fn min_max_metadata() {
        let cs = ColumnstoreIndex::build("cs", &table(9000));
        let s0 = &cs.segments()[0];
        assert_eq!(s0.meta[0].min, Some(Value::Int(0)));
        assert_eq!(s0.meta[0].max, Some(Value::Int(SEGMENT_SIZE as i64 - 1)));
    }

    #[test]
    fn segment_elimination() {
        let cs = ColumnstoreIndex::build("cs", &table(9000));
        let s0 = &cs.segments()[0];
        // Range entirely above segment 0's max.
        assert!(!s0.may_match_range(0, Some(&Value::Int(100_000)), None));
        // Range overlapping.
        assert!(s0.may_match_range(0, Some(&Value::Int(10)), Some(&Value::Int(20))));
        // Range entirely below min of segment 1.
        let s1 = &cs.segments()[1];
        assert!(!s1.may_match_range(0, None, Some(&Value::Int(5))));
    }

    #[test]
    fn empty_table_has_no_segments() {
        let cs = ColumnstoreIndex::build("cs", &table(0));
        assert_eq!(cs.segment_count(), 0);
    }
}
