//! Heap tables with a page-packing model for logical-I/O accounting.
//!
//! The paper's §4.3 technique ("predicates evaluated in the storage engine")
//! bases progress on the *fraction of logical I/O operations issued* while
//! scanning a table. To make that meaningful in the simulator, every table
//! models an on-disk layout: rows are packed into fixed-size pages and scans
//! report one logical read per page touched.

use crate::schema::{Schema, SchemaError};
use crate::value::Value;
use std::sync::Arc;

/// Simulated page size in bytes (SQL Server uses 8 KiB pages).
pub const PAGE_SIZE: usize = 8192;

/// Per-page header overhead in bytes (slot array, header).
pub const PAGE_HEADER: usize = 96;

/// A row is a boxed slice of values; `Arc` keeps spools/buffers cheap.
pub type Row = Arc<[Value]>;

/// Identifies a row within its table (heap RID).
pub type RowId = usize;

/// A heap table: schema + row store + derived page layout.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    rows: Vec<Row>,
    /// `page_of[r]` = page number holding row `r`.
    page_of: Vec<u32>,
    /// Total number of data pages.
    page_count: usize,
    /// Bytes still free on the last page (greedy packer state).
    space_left: usize,
}

impl Table {
    /// Create an empty table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Table {
            name: name.into(),
            schema,
            rows: Vec::new(),
            page_of: Vec::new(),
            page_count: 0,
            space_left: 0,
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Number of data pages (≥ 1 once any row exists).
    pub fn page_count(&self) -> usize {
        self.page_count
    }

    /// The page number of a row, for I/O charging during scans.
    pub fn page_of(&self, rid: RowId) -> usize {
        self.page_of[rid] as usize
    }

    /// All rows, in heap (insertion) order.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// The row with the given id.
    pub fn row(&self, rid: RowId) -> &Row {
        &self.rows[rid]
    }

    /// Append a row, validating it against the schema.
    pub fn insert(&mut self, row: Vec<Value>) -> Result<RowId, SchemaError> {
        self.schema.validate_row(&row)?;
        let width: usize = row.iter().map(Value::byte_width).sum::<usize>() + 8; // slot overhead
        let rid = self.rows.len();
        // Page packing: greedy fill. Track remaining space in the last page
        // via a small recomputation from the previous row's page.
        let page = if rid == 0 {
            self.space_left = PAGE_SIZE - PAGE_HEADER;
            0
        } else {
            let last_page = self.page_of[rid - 1] as usize;
            if width <= self.space_left {
                last_page
            } else {
                self.space_left = PAGE_SIZE - PAGE_HEADER;
                last_page + 1
            }
        };
        self.space_left = self.space_left.saturating_sub(width);
        self.page_of.push(page as u32);
        self.page_count = page + 1;
        self.rows.push(row.into());
        Ok(rid)
    }

    /// Bulk insert; stops at the first schema violation.
    pub fn insert_all<I>(&mut self, rows: I) -> Result<(), SchemaError>
    where
        I: IntoIterator<Item = Vec<Value>>,
    {
        for r in rows {
            self.insert(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    fn table() -> Table {
        Table::new(
            "t",
            Schema::new(vec![
                Column::new("id", DataType::Int),
                Column::new("payload", DataType::Str),
            ]),
        )
    }

    #[test]
    fn insert_and_read_back() {
        let mut t = table();
        let rid = t.insert(vec![Value::Int(1), Value::str("x")]).unwrap();
        assert_eq!(rid, 0);
        assert_eq!(t.row_count(), 1);
        assert_eq!(t.row(0)[0], Value::Int(1));
    }

    #[test]
    fn schema_violation_rejected() {
        let mut t = table();
        assert!(t.insert(vec![Value::str("no"), Value::str("x")]).is_err());
        assert_eq!(t.row_count(), 0);
    }

    #[test]
    fn page_packing_monotone_and_dense() {
        let mut t = table();
        for i in 0..5000 {
            t.insert(vec![Value::Int(i), Value::str("some payload text")])
                .unwrap();
        }
        // Pages are assigned monotonically.
        for r in 1..t.row_count() {
            assert!(t.page_of(r) >= t.page_of(r - 1));
            assert!(t.page_of(r) <= t.page_of(r - 1) + 1);
        }
        // Each row is 8 (int) + 19 (str) + 8 (slot) = 35 bytes; 8096/35 ≈ 231
        // rows per page.
        let expected_pages = 5000 / 231;
        assert!(
            t.page_count() >= expected_pages - 3 && t.page_count() <= expected_pages + 5,
            "page_count {} not near {}",
            t.page_count(),
            expected_pages
        );
    }

    #[test]
    fn empty_table_has_zero_pages() {
        assert_eq!(table().page_count(), 0);
    }
}
