//! Typed scalar values stored in table rows.
//!
//! The engine is deliberately small: four concrete types cover everything the
//! workloads in the paper's evaluation need (integers, decimals, strings and
//! dates). `Value` carries a total order (`Ord`) so it can be used directly as
//! a B+tree key, a sort key and a hash-join key without per-call-site
//! comparator plumbing.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A single scalar value.
///
/// `Null` sorts before every non-null value, mirroring SQL Server's
/// `ORDER BY` treatment of NULLs (NULLs first ascending).
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit integer (covers int/bigint/identity keys).
    Int(i64),
    /// 64-bit float (covers decimal/numeric in the cost-insensitive sim).
    Float(f64),
    /// Interned UTF-8 string. `Arc<str>` keeps row cloning cheap.
    Str(Arc<str>),
    /// Date as days since an arbitrary epoch.
    Date(i32),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl Into<Arc<str>>) -> Self {
        Value::Str(s.into())
    }

    /// True if this is `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The float payload; `Int` is widened so arithmetic expressions can mix
    /// the two numeric types.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The date payload, if this is a `Date`.
    pub fn as_date(&self) -> Option<i32> {
        match self {
            Value::Date(d) => Some(*d),
            _ => None,
        }
    }

    /// The logical type of this value, used for schema checking.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Null => DataType::Null,
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Str(_) => DataType::Str,
            Value::Date(_) => DataType::Date,
        }
    }

    /// On-page width in bytes, used by the heap's page-packing model to
    /// derive logical-I/O page counts (8 KiB pages, see [`crate::table`]).
    pub fn byte_width(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Int(_) => 8,
            Value::Float(_) => 8,
            Value::Str(s) => 2 + s.len(),
            Value::Date(_) => 4,
        }
    }

    /// Rank used so heterogeneous comparisons are still total.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) | Value::Float(_) => 1,
            Value::Date(_) => 2,
            Value::Str(_) => 3,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            // Int and Float hash through the float image so `Int(2)` and
            // `Float(2.0)` agree with their `Ord`/`Eq` behaviour.
            Value::Int(v) => (*v as f64).to_bits().hash(state),
            Value::Float(v) => v.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
            Value::Date(d) => {
                2u8.hash(state);
                d.hash(state)
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Date(d) => write!(f, "#{d}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

/// Logical column type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// The type of `Value::Null`; compatible with every other type.
    Null,
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// Variable-length string.
    Str,
    /// Date (days since epoch).
    Date,
}

impl DataType {
    /// Whether a value of type `other` may be stored in a column of `self`.
    pub fn accepts(self, other: DataType) -> bool {
        self == other || other == DataType::Null
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Null => "null",
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Str => "str",
            DataType::Date => "date",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn null_sorts_first() {
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Null < Value::str(""));
        assert!(Value::Null < Value::Date(i32::MIN));
    }

    #[test]
    fn mixed_numeric_comparison() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert!(Value::Int(2) < Value::Float(2.5));
        assert!(Value::Float(1.5) < Value::Int(2));
    }

    #[test]
    fn mixed_numeric_hash_consistent_with_eq() {
        assert_eq!(hash_of(&Value::Int(7)), hash_of(&Value::Float(7.0)));
    }

    #[test]
    fn string_ordering() {
        assert!(Value::str("abc") < Value::str("abd"));
        assert_eq!(Value::str("x"), Value::str("x"));
    }

    #[test]
    fn byte_widths() {
        assert_eq!(Value::Int(0).byte_width(), 8);
        assert_eq!(Value::str("hello").byte_width(), 7);
        assert_eq!(Value::Null.byte_width(), 1);
        assert_eq!(Value::Date(1).byte_width(), 4);
    }

    #[test]
    fn data_type_accepts_null() {
        assert!(DataType::Int.accepts(DataType::Null));
        assert!(!DataType::Int.accepts(DataType::Str));
        assert!(DataType::Str.accepts(DataType::Str));
    }

    #[test]
    fn display_round_trip_smoke() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::str("a").to_string(), "'a'");
        assert_eq!(Value::Null.to_string(), "NULL");
    }
}
