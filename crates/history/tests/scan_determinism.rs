//! History-scan invariants on hostile directories: two scans of an
//! unchanged journal directory render byte-for-byte identically, windowed
//! scans select exactly the overlapping sessions, and scans racing a live
//! retention sweep never panic and never double-count a session.

use lqs_exec::{DmvSnapshot, NodeCounters};
use lqs_history::scan_history;
use lqs_journal::record::{SessionMeta, TerminalKind, TerminalRecord};
use lqs_journal::{FsyncPolicy, Journal, JournalConfig};
use lqs_plan::CostModel;
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lqs-history-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn meta(id: u64, name: &str, workload: &str) -> SessionMeta {
    SessionMeta {
        session_id: id,
        name: name.into(),
        workload: workload.into(),
        n_nodes: 2,
        plan_fingerprint: 0xABCD_0000 + id,
        snapshot_target: 64,
        snapshot_interval_ns: Some(1_000),
        cost_model: CostModel::default(),
        exec_mode: lqs_journal::JournalExecMode::Tuple,
        estimator: None,
    }
}

fn snap(ts_ns: u64, step: u64) -> DmvSnapshot {
    DmvSnapshot {
        ts_ns,
        nodes: vec![
            NodeCounters {
                rows_output: step * 3,
                rows_input: step * 4,
                cpu_ns: step * 170,
                logical_reads: step,
                ..NodeCounters::default()
            },
            NodeCounters {
                rows_output: step,
                cpu_ns: step * 40,
                ..NodeCounters::default()
            },
        ],
    }
}

/// Journal one session: `n` snapshots starting at `base_ts`, then a
/// terminal record (unless `interrupted`).
fn write_session(
    journal: &Journal,
    id: u64,
    workload: &str,
    base_ts: u64,
    n: u64,
    kind: Option<TerminalKind>,
) {
    let w = journal
        .writer(meta(id, &format!("q{id}"), workload))
        .expect("open session journal");
    for i in 1..=n {
        w.append_snapshot(&snap(base_ts + i * 1_000, i));
    }
    if let Some(kind) = kind {
        w.append_terminal(&TerminalRecord {
            kind,
            at_ns: base_ts + n * 1_000,
            rows_returned: n * 3,
            message: String::new(),
        });
        w.append_clean_shutdown();
    }
    w.flush();
}

#[test]
fn two_scans_of_unchanged_dir_render_identically() {
    let dir = tmpdir("unchanged");
    let journal =
        Journal::open(JournalConfig::new(&dir).with_fsync(FsyncPolicy::Never)).expect("open");
    write_session(&journal, 1, "oltp", 0, 20, Some(TerminalKind::Succeeded));
    write_session(
        &journal,
        2,
        "oltp",
        5_000,
        12,
        Some(TerminalKind::Cancelled),
    );
    write_session(&journal, 3, "olap", 0, 30, Some(TerminalKind::Succeeded));
    write_session(&journal, 4, "olap", 10_000, 7, None); // interrupted

    let a = scan_history(&dir, None, None).expect("scan a");
    let b = scan_history(&dir, None, None).expect("scan b");

    // Byte-for-byte: the full derived state — curves, attribution,
    // percentiles, fleet ranking — renders identically across scans.
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
    assert_eq!(
        format!("{:?}", a.percentiles()),
        format!("{:?}", b.percentiles())
    );
    assert_eq!(
        format!("{:?}", a.slowest_nodes(10)),
        format!("{:?}", b.slowest_nodes(10))
    );

    // Structural sanity on one scan: per-session outcomes, bounded
    // curves, and node attribution matching session totals.
    assert_eq!(a.sessions.len(), 4);
    let outcomes: Vec<&str> = a.sessions.iter().map(|s| s.outcome).collect();
    assert_eq!(
        outcomes,
        vec!["succeeded", "cancelled", "succeeded", "interrupted"]
    );
    for s in &a.sessions {
        assert!(s.curve.iter().all(|p| (0.0..=1.0).contains(&p.progress)));
        let node_cpu: u64 = s.nodes.iter().map(|n| n.cpu_ns).sum();
        assert_eq!(
            node_cpu,
            s.total_cpu_ns,
            "attribution total for {}",
            s.key()
        );
        let share: f64 = s.nodes.iter().map(|n| n.share).sum();
        assert!(
            (share - 1.0).abs() < 1e-9,
            "shares sum to 1 for {}",
            s.key()
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn windowed_scan_selects_overlapping_sessions() {
    let dir = tmpdir("window");
    let journal =
        Journal::open(JournalConfig::new(&dir).with_fsync(FsyncPolicy::Never)).expect("open");
    // Session 1 lives on [1_000, 10_000], session 2 on [101_000, 120_000].
    write_session(&journal, 1, "w", 0, 10, Some(TerminalKind::Succeeded));
    write_session(&journal, 2, "w", 100_000, 20, Some(TerminalKind::Succeeded));

    let early = scan_history(&dir, Some((0, 50_000)), None).expect("early window");
    assert_eq!(
        early
            .sessions
            .iter()
            .map(|s| s.session_id)
            .collect::<Vec<_>>(),
        vec![1]
    );
    let late = scan_history(&dir, Some((50_000, u64::MAX)), None).expect("late window");
    assert_eq!(
        late.sessions
            .iter()
            .map(|s| s.session_id)
            .collect::<Vec<_>>(),
        vec![2]
    );
    let all = scan_history(&dir, None, None).expect("no window");
    assert_eq!(all.sessions.len(), 2);
    let none = scan_history(&dir, Some((30_000, 40_000)), None).expect("gap window");
    assert!(none.sessions.is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn scans_racing_retention_sweeps_never_panic_or_double_count() {
    let dir = tmpdir("race");
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));

    // Scanner thread: hammer the directory with full history scans while
    // the main thread generates and sweeps journal epochs underneath it.
    let scanner = {
        let dir = dir.clone();
        let stop = std::sync::Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut scans = 0usize;
            while !stop.load(std::sync::atomic::Ordering::Acquire) {
                let fleet = scan_history(&dir, None, None).expect("scan never errors");
                let mut keys: Vec<String> = fleet.sessions.iter().map(|s| s.key()).collect();
                let total = keys.len();
                keys.sort();
                keys.dedup();
                assert_eq!(keys.len(), total, "a session was double-counted");
                for s in &fleet.sessions {
                    assert!(s.snapshots <= 40, "phantom snapshots in {}", s.key());
                    assert!(s.curve.iter().all(|p| (0.0..=1.0).contains(&p.progress)));
                }
                scans += 1;
            }
            scans
        })
    };

    // Eight epochs: each journals a batch of sessions, then sweeps every
    // prior epoch away (1-byte retention budget), deleting files out from
    // under any in-flight scan.
    for epoch in 0..8u64 {
        let journal = Journal::open(
            JournalConfig::new(&dir)
                .with_fsync(FsyncPolicy::Never)
                .with_retention_max_bytes(1),
        )
        .expect("open epoch journal");
        for id in 0..6 {
            write_session(
                &journal,
                epoch * 10 + id,
                "race",
                0,
                40,
                Some(TerminalKind::Succeeded),
            );
        }
        journal.sweep_retention().expect("sweep");
    }

    stop.store(true, std::sync::atomic::Ordering::Release);
    let scans = scanner.join().expect("scanner thread never panics");
    assert!(scans > 0, "scanner never completed a scan");

    // Quiescent directory: the race is over, so two fresh scans agree
    // byte-for-byte and see exactly the surviving (newest-epoch) sessions.
    let a = scan_history(&dir, None, None).expect("final scan a");
    let b = scan_history(&dir, None, None).expect("final scan b");
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
    assert_eq!(a.sessions.len(), 6, "only the newest epoch survives");
    assert!(a.sessions.iter().all(|s| s.epoch == 7));
    let _ = std::fs::remove_dir_all(&dir);
}
