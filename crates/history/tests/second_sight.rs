//! The Li et al.-style prediction experiment on the REAL workloads: a
//! store warmed by first-sight runs predicts second-sight resources
//! *exactly* (the engine's virtual clocks are deterministic, and an
//! exact-fingerprint hit answers with observed medians), while
//! leave-one-out prediction — the store has never seen this plan and must
//! scale a similar neighbor — quantifies the similarity fallback's error.
//! The printed table is the source of the EXPERIMENTS.md "History &
//! prediction" numbers.

use lqs_exec::{execute, ExecOptions};
use lqs_history::{plan_features, HistoryStore, ObservedRun, PredictionBasis};
use lqs_journal::plan_fingerprint;
use lqs_plan::PhysicalPlan;
use lqs_storage::Database;
use lqs_workloads::{standard_five, WorkloadScale};
use std::sync::Arc;

struct RecordedRun {
    workload: &'static str,
    fingerprint: u64,
    features: lqs_history::PlanFeatures,
    observed: ObservedRun,
    plan: Arc<PhysicalPlan>,
}

fn record(workload: &'static str, db: &Database, plan: Arc<PhysicalPlan>) -> RecordedRun {
    let run = execute(db, &plan, &ExecOptions::default());
    let features = plan_features(&plan);
    let cpu: Vec<u64> = run.final_counters.iter().map(|n| n.cpu_ns).collect();
    let reads: Vec<u64> = run.final_counters.iter().map(|n| n.logical_reads).collect();
    let observed = ObservedRun::from_totals(&features, run.duration_ns, &cpu, &reads);
    RecordedRun {
        workload,
        fingerprint: plan_fingerprint(&plan),
        features,
        observed,
        plan,
    }
}

fn rel_err(predicted: f64, observed: f64) -> f64 {
    (predicted - observed).abs() / observed.max(1.0)
}

#[test]
fn second_sight_is_exact_and_leave_one_out_bounds_similarity_error() {
    let scale = WorkloadScale {
        data_scale: 0.05,
        query_limit: 12,
        seed: 42,
    };
    let mut runs: Vec<RecordedRun> = Vec::new();
    for w in standard_five(scale) {
        if !w.name.starts_with("REAL") {
            continue;
        }
        let db = Arc::new(w.db);
        for q in w.queries {
            runs.push(record(w.name, &db, Arc::new(q.plan)));
        }
    }
    assert!(runs.len() >= 30, "three REAL workloads, 12 queries each");

    // Second sight: warm the store with every first-sight run, then
    // predict each plan again. Exact-fingerprint hits answer with the
    // median of (here) one deterministic observation — zero error, by
    // construction, and the test pins that contract.
    let store = HistoryStore::new();
    for r in &runs {
        store.observe(r.fingerprint, &r.features, r.observed.clone());
    }
    for r in &runs {
        let p = store
            .predict_plan(&r.plan)
            .expect("warmed store predicts every seen plan");
        assert_eq!(p.basis, PredictionBasis::Exact);
        assert_eq!(
            p.cpu_ns, r.observed.cpu_ns,
            "{}: second-sight CPU",
            r.workload
        );
        assert_eq!(
            p.logical_reads, r.observed.logical_reads,
            "{}: second-sight reads",
            r.workload
        );
        assert_eq!(p.runtime_ns, r.observed.runtime_ns);
    }

    // Leave-one-out: predict each plan from a store that has seen every
    // run *except* its own fingerprint — forcing the nearest-neighbor
    // similarity path that cold fingerprints take in production.
    println!("workload   basis    mean_cpu_err  mean_io_err  p90_cpu_err  n");
    for workload in ["REAL-1", "REAL-2", "REAL-3"] {
        let (mut cpu_errs, mut io_errs) = (Vec::new(), Vec::new());
        for r in runs.iter().filter(|r| r.workload == workload) {
            let loo = HistoryStore::new();
            for other in runs.iter().filter(|o| o.fingerprint != r.fingerprint) {
                loo.observe(other.fingerprint, &other.features, other.observed.clone());
            }
            let p = loo
                .predict_plan(&r.plan)
                .expect("neighbors exist for every REAL plan");
            assert!(
                matches!(p.basis, PredictionBasis::Similar { .. }),
                "{workload}: leave-one-out must not be an exact hit"
            );
            assert!(p.cpu_ns.is_finite() && p.cpu_ns > 0.0);
            cpu_errs.push(rel_err(p.cpu_ns, r.observed.cpu_ns));
            io_errs.push(rel_err(p.logical_reads, r.observed.logical_reads));
        }
        cpu_errs.sort_by(f64::total_cmp);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let p90 = cpu_errs[(cpu_errs.len() * 9 / 10).min(cpu_errs.len() - 1)];
        println!(
            "{workload}     similar  {:.4}        {:.4}       {:.4}       {}",
            mean(&cpu_errs),
            mean(&io_errs),
            p90,
            cpu_errs.len()
        );
        // Deterministic bound: the similarity fallback is a coarse
        // estimate, not a coin flip — keep it from regressing silently.
        assert!(
            mean(&cpu_errs) < 3.0,
            "{workload}: leave-one-out CPU error blew up ({})",
            mean(&cpu_errs)
        );
    }
}
