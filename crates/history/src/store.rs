//! Plan-fingerprint-keyed resource prediction from journaled history.
//!
//! Li et al. ("Robust Estimation of Resource Consumption for SQL Queries
//! using Statistical Techniques", VLDB 2012) observe that the best
//! predictor of a query's resource consumption is *prior runs of similar
//! plans*, not the optimizer's cost formulas. [`HistoryStore`] implements
//! the lightweight analogue over `lqs-journal` data:
//!
//! * **Exact hit** — the incoming plan's structural fingerprint matches
//!   journaled runs: predict the per-resource **medians** of those runs
//!   (robust to the odd outlier run).
//! * **Near miss** — no fingerprint match: find the nearest journaled
//!   plan in log-space feature distance and scale its observed per
//!   operator-class resources by the ratio of optimizer estimates
//!   (incoming / neighbor) class by class, so an identical join over 10×
//!   the rows predicts ~10× the join CPU rather than the neighbor's raw
//!   numbers.
//! * **Cold store** — no history at all (or nothing comparable): the
//!   answer is [`None`], never a fabricated zero. Callers (admission
//!   control, `/history/predict`) must surface "no history" explicitly
//!   and fall back to their cold-start policy.

use lqs_plan::PhysicalPlan;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Optimizer-estimate totals for one operator class (display-name bucket)
/// of a plan.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClassFeatures {
    /// Number of plan nodes of this class.
    pub count: usize,
    /// Summed optimizer CPU estimate, nanoseconds.
    pub est_cpu_ns: f64,
    /// Summed optimizer I/O estimate, pages.
    pub est_io_pages: f64,
    /// Summed estimated total rows (rows/exec × executions).
    pub est_rows: f64,
}

/// The feature vector the similarity search runs on: per-operator-class
/// optimizer estimates plus each node's class, so observed per-node
/// counters can be folded into per-class totals.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlanFeatures {
    /// Per-class estimate totals, keyed by operator display name
    /// (`BTreeMap` for deterministic iteration).
    pub classes: BTreeMap<String, ClassFeatures>,
    /// Operator class of each plan node, arena order.
    pub node_class: Vec<String>,
    /// Whole-plan optimizer CPU estimate, nanoseconds.
    pub est_cpu_ns: f64,
    /// Whole-plan optimizer I/O estimate, pages.
    pub est_io_pages: f64,
}

/// Extract [`PlanFeatures`] from a physical plan.
pub fn plan_features(plan: &PhysicalPlan) -> PlanFeatures {
    let mut f = PlanFeatures::default();
    for node in plan.nodes() {
        let class = node.op.display_name().to_owned();
        let c = f.classes.entry(class.clone()).or_default();
        c.count += 1;
        c.est_cpu_ns += node.est_cpu_ns;
        c.est_io_pages += node.est_io_pages;
        c.est_rows += node.est_total_rows();
        f.node_class.push(class);
        f.est_cpu_ns += node.est_cpu_ns;
        f.est_io_pages += node.est_io_pages;
    }
    f
}

/// Observed resource totals of one completed run, as journaled.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObservedRun {
    /// Virtual runtime, nanoseconds.
    pub runtime_ns: f64,
    /// Total virtual CPU across all nodes, nanoseconds.
    pub cpu_ns: f64,
    /// Total logical page reads across all nodes.
    pub logical_reads: f64,
    /// Observed CPU folded per operator class, nanoseconds.
    pub per_class_cpu: BTreeMap<String, f64>,
    /// Observed logical reads folded per operator class.
    pub per_class_reads: BTreeMap<String, f64>,
}

impl ObservedRun {
    /// Fold per-node observed counters into per-class totals using the
    /// node→class map of `features`. Nodes beyond the feature vector
    /// (fingerprint-mismatched data) are dropped — the caller should have
    /// refused such runs already.
    pub fn from_totals(
        features: &PlanFeatures,
        runtime_ns: u64,
        node_cpu_ns: &[u64],
        node_reads: &[u64],
    ) -> ObservedRun {
        let mut run = ObservedRun {
            runtime_ns: runtime_ns as f64,
            ..ObservedRun::default()
        };
        for (i, class) in features.node_class.iter().enumerate() {
            let cpu = node_cpu_ns.get(i).copied().unwrap_or(0) as f64;
            let reads = node_reads.get(i).copied().unwrap_or(0) as f64;
            run.cpu_ns += cpu;
            run.logical_reads += reads;
            *run.per_class_cpu.entry(class.clone()).or_default() += cpu;
            *run.per_class_reads.entry(class.clone()).or_default() += reads;
        }
        run
    }
}

/// How a prediction was derived.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PredictionBasis {
    /// Exact plan-fingerprint match: medians of observed runs.
    Exact,
    /// Nearest neighbor in plan-feature space with per-class scaling.
    Similar {
        /// Fingerprint of the neighbor plan used.
        fingerprint: u64,
        /// Log-space feature distance to the neighbor (0 = identical
        /// features).
        distance: f64,
    },
}

impl PredictionBasis {
    /// Stable label for metrics and JSON (`"exact"` / `"similar"`).
    pub fn label(&self) -> &'static str {
        match self {
            PredictionBasis::Exact => "exact",
            PredictionBasis::Similar { .. } => "similar",
        }
    }
}

/// A resource prediction for an incoming plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourcePrediction {
    /// Predicted total virtual CPU, nanoseconds.
    pub cpu_ns: f64,
    /// Predicted total logical page reads.
    pub logical_reads: f64,
    /// Predicted virtual runtime, nanoseconds.
    pub runtime_ns: f64,
    /// Observed runs the prediction is based on.
    pub runs: usize,
    /// How the prediction was derived.
    pub basis: PredictionBasis,
}

#[derive(Debug, Clone, Default)]
struct FingerprintEntry {
    features: PlanFeatures,
    runs: Vec<ObservedRun>,
}

/// Fingerprint-keyed history of observed runs with similarity-based
/// prediction. Interior-mutable (`&self` throughout) so the server can
/// share one store between the admission path and `/history/predict`.
#[derive(Debug, Default)]
pub struct HistoryStore {
    inner: Mutex<BTreeMap<u64, FingerprintEntry>>,
}

impl HistoryStore {
    /// An empty (cold) store.
    pub fn new() -> HistoryStore {
        HistoryStore::default()
    }

    /// Record one completed run of the plan with the given fingerprint.
    /// `features` must come from the *same* plan (the caller verified the
    /// fingerprint); the first observation fixes the feature vector.
    pub fn observe(&self, fingerprint: u64, features: &PlanFeatures, run: ObservedRun) {
        let mut inner = self.inner.lock().expect("history store poisoned");
        let entry = inner.entry(fingerprint).or_default();
        if entry.runs.is_empty() {
            entry.features = features.clone();
        }
        entry.runs.push(run);
    }

    /// Number of distinct plan fingerprints with history.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("history store poisoned").len()
    }

    /// True when no runs have been observed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total observed runs across all fingerprints.
    pub fn total_runs(&self) -> usize {
        self.inner
            .lock()
            .expect("history store poisoned")
            .values()
            .map(|e| e.runs.len())
            .sum()
    }

    /// Predict resources for an incoming plan given its fingerprint and
    /// features. `None` means **no history** — the store is cold or holds
    /// nothing comparable; callers must not treat that as "zero cost".
    pub fn predict(&self, fingerprint: u64, features: &PlanFeatures) -> Option<ResourcePrediction> {
        let inner = self.inner.lock().expect("history store poisoned");
        if let Some(entry) = inner.get(&fingerprint) {
            if !entry.runs.is_empty() {
                return Some(ResourcePrediction {
                    cpu_ns: median(entry.runs.iter().map(|r| r.cpu_ns)),
                    logical_reads: median(entry.runs.iter().map(|r| r.logical_reads)),
                    runtime_ns: median(entry.runs.iter().map(|r| r.runtime_ns)),
                    runs: entry.runs.len(),
                    basis: PredictionBasis::Exact,
                });
            }
        }
        // Nearest neighbor by log-space feature distance; ties break on
        // fingerprint (BTreeMap order) for determinism.
        let (nb_fp, nb) = inner
            .iter()
            .filter(|(_, e)| !e.runs.is_empty())
            .map(|(fp, e)| (*fp, e, feature_distance(features, &e.features)))
            .min_by(|a, b| a.2.partial_cmp(&b.2).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(fp, e, _)| (fp, e))?;
        let distance = feature_distance(features, &nb.features);

        // Median observed per-class resources of the neighbor, scaled
        // class-by-class by the optimizer-estimate ratio incoming/neighbor.
        // Classes only the incoming plan has fall back to their raw
        // optimizer estimate — better than pretending they are free.
        let mut cpu = 0.0;
        let mut reads = 0.0;
        for (class, cf) in &features.classes {
            match nb.features.classes.get(class) {
                Some(nf) => {
                    let obs_cpu = median(
                        nb.runs
                            .iter()
                            .map(|r| r.per_class_cpu.get(class).copied().unwrap_or(0.0)),
                    );
                    let obs_reads = median(
                        nb.runs
                            .iter()
                            .map(|r| r.per_class_reads.get(class).copied().unwrap_or(0.0)),
                    );
                    cpu += obs_cpu * scale_ratio(cf.est_cpu_ns, nf.est_cpu_ns);
                    reads += obs_reads * scale_ratio(cf.est_io_pages, nf.est_io_pages);
                }
                None => {
                    cpu += cf.est_cpu_ns;
                    reads += cf.est_io_pages;
                }
            }
        }
        // Runtime has no per-class decomposition; scale the neighbor's
        // median runtime by the whole-plan CPU-estimate ratio.
        let runtime = median(nb.runs.iter().map(|r| r.runtime_ns))
            * scale_ratio(features.est_cpu_ns, nb.features.est_cpu_ns);
        Some(ResourcePrediction {
            cpu_ns: cpu,
            logical_reads: reads,
            runtime_ns: runtime,
            runs: nb.runs.len(),
            basis: PredictionBasis::Similar {
                fingerprint: nb_fp,
                distance,
            },
        })
    }

    /// Convenience: fingerprint + featurize + predict in one call.
    pub fn predict_plan(&self, plan: &PhysicalPlan) -> Option<ResourcePrediction> {
        self.predict(lqs_journal::plan_fingerprint(plan), &plan_features(plan))
    }

    /// Predict from a fingerprint alone (the HTTP path, where the caller
    /// has no plan to featurize). Only exact history can answer — a
    /// fingerprint the store has never seen is an explicit no-history
    /// `None`, never a fabricated estimate.
    pub fn predict_fingerprint(&self, fingerprint: u64) -> Option<ResourcePrediction> {
        let features = {
            let inner = self.inner.lock().expect("history store poisoned");
            inner.get(&fingerprint).map(|e| e.features.clone())
        }?;
        self.predict(fingerprint, &features)
    }

    /// Seed a store from a scanned [`crate::FleetHistory`]: every
    /// **succeeded** session whose plan was resolved (so features exist)
    /// becomes one observation.
    pub fn from_history(history: &crate::FleetHistory) -> HistoryStore {
        let store = HistoryStore::new();
        for s in &history.sessions {
            let Some(features) = &s.features else {
                continue;
            };
            if !s.succeeded() {
                continue;
            }
            let cpu: Vec<u64> = s.nodes.iter().map(|n| n.cpu_ns).collect();
            let reads: Vec<u64> = s.nodes.iter().map(|n| n.logical_reads).collect();
            store.observe(
                s.plan_fingerprint,
                features,
                ObservedRun::from_totals(features, s.runtime_ns, &cpu, &reads),
            );
        }
        store
    }
}

/// Median of a sample stream (0.0 when empty). Uses the same exact
/// interpolation as `lqs_metrics::percentile` at q = 0.5.
fn median(values: impl Iterator<Item = f64>) -> f64 {
    let mut v: Vec<f64> = values.collect();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    lqs_metrics::percentile(&v, 0.5)
}

/// Ratio `incoming / neighbor` with both sides floored at 1.0 so
/// zero-estimate classes neither explode nor zero out the scaled value.
fn scale_ratio(incoming: f64, neighbor: f64) -> f64 {
    incoming.max(1.0) / neighbor.max(1.0)
}

/// Log-space distance between two plans' feature vectors: per class (union
/// of both plans' classes), sum of |ln(1+a) − ln(1+b)| over the class's
/// count, CPU, I/O and row estimates. Log space makes "10× the rows" a
/// constant offset instead of drowning out structural differences.
fn feature_distance(a: &PlanFeatures, b: &PlanFeatures) -> f64 {
    let lg = |x: f64| (1.0 + x.max(0.0)).ln();
    let mut d = 0.0;
    let classes = a.classes.keys().chain(b.classes.keys());
    let mut seen: Vec<&String> = Vec::new();
    for class in classes {
        if seen.contains(&class) {
            continue;
        }
        seen.push(class);
        let ca = a.classes.get(class).copied().unwrap_or_default();
        let cb = b.classes.get(class).copied().unwrap_or_default();
        d += (lg(ca.count as f64) - lg(cb.count as f64)).abs()
            + (lg(ca.est_cpu_ns) - lg(cb.est_cpu_ns)).abs()
            + (lg(ca.est_io_pages) - lg(cb.est_io_pages)).abs()
            + (lg(ca.est_rows) - lg(cb.est_rows)).abs();
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    fn features(classes: &[(&str, usize, f64, f64, f64)]) -> PlanFeatures {
        let mut f = PlanFeatures::default();
        for &(name, count, cpu, io, rows) in classes {
            f.classes.insert(
                name.to_owned(),
                ClassFeatures {
                    count,
                    est_cpu_ns: cpu,
                    est_io_pages: io,
                    est_rows: rows,
                },
            );
            for _ in 0..count {
                f.node_class.push(name.to_owned());
            }
            f.est_cpu_ns += cpu;
            f.est_io_pages += io;
        }
        f
    }

    fn run(cpu: f64, reads: f64, runtime: f64, per_class: &[(&str, f64, f64)]) -> ObservedRun {
        ObservedRun {
            runtime_ns: runtime,
            cpu_ns: cpu,
            logical_reads: reads,
            per_class_cpu: per_class
                .iter()
                .map(|&(c, v, _)| (c.to_owned(), v))
                .collect(),
            per_class_reads: per_class
                .iter()
                .map(|&(c, _, v)| (c.to_owned(), v))
                .collect(),
        }
    }

    #[test]
    fn cold_store_returns_none() {
        let store = HistoryStore::new();
        let f = features(&[("Table Scan", 1, 100.0, 10.0, 1000.0)]);
        assert!(store.predict(42, &f).is_none());
        assert!(store.is_empty());
    }

    #[test]
    fn exact_match_predicts_medians() {
        let store = HistoryStore::new();
        let f = features(&[("Table Scan", 1, 100.0, 10.0, 1000.0)]);
        for cpu in [100.0, 300.0, 200.0] {
            store.observe(
                7,
                &f,
                run(
                    cpu,
                    cpu / 10.0,
                    cpu * 2.0,
                    &[("Table Scan", cpu, cpu / 10.0)],
                ),
            );
        }
        let p = store.predict(7, &f).expect("exact history");
        assert_eq!(p.basis, PredictionBasis::Exact);
        assert_eq!(p.runs, 3);
        assert_eq!(p.cpu_ns, 200.0);
        assert_eq!(p.logical_reads, 20.0);
        assert_eq!(p.runtime_ns, 400.0);
    }

    #[test]
    fn near_miss_scales_by_class_estimates() {
        let store = HistoryStore::new();
        // Neighbor: one scan class estimated at 100 CPU, observed 150.
        let nb = features(&[("Table Scan", 1, 100.0, 10.0, 1000.0)]);
        store.observe(
            7,
            &nb,
            run(150.0, 12.0, 300.0, &[("Table Scan", 150.0, 12.0)]),
        );
        // Incoming: same shape, 10x the estimates — expect ~10x observed.
        let inc = features(&[("Table Scan", 1, 1000.0, 100.0, 10000.0)]);
        let p = store.predict(99, &inc).expect("similar history");
        match p.basis {
            PredictionBasis::Similar {
                fingerprint,
                distance,
            } => {
                assert_eq!(fingerprint, 7);
                assert!(distance > 0.0);
            }
            other => panic!("expected similar basis, got {other:?}"),
        }
        assert!((p.cpu_ns - 1500.0).abs() < 1e-9, "cpu {}", p.cpu_ns);
        assert!((p.logical_reads - 120.0).abs() < 1e-9);
        assert!((p.runtime_ns - 3000.0).abs() < 1e-9);
    }

    #[test]
    fn incoming_only_classes_use_raw_estimates() {
        let store = HistoryStore::new();
        let nb = features(&[("Table Scan", 1, 100.0, 10.0, 1000.0)]);
        store.observe(
            7,
            &nb,
            run(100.0, 10.0, 200.0, &[("Table Scan", 100.0, 10.0)]),
        );
        let inc = features(&[
            ("Table Scan", 1, 100.0, 10.0, 1000.0),
            ("Hash Match", 1, 500.0, 0.0, 1000.0),
        ]);
        let p = store.predict(99, &inc).expect("similar history");
        // Scan observed 100 (scale 1.0) + raw 500 estimate for the join.
        assert!((p.cpu_ns - 600.0).abs() < 1e-9, "cpu {}", p.cpu_ns);
    }
}
