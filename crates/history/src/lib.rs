//! # lqs-history — fleet-wide progress analytics and resource prediction
//! over snapshot journals
//!
//! The DMV-polling design of the paper (§3) only exposes *live* progress;
//! `lqs-journal` (PR 5) persists every session's snapshot stream for crash
//! recovery. This crate turns those journals from a recovery artifact into
//! an analytics and prediction surface — the `sp_PE_QueryProgress`
//! direction:
//!
//! * [`scan_history`] — a time-windowed, torn-tail-tolerant,
//!   retention-sweep-safe scan over a whole journal directory that
//!   materializes one [`SessionHistory`] per journaled session:
//!   progress-over-time [`CurvePoint`] curves, per-node time attribution
//!   ("which operator ate the runtime"), and §5-style accuracy figures
//!   when a [`HistoryResolver`] can rebuild the plan. Everything is
//!   derived purely from journal bytes and virtual clocks, so two scans of
//!   an unchanged directory are byte-for-byte identical however they are
//!   serialized.
//! * [`FleetHistory`] — the cross-session view: per-workload p50/p90/p99
//!   percentile curves (runtime, CPU, I/O, ErrorAvg, ErrorTime) and
//!   fleet-wide slowest-node ranking.
//! * [`HistoryStore`] — a plan-fingerprint-keyed store that predicts
//!   CPU/IO/runtime for an *incoming* plan from similar journaled runs
//!   (Li et al., "Robust Estimation of Resource Consumption for SQL
//!   Queries"): exact-fingerprint hits answer from observed medians;
//!   misses fall back to the nearest plan in feature space with
//!   per-operator-class scaling. A cold store answers "no history" —
//!   explicitly, never a zero estimate.
//! * [`HistoryMetrics`] — online prediction-error telemetry
//!   (`lqs_history_prediction_error{resource=...}`) recorded into the
//!   shared `lqs-metrics` registry as predictions meet their observed
//!   runs.
//!
//! `lqs-server` wires this into `GET /history/*` endpoints and
//! predicted-cost admission control; `lqs_live --fleet` renders the same
//! scan in the terminal.

#![warn(missing_docs)]

pub mod metrics;
pub mod scan;
pub mod store;

pub use metrics::HistoryMetrics;
pub use scan::{
    history_from_scan, scan_history, CurvePoint, EstimatorAccuracy, FleetHistory, FleetNode,
    HistoryResolver, ModeThroughput, NodeAttribution, Pctls, ResolvedPlan, SessionHistory,
    WorkloadPercentiles,
};
pub use store::{
    plan_features, HistoryStore, ObservedRun, PlanFeatures, PredictionBasis, ResourcePrediction,
};
