//! The journal scanner: materialize per-session progress curves, per-node
//! time attribution, and per-workload percentile summaries from a journal
//! directory.
//!
//! Everything here is computed **purely from journal bytes** on the
//! sessions' own virtual clocks — no wall clock, no live registry — so two
//! scans of an unchanged directory produce identical values, and any
//! serialization of them is byte-for-byte reproducible. Torn tails and
//! concurrent retention sweeps are absorbed by `lqs_journal::scan_dir`
//! (truncate-at-first-invalid-frame, swept-sessions-dropped); this layer
//! never panics on hostile input either.

use crate::store::{plan_features, PlanFeatures};
use lqs_journal::{
    scan_dir, JournalExecMode, JournalScan, RecoveredSession, SessionMeta, TerminalKind,
};
use lqs_metrics::percentile;
use lqs_plan::PhysicalPlan;
use lqs_progress::{error_count, error_time, EstimatorConfig, ProgressEstimator};
use lqs_storage::Database;
use std::path::Path;
use std::sync::Arc;

/// A plan (and the database its estimator statics are built from),
/// re-resolved for a journaled session. Journals store plan fingerprints,
/// not plans — anything that wants estimator-grade analytics (accuracy
/// replay, operator names, plan features) must rebuild the plan, exactly
/// like the server's recovery path.
#[derive(Clone)]
pub struct ResolvedPlan {
    /// The rebuilt physical plan.
    pub plan: Arc<PhysicalPlan>,
    /// The database the plan executes against.
    pub db: Arc<Database>,
}

/// Re-resolves journaled sessions' plans for history analytics. Return
/// `None` when the plan cannot be rebuilt — the session still gets its
/// journal-pure curve and attribution, just no accuracy replay or operator
/// names.
pub trait HistoryResolver {
    /// The plan + database for `meta`'s session, or `None`.
    fn resolve(&self, meta: &SessionMeta) -> Option<ResolvedPlan>;
}

impl<F> HistoryResolver for F
where
    F: Fn(&SessionMeta) -> Option<ResolvedPlan>,
{
    fn resolve(&self, meta: &SessionMeta) -> Option<ResolvedPlan> {
        self(meta)
    }
}

/// One point of a session's progress-over-time curve, sampled at a
/// journaled snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct CurvePoint {
    /// Virtual timestamp of the snapshot.
    pub ts_ns: u64,
    /// Cumulative virtual CPU nanoseconds across all plan nodes.
    pub cpu_ns: u64,
    /// Cumulative logical page reads across all plan nodes.
    pub logical_reads: u64,
    /// Fraction of the session's eventual total CPU work done by this
    /// point, in `[0, 1]` — the journal-pure progress proxy (no plan or
    /// estimator needed, hence computable for *any* journal).
    pub progress: f64,
}

/// Final resource totals of one plan node — the "slowest node" attribution
/// unit. Matches the offline harness's per-node ground truth: for a
/// completed session the last journaled snapshot *is* the run's
/// `final_counters`.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeAttribution {
    /// Node index (`NodeId.0`).
    pub node: usize,
    /// Operator display name, when a resolver rebuilt the plan.
    pub op: Option<String>,
    /// Total virtual CPU nanoseconds charged to this node.
    pub cpu_ns: u64,
    /// Total logical page reads issued by this node.
    pub logical_reads: u64,
    /// Total rows output by this node.
    pub rows_output: u64,
    /// This node's share of the session's total CPU, in `[0, 1]`.
    pub share: f64,
}

/// Everything the history layer derives for one journaled session.
#[derive(Debug, Clone)]
pub struct SessionHistory {
    /// Journal epoch of the writing service incarnation.
    pub epoch: u32,
    /// Session id within that epoch.
    pub session_id: u64,
    /// Session display name (empty when the meta record was lost).
    pub name: String,
    /// Workload label (empty when the meta record was lost).
    pub workload: String,
    /// Structural plan fingerprint (0 when the meta record was lost).
    pub plan_fingerprint: u64,
    /// How the session ended: a terminal-state label (`succeeded`,
    /// `cancelled`, `deadline_exceeded`, `failed`, `rejected`), or
    /// `interrupted` when the journal has no terminal record, or
    /// `unreadable` when even the meta record was lost.
    pub outcome: &'static str,
    /// Virtual runtime: the terminal record's timestamp, else the last
    /// snapshot's.
    pub runtime_ns: u64,
    /// Total virtual CPU nanoseconds across all nodes at the end.
    pub total_cpu_ns: u64,
    /// Total logical reads across all nodes at the end.
    pub total_logical_reads: u64,
    /// Rows returned by the root operator (completed sessions only).
    pub rows_returned: u64,
    /// Snapshots that survived in the journal.
    pub snapshots: usize,
    /// Corrupt records discarded while reading this session's journal.
    pub corrupt_records: u64,
    /// Progress-over-time curve, one point per surviving snapshot.
    pub curve: Vec<CurvePoint>,
    /// Per-node final totals, index order.
    pub nodes: Vec<NodeAttribution>,
    /// Plan features, when a resolver rebuilt the plan (feeds the
    /// prediction store).
    pub features: Option<PlanFeatures>,
    /// Paper §5 ErrorAvg of a full estimator replay over the journaled
    /// trace; `Some` only for succeeded sessions with a resolved,
    /// fingerprint-matching plan.
    pub error_avg: Option<f64>,
    /// Paper §5 ErrorTime, same conditions as `error_avg`.
    pub error_time: Option<f64>,
    /// Execution mode the run was journaled under (`Unknown` for journals
    /// written before the meta carried it, or when the meta was lost).
    pub exec_mode: JournalExecMode,
    /// Watchdog alerts journaled for this session.
    pub alerts: usize,
    /// Id of the ensemble member that served the session, when its journal
    /// recorded a selection (`None` for single-estimator sessions and for
    /// journals written before the record existed).
    pub estimator: Option<String>,
}

impl SessionHistory {
    /// Stable key for this session within the scanned directory:
    /// `e{epoch}-s{session_id}`.
    pub fn key(&self) -> String {
        format!("e{}-s{}", self.epoch, self.session_id)
    }

    /// Nodes ranked by CPU attribution, slowest first; ties break on the
    /// node index so the ranking is deterministic.
    pub fn slowest_nodes(&self) -> Vec<&NodeAttribution> {
        let mut out: Vec<&NodeAttribution> = self.nodes.iter().collect();
        out.sort_by(|a, b| b.cpu_ns.cmp(&a.cpu_ns).then(a.node.cmp(&b.node)));
        out
    }

    /// Whether the session ran to completion.
    pub fn succeeded(&self) -> bool {
        self.outcome == "succeeded"
    }
}

/// Exact p50/p90/p99 of one sample set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pctls {
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Pctls {
    fn from_samples(mut values: Vec<f64>) -> Pctls {
        values.sort_by(|a, b| a.partial_cmp(b).expect("history samples are finite"));
        Pctls {
            p50: percentile(&values, 0.50),
            p90: percentile(&values, 0.90),
            p99: percentile(&values, 0.99),
        }
    }
}

/// Per-workload-class percentile summary across journaled sessions.
/// Resource percentiles cover **succeeded** sessions (aborted runs would
/// skew runtime low); the error percentiles cover the subset that had a
/// resolvable plan.
#[derive(Debug, Clone)]
pub struct WorkloadPercentiles {
    /// Workload label.
    pub workload: String,
    /// All journaled sessions of this workload, any outcome.
    pub sessions: usize,
    /// Sessions that ran to completion (the percentile population).
    pub succeeded: usize,
    /// Virtual runtime percentiles, nanoseconds.
    pub runtime_ns: Pctls,
    /// Total virtual CPU percentiles, nanoseconds.
    pub cpu_ns: Pctls,
    /// Total logical-read percentiles, pages.
    pub logical_reads: Pctls,
    /// ErrorAvg percentiles over accuracy-scored sessions, when any.
    pub error_avg: Option<Pctls>,
    /// ErrorTime percentiles over accuracy-scored sessions, when any.
    pub error_time: Option<Pctls>,
}

/// One entry of the fleet-wide slowest-node ranking: a plan node
/// aggregated across every journaled session of the same plan fingerprint.
#[derive(Debug, Clone)]
pub struct FleetNode {
    /// Plan fingerprint the node belongs to.
    pub plan_fingerprint: u64,
    /// Workload label of the sessions aggregated.
    pub workload: String,
    /// Name of (one of) the sessions running this plan.
    pub name: String,
    /// Node index within the plan.
    pub node: usize,
    /// Operator display name, when resolvable.
    pub op: Option<String>,
    /// Sessions aggregated.
    pub sessions: usize,
    /// Total virtual CPU nanoseconds across those sessions.
    pub cpu_ns: u64,
    /// Total logical reads across those sessions.
    pub logical_reads: u64,
}

/// Throughput of the fleet's sessions segmented by the execution mode
/// their journals record — the number that shows whether the vectorized
/// path's speedup survives in production, not just in benches.
#[derive(Debug, Clone, PartialEq)]
pub struct ModeThroughput {
    /// The journaled execution mode.
    pub mode: JournalExecMode,
    /// All sessions journaled under this mode, any outcome.
    pub sessions: usize,
    /// Sessions that ran to completion (the throughput population).
    pub succeeded: usize,
    /// Rows returned across succeeded sessions.
    pub total_rows: u64,
    /// Virtual runtime summed across succeeded sessions.
    pub total_runtime_ns: u64,
    /// Rows returned per virtual second across succeeded sessions
    /// (0 when no succeeded session or zero runtime).
    pub rows_per_virtual_sec: f64,
}

/// Accuracy summary for the population of sessions served by one ensemble
/// estimator selection (as journaled at terminal time).
#[derive(Debug, Clone)]
pub struct EstimatorAccuracy {
    /// Selected estimator id; `"single"` groups sessions whose journals
    /// carry no selection (pre-ensemble journals and fixed-config runs).
    pub estimator: String,
    /// Sessions whose journal recorded this selection, any outcome.
    pub sessions: usize,
    /// Sessions with an accuracy replay (succeeded + resolvable plan).
    pub scored: usize,
    /// ErrorAvg percentiles over the scored population, when any.
    pub error_avg: Option<Pctls>,
    /// ErrorTime percentiles over the scored population, when any.
    pub error_time: Option<Pctls>,
}

/// The cross-session history view of one journal directory.
#[derive(Debug, Clone, Default)]
pub struct FleetHistory {
    /// Every journaled session, ordered by `(epoch, session_id)`.
    pub sessions: Vec<SessionHistory>,
    /// Corrupt records discarded across the whole scan.
    pub corrupt_records: u64,
    /// Total journal bytes read.
    pub bytes_scanned: u64,
    /// Sessions deleted by a concurrent retention sweep mid-scan.
    pub sessions_swept: u64,
}

impl FleetHistory {
    /// Look up a session by key: either the full `e{epoch}-s{id}` form or a
    /// bare session id (resolved in the **newest** epoch that has it, so
    /// the bare form always means "the most recent run with that id").
    pub fn session(&self, key: &str) -> Option<&SessionHistory> {
        if let Some(rest) = key.strip_prefix('e') {
            let (epoch, sid) = rest.split_once("-s")?;
            let (epoch, sid) = (epoch.parse::<u32>().ok()?, sid.parse::<u64>().ok()?);
            return self
                .sessions
                .iter()
                .find(|s| s.epoch == epoch && s.session_id == sid);
        }
        let sid = key.parse::<u64>().ok()?;
        self.sessions.iter().rev().find(|s| s.session_id == sid)
    }

    /// Per-workload percentile summaries, sorted by workload label.
    pub fn percentiles(&self) -> Vec<WorkloadPercentiles> {
        let mut labels: Vec<&str> = self.sessions.iter().map(|s| s.workload.as_str()).collect();
        labels.sort_unstable();
        labels.dedup();
        labels
            .into_iter()
            .map(|w| self.percentiles_for(w))
            .collect()
    }

    /// Percentile summary for one workload label (empty-population
    /// summaries have all-zero percentiles and `sessions == 0`).
    pub fn percentiles_for(&self, workload: &str) -> WorkloadPercentiles {
        let all: Vec<&SessionHistory> = self
            .sessions
            .iter()
            .filter(|s| s.workload == workload)
            .collect();
        let done: Vec<&&SessionHistory> = all.iter().filter(|s| s.succeeded()).collect();
        let sample = |f: &dyn Fn(&SessionHistory) -> f64| -> Vec<f64> {
            done.iter().map(|s| f(s)).collect()
        };
        let errors: Vec<f64> = done.iter().filter_map(|s| s.error_avg).collect();
        let error_times: Vec<f64> = done.iter().filter_map(|s| s.error_time).collect();
        WorkloadPercentiles {
            workload: workload.to_owned(),
            sessions: all.len(),
            succeeded: done.len(),
            runtime_ns: Pctls::from_samples(sample(&|s| s.runtime_ns as f64)),
            cpu_ns: Pctls::from_samples(sample(&|s| s.total_cpu_ns as f64)),
            logical_reads: Pctls::from_samples(sample(&|s| s.total_logical_reads as f64)),
            error_avg: (!errors.is_empty()).then(|| Pctls::from_samples(errors)),
            error_time: (!error_times.is_empty()).then(|| Pctls::from_samples(error_times)),
        }
    }

    /// Throughput segmented by journaled execution mode, in stable
    /// `unknown, tuple, batch` order; modes with no sessions are omitted.
    pub fn throughput_by_mode(&self) -> Vec<ModeThroughput> {
        [
            JournalExecMode::Unknown,
            JournalExecMode::Tuple,
            JournalExecMode::Batch,
        ]
        .into_iter()
        .filter_map(|mode| {
            let all: Vec<&SessionHistory> = self
                .sessions
                .iter()
                .filter(|s| s.exec_mode == mode)
                .collect();
            if all.is_empty() {
                return None;
            }
            let done: Vec<&&SessionHistory> = all.iter().filter(|s| s.succeeded()).collect();
            let total_rows: u64 = done.iter().map(|s| s.rows_returned).sum();
            let total_runtime_ns: u64 = done.iter().map(|s| s.runtime_ns).sum();
            Some(ModeThroughput {
                mode,
                sessions: all.len(),
                succeeded: done.len(),
                total_rows,
                total_runtime_ns,
                rows_per_virtual_sec: if total_runtime_ns == 0 {
                    0.0
                } else {
                    total_rows as f64 * 1e9 / total_runtime_ns as f64
                },
            })
        })
        .collect()
    }

    /// Accuracy segmented by the estimator that served each session, sorted
    /// by estimator id. Sessions whose journals carry no selection group
    /// under `"single"`.
    pub fn accuracy_by_estimator(&self) -> Vec<EstimatorAccuracy> {
        let mut labels: Vec<&str> = self
            .sessions
            .iter()
            .map(|s| s.estimator.as_deref().unwrap_or("single"))
            .collect();
        labels.sort_unstable();
        labels.dedup();
        labels
            .into_iter()
            .map(|label| {
                let all: Vec<&SessionHistory> = self
                    .sessions
                    .iter()
                    .filter(|s| s.estimator.as_deref().unwrap_or("single") == label)
                    .collect();
                let errors: Vec<f64> = all.iter().filter_map(|s| s.error_avg).collect();
                let error_times: Vec<f64> = all.iter().filter_map(|s| s.error_time).collect();
                EstimatorAccuracy {
                    estimator: label.to_owned(),
                    sessions: all.len(),
                    scored: errors.len(),
                    error_avg: (!errors.is_empty()).then(|| Pctls::from_samples(errors)),
                    error_time: (!error_times.is_empty()).then(|| Pctls::from_samples(error_times)),
                }
            })
            .collect()
    }

    /// Fleet-wide slowest-node ranking: per-node CPU totals aggregated
    /// across sessions sharing a plan fingerprint, slowest first, top
    /// `top`. Deterministic: ties break on `(fingerprint, node)`.
    pub fn slowest_nodes(&self, top: usize) -> Vec<FleetNode> {
        use std::collections::BTreeMap;
        let mut agg: BTreeMap<(u64, usize), FleetNode> = BTreeMap::new();
        for s in &self.sessions {
            for n in &s.nodes {
                let e = agg
                    .entry((s.plan_fingerprint, n.node))
                    .or_insert(FleetNode {
                        plan_fingerprint: s.plan_fingerprint,
                        workload: s.workload.clone(),
                        name: s.name.clone(),
                        node: n.node,
                        op: n.op.clone(),
                        sessions: 0,
                        cpu_ns: 0,
                        logical_reads: 0,
                    });
                e.sessions += 1;
                e.cpu_ns += n.cpu_ns;
                e.logical_reads += n.logical_reads;
                if e.op.is_none() {
                    e.op = n.op.clone();
                }
            }
        }
        let mut out: Vec<FleetNode> = agg.into_values().collect();
        out.sort_by(|a, b| {
            b.cpu_ns
                .cmp(&a.cpu_ns)
                .then(a.plan_fingerprint.cmp(&b.plan_fingerprint))
                .then(a.node.cmp(&b.node))
        });
        out.truncate(top);
        out
    }
}

fn terminal_label(kind: TerminalKind) -> &'static str {
    match kind {
        TerminalKind::Succeeded => "succeeded",
        TerminalKind::Cancelled => "cancelled",
        TerminalKind::DeadlineExceeded => "deadline_exceeded",
        TerminalKind::Failed => "failed",
        TerminalKind::Rejected => "rejected",
    }
}

/// Build one session's history from its recovered journal stream.
fn session_history(
    session: &RecoveredSession,
    resolver: Option<&dyn HistoryResolver>,
) -> SessionHistory {
    let last = session.snapshots.last();
    let total_cpu_ns = last.map_or(0, |s| s.nodes.iter().map(|n| n.cpu_ns).sum());
    let total_logical_reads = last.map_or(0, |s| s.nodes.iter().map(|n| n.logical_reads).sum());
    let resolved = session.meta.as_ref().and_then(|meta| {
        let r = resolver?.resolve(meta)?;
        // A plan whose structure changed would mislabel nodes and produce
        // silently wrong estimator weights — same refusal as recovery.
        (lqs_journal::plan_fingerprint(&r.plan) == meta.plan_fingerprint).then_some(r)
    });

    let curve = session
        .snapshots
        .iter()
        .map(|s| {
            let cpu_ns: u64 = s.nodes.iter().map(|n| n.cpu_ns).sum();
            CurvePoint {
                ts_ns: s.ts_ns,
                cpu_ns,
                logical_reads: s.nodes.iter().map(|n| n.logical_reads).sum(),
                progress: if total_cpu_ns == 0 {
                    0.0
                } else {
                    (cpu_ns as f64 / total_cpu_ns as f64).clamp(0.0, 1.0)
                },
            }
        })
        .collect();

    let nodes = last
        .map(|s| {
            s.nodes
                .iter()
                .enumerate()
                .map(|(i, n)| NodeAttribution {
                    node: i,
                    op: resolved.as_ref().and_then(|r| {
                        (i < r.plan.len()).then(|| {
                            r.plan
                                .node(lqs_plan::NodeId(i))
                                .op
                                .display_name()
                                .to_owned()
                        })
                    }),
                    cpu_ns: n.cpu_ns,
                    logical_reads: n.logical_reads,
                    rows_output: n.rows_output,
                    share: if total_cpu_ns == 0 {
                        0.0
                    } else {
                        n.cpu_ns as f64 / total_cpu_ns as f64
                    },
                })
                .collect()
        })
        .unwrap_or_default();

    // §5 accuracy replay, bit-identical to the offline harness and the
    // poller's online scoring: the terminal publish is the last journaled
    // snapshot, everything before it is the mid-run trace.
    let succeeded = session
        .terminal
        .as_ref()
        .is_some_and(|t| t.kind == TerminalKind::Succeeded);
    let (error_avg, error_time_v) = match (&resolved, &session.meta, succeeded) {
        (Some(r), Some(meta), true) if !session.snapshots.is_empty() => {
            let (final_snap, trace) = session
                .snapshots
                .split_last()
                .expect("non-empty checked above");
            let terminal = session
                .terminal
                .as_ref()
                .expect("succeeded implies terminal");
            let run = lqs_exec::QueryRun {
                snapshots: trace.to_vec(),
                final_counters: final_snap.nodes.clone(),
                duration_ns: terminal.at_ns,
                rows_returned: terminal.rows_returned,
                cost_model: meta.cost_model.clone(),
                node_elapsed_ns: Vec::new(),
            };
            let est = ProgressEstimator::with_cost_model(
                &r.plan,
                &r.db,
                EstimatorConfig::full(),
                &run.cost_model,
            );
            let estimates: Vec<f64> = run
                .snapshots
                .iter()
                .map(|s| est.estimate(s).query_progress)
                .collect();
            (
                Some(error_count(&run, &estimates)),
                Some(error_time(&run, &estimates)),
            )
        }
        _ => (None, None),
    };

    SessionHistory {
        epoch: session.epoch,
        session_id: session.session_id,
        name: session
            .meta
            .as_ref()
            .map(|m| m.name.clone())
            .unwrap_or_default(),
        workload: session
            .meta
            .as_ref()
            .map(|m| m.workload.clone())
            .unwrap_or_default(),
        plan_fingerprint: session.meta.as_ref().map_or(0, |m| m.plan_fingerprint),
        outcome: match (&session.meta, &session.terminal) {
            (None, _) => "unreadable",
            (_, Some(t)) => terminal_label(t.kind),
            (_, None) => "interrupted",
        },
        runtime_ns: session.end_ts_ns(),
        total_cpu_ns,
        total_logical_reads,
        rows_returned: session.terminal.as_ref().map_or(0, |t| t.rows_returned),
        snapshots: session.snapshots.len(),
        corrupt_records: session.corrupt_records,
        curve,
        nodes,
        features: resolved.as_ref().map(|r| plan_features(&r.plan)),
        error_avg,
        error_time: error_time_v,
        exec_mode: session
            .meta
            .as_ref()
            .map_or(JournalExecMode::Unknown, |m| m.exec_mode),
        alerts: session.alerts.len(),
        estimator: session.estimator.as_ref().map(|e| e.selected.clone()),
    }
}

/// Materialize the fleet history of an already-performed journal scan.
pub fn history_from_scan(
    scan: &JournalScan,
    resolver: Option<&dyn HistoryResolver>,
) -> FleetHistory {
    FleetHistory {
        sessions: scan
            .sessions
            .iter()
            .map(|s| session_history(s, resolver))
            .collect(),
        corrupt_records: scan.corrupt_records,
        bytes_scanned: scan.bytes_scanned,
        sessions_swept: scan.sessions_swept,
    }
}

/// Scan a journal directory into a [`FleetHistory`], optionally windowed
/// to sessions whose virtual-time activity intersects `[since_ns,
/// until_ns]` and enriched through `resolver`. I/O errors on the directory
/// itself propagate; corrupt or concurrently-deleted content never does.
pub fn scan_history(
    dir: &Path,
    window: Option<(u64, u64)>,
    resolver: Option<&dyn HistoryResolver>,
) -> std::io::Result<FleetHistory> {
    let mut scan = scan_dir(dir)?;
    if let Some((since, until)) = window {
        scan.retain_window(since, until);
    }
    Ok(history_from_scan(&scan, resolver))
}
