//! Online prediction-accuracy telemetry for the history layer.
//!
//! The same discipline `lqs-metrics` applies to progress estimates —
//! score every estimate against ground truth once the truth is known —
//! applied to resource predictions: when a predicted session completes,
//! its observed CPU/IO/runtime are compared with what [`crate::HistoryStore`]
//! predicted at admission time, and the **relative error**
//! `|observed − predicted| / max(observed, 1)` is folded into
//! `lqs_history_prediction_error{resource=...}` histograms. A `/metrics`
//! scrape then answers "how well does history predict the fleet?"
//! continuously.

use crate::store::PredictionBasis;
use lqs_metrics::MetricsRegistry;
use std::sync::Arc;

/// Records history-layer events into a shared [`MetricsRegistry`].
#[derive(Clone)]
pub struct HistoryMetrics {
    registry: Arc<MetricsRegistry>,
}

impl HistoryMetrics {
    /// Wrap a shared registry.
    pub fn new(registry: Arc<MetricsRegistry>) -> HistoryMetrics {
        HistoryMetrics { registry }
    }

    /// The wrapped registry.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// A prediction was issued, on the given basis.
    pub fn prediction_issued(&self, basis: PredictionBasis) {
        self.registry
            .counter(
                "lqs_history_predictions_total",
                "Resource predictions issued, by derivation basis.",
                &[("basis", basis.label())],
            )
            .inc();
    }

    /// A prediction was requested but the store had no comparable history.
    pub fn cold_miss(&self) {
        self.registry
            .counter(
                "lqs_history_cold_misses_total",
                "Prediction requests answered with explicit no-history.",
                &[],
            )
            .inc();
    }

    /// Admission control rejected a session because its predicted cost did
    /// not fit the pool.
    pub fn cost_rejection(&self) {
        self.registry
            .counter(
                "lqs_history_cost_rejections_total",
                "Sessions rejected by predicted-cost admission control.",
                &[],
            )
            .inc();
    }

    /// Score one resource prediction against its now-known observation.
    /// `resource` is one of `cpu_ns` / `logical_reads` / `runtime_ns`.
    pub fn observe_error(&self, resource: &str, predicted: f64, observed: f64) {
        let err = (observed - predicted).abs() / observed.max(1.0);
        self.registry
            .histogram(
                "lqs_history_prediction_error",
                "Relative error |observed-predicted|/observed of resource \
                 predictions, scored when the predicted session completes.",
                &[("resource", resource)],
            )
            .observe(err);
    }

    /// Score all three resources of a prediction at once.
    pub fn observe_prediction(
        &self,
        prediction: &crate::ResourcePrediction,
        observed_cpu_ns: f64,
        observed_reads: f64,
        observed_runtime_ns: f64,
    ) {
        self.observe_error("cpu_ns", prediction.cpu_ns, observed_cpu_ns);
        self.observe_error("logical_reads", prediction.logical_reads, observed_reads);
        self.observe_error("runtime_ns", prediction.runtime_ns, observed_runtime_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::ResourcePrediction;

    #[test]
    fn errors_land_in_labeled_histograms() {
        let registry = Arc::new(MetricsRegistry::new());
        let m = HistoryMetrics::new(registry.clone());
        m.prediction_issued(PredictionBasis::Exact);
        m.cold_miss();
        m.observe_prediction(
            &ResourcePrediction {
                cpu_ns: 100.0,
                logical_reads: 10.0,
                runtime_ns: 200.0,
                runs: 1,
                basis: PredictionBasis::Exact,
            },
            110.0,
            10.0,
            180.0,
        );
        let text = registry.render();
        assert!(text.contains("lqs_history_predictions_total{basis=\"exact\"} 1"));
        assert!(text.contains("lqs_history_cold_misses_total 1"));
        assert!(text.contains("lqs_history_prediction_error_count{resource=\"cpu_ns\"} 1"));
        assert!(text.contains("lqs_history_prediction_error_count{resource=\"runtime_ns\"} 1"));
    }
}
