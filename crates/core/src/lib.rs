//! # lqs — Live Query Statistics, reproduced in Rust
//!
//! A from-scratch reproduction of *"Operator and Query Progress Estimation
//! in Microsoft SQL Server Live Query Statistics"* (SIGMOD 2016): a
//! per-operator and per-query progress estimator ([`progress`]) layered on
//! an instrumented query execution engine ([`exec`]) with its own storage
//! layer ([`storage`]), mini-optimizer ([`plan`]), benchmark-shaped
//! workloads ([`workloads`]), experiment harness ([`harness`]), and a
//! Prometheus-style telemetry subsystem ([`metrics`]) threaded through
//! the multi-session query service ([`server`]), a durable per-session
//! snapshot journal with crash recovery ([`journal`]), fleet-wide
//! progress analytics and resource prediction over those journals
//! ([`history`]), exact per-operator time attribution with flamegraph
//! export ([`prof`]), plus a deterministic fault-injection layer
//! ([`chaos`]) for robustness testing.
//!
//! ## Quickstart
//!
//! ```
//! use lqs::prelude::*;
//!
//! // 1. Build a database.
//! let mut table = Table::new(
//!     "orders",
//!     Schema::new(vec![
//!         Column::new("id", DataType::Int),
//!         Column::new("amount", DataType::Int),
//!     ]),
//! );
//! for i in 0..10_000i64 {
//!     table.insert(vec![Value::Int(i), Value::Int(i % 500)]).unwrap();
//! }
//! let mut db = Database::new();
//! let orders = db.add_table_analyzed(table);
//!
//! // 2. Author a physical plan (the estimator consumes plans, not SQL —
//! //    exactly like the real LQS client consumes showplans).
//! let mut b = PlanBuilder::new(&db);
//! let scan = b.table_scan_filtered(orders, Expr::col(1).lt(Expr::lit(250i64)), true);
//! let agg = b.hash_aggregate(scan, vec![1], vec![Aggregate::of_col(AggFunc::Sum, 0)]);
//! let plan = b.finish(agg);
//!
//! // 3. Execute, collecting DMV snapshots on the virtual clock.
//! let run = execute(&db, &plan, &ExecOptions::default());
//!
//! // 4. Replay the snapshots through the progress estimator.
//! let estimator = ProgressEstimator::new(&plan, &db, EstimatorConfig::full());
//! let mid = &run.snapshots[run.snapshots.len() / 2];
//! let report = estimator.estimate(mid);
//! assert!(report.query_progress > 0.0 && report.query_progress <= 1.0);
//! ```

#![warn(missing_docs)]

pub use lqs_chaos as chaos;
pub use lqs_exec as exec;
pub use lqs_harness as harness;
pub use lqs_history as history;
pub use lqs_journal as journal;
pub use lqs_metrics as metrics;
pub use lqs_obs as obs;
pub use lqs_plan as plan;
pub use lqs_prof as prof;
pub use lqs_progress as progress;
pub use lqs_server as server;
pub use lqs_storage as storage;
pub use lqs_workloads as workloads;

/// One-stop imports for applications.
pub mod prelude {
    pub use lqs_chaos::{run_soak, ChannelFaultFilter, FaultPlan, PlanFaultInjector, SoakConfig};
    pub use lqs_exec::{
        execute, execute_traced, plan_node_names, DmvSnapshot, ExecMetrics, ExecOptions,
        NodeCounters, QueryRun,
    };
    pub use lqs_history::{
        scan_history, EstimatorAccuracy, FleetHistory, HistoryMetrics, HistoryResolver,
        HistoryStore, ResolvedPlan, ResourcePrediction, SessionHistory,
    };
    pub use lqs_journal::{FsyncPolicy, Journal, JournalConfig, SessionJournal};
    pub use lqs_metrics::{Counter, Gauge, Histogram, MetricsRegistry};
    pub use lqs_obs::{
        to_chrome_trace, to_chrome_trace_sessions, to_jsonl, EventKind, EventSink, NullSink,
        RingBufferSink, SessionTap, SharedSessionSink, TraceEvent,
    };
    pub use lqs_plan::{
        AggFunc, Aggregate, ArithOp, CmpOp, CostModel, ExchangeKind, Expr, IndexOutput, JoinKind,
        NodeId, PhysicalOp, PhysicalPlan, PipelineSet, PlanBuilder, SeekKey, SeekRange, SortKey,
    };
    pub use lqs_prof::{NodeProfile, ProfileReport};
    pub use lqs_progress::{
        error_count, error_time, EnsembleConfig, EnsembleEstimator, EnsembleReplay,
        EnsembleSelection, EstimationPath, EstimatorConfig, ExplainCounters, Explanation,
        PerOperatorError, ProgressEstimator, ProgressReport, QueryModel, RefinementSource,
    };
    pub use lqs_server::{
        Health, HistoryEndpoints, MetricsServer, PollerMetrics, QueryService, QuerySpec,
        RecoveryManager, RecoveryReport, RegistryPoller, ServerConfig, ServiceMetrics,
        SessionAlert, SessionProgress, SessionRegistry, SessionResult, SessionState, Watchdog,
        WatchdogConfig,
    };
    pub use lqs_storage::{Column, DataType, Database, Row, Schema, Table, TableId, Value};
}
