//! Property tests for the log-bucketed [`Histogram`]: for arbitrary sample
//! sets, reported p50/p99 lie within the bucket scheme's relative-error
//! bound of the true sample quantile, and `sum`/`count` are exact.

use lqs_metrics::Histogram;
use proptest::prelude::*;

/// True `q`-quantile under the same rank convention the histogram uses:
/// the sample at rank `⌈q·n⌉` (1-based) of the sorted set.
fn true_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

fn check_quantile(h: &Histogram, sorted: &[u64], q: f64) {
    let reported = h.quantile(q);
    let truth = true_quantile(sorted, q) as f64;
    // The reported value is the upper edge of the bucket holding the true
    // quantile: never below it (modulo float slack in the edge itself) and
    // at most RELATIVE_ERROR above it.
    assert!(
        reported >= truth * (1.0 - 1e-9),
        "q={q}: reported {reported} below true {truth}"
    );
    assert!(
        reported <= truth * (1.0 + Histogram::RELATIVE_ERROR) * (1.0 + 1e-9),
        "q={q}: reported {reported} overshoots true {truth} beyond the bound"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn quantiles_within_relative_error_bound(
        samples in prop::collection::vec(1u64..1_000_000_000_000, 1..300)
    ) {
        let h = Histogram::new();
        for &v in &samples {
            h.observe_u64(v);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        check_quantile(&h, &sorted, 0.5);
        check_quantile(&h, &sorted, 0.99);
    }

    #[test]
    fn sum_and_count_are_exact(
        samples in prop::collection::vec(0u64..1_000_000_000, 0..300)
    ) {
        let h = Histogram::new();
        for &v in &samples {
            h.observe_u64(v);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        // Integer-valued observations with partial sums far below 2^53:
        // the CAS float accumulation is exact, not just close.
        let exact: u64 = samples.iter().sum();
        prop_assert_eq!(h.sum(), exact as f64);
    }
}
