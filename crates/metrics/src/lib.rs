//! # lqs-metrics — metrics & telemetry for the LQS stack
//!
//! The paper's premise is that progress estimation is only as good as the
//! counter surface the engine exposes; a long-running *service* needs the
//! same discipline about itself. This crate is the self-observation layer:
//!
//! * [`Counter`] / [`Gauge`] / [`Histogram`] — atomic, lock-free on the hot
//!   path, `Send + Sync`. The histogram is log-bucketed (growth `2^(1/8)`),
//!   so reported quantiles carry a ≤ 9.05% relative-error bound
//!   ([`Histogram::RELATIVE_ERROR`]) while `sum`/`count` stay exact.
//! * [`MetricsRegistry`] — named families with label dimensions and
//!   get-or-create `Arc` handles, rendered on demand in the Prometheus text
//!   exposition format (0.0.4) by [`MetricsRegistry::render`].
//!
//! Consumers thread a registry through the stack: `lqs-exec` records
//! per-operator close-time totals, `lqs-server` records session lifecycle,
//! queue-wait and run-duration distributions, poll latency, snapshot
//! staleness — and, the headline, *estimator accuracy self-telemetry*:
//! when a session finishes, its estimate trace is scored against the
//! now-known ground truth (the paper's §5 error metrics) and folded into
//! per-workload histograms. A scrape of `/metrics` then answers "how wrong
//! were our progress bars today?" continuously, the feedback loop König et
//! al. argue robust progress estimation requires.
//!
//! Everything is hand-rolled over `std` — the workspace is vendor-only, no
//! registry access, no new dependencies.

#![warn(missing_docs)]

pub mod primitives;
pub mod registry;

pub use primitives::{percentile, Counter, Gauge, Histogram};
pub use registry::{MetricKind, MetricsRegistry};
