//! The three metric primitives: [`Counter`], [`Gauge`], and the
//! log-bucketed [`Histogram`].
//!
//! All three are lock-free on the hot path — plain atomic adds for counters
//! and gauges, one atomic bucket increment plus a CAS-loop float add for
//! histograms — and `Send + Sync`, so one handle can be shared across the
//! worker pool, the poller thread, and the scrape endpoint without any
//! coordination beyond the atomics themselves.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing `u64`. Resets only with process restart, the
/// Prometheus counter contract.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (things that go up *and* down: sessions
/// currently running, events currently buffered).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the value outright.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtract one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Ratchet the gauge up to `v` if it is below it (high-water marks).
    pub fn fetch_max(&self, v: i64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Buckets per power of two. 8 sub-buckets per octave bound the relative
/// quantile error at `2^(1/8) − 1 ≈ 9.05%`.
const BUCKETS_PER_OCTAVE: usize = 8;

/// Lower edge of the first real bucket. Anything at or below this lands in
/// the underflow bucket and reports as `MIN_BOUND` (observations are
/// expected to be ≥ this; zero is common and fine).
const MIN_BOUND: f64 = 1e-9;

/// Octaves covered above [`MIN_BOUND`]: `1e-9 × 2^70 ≈ 1.18e12`, enough for
/// nanosecond latencies, row counts, and virtual-clock durations alike.
const OCTAVES: usize = 70;

/// Number of finite buckets: one underflow plus the log-spaced ladder.
const LADDER: usize = OCTAVES * BUCKETS_PER_OCTAVE;

/// A log-bucketed histogram over non-negative `f64` observations.
///
/// Buckets are geometric with growth factor `2^(1/8)`: bucket `k` covers
/// `(MIN_BOUND·g^(k−1), MIN_BOUND·g^k]`, so any reported quantile is the
/// upper edge of the bucket holding the true quantile and overshoots it by
/// at most [`Histogram::RELATIVE_ERROR`]. `sum` and `count` are exact
/// (`count` always; `sum` whenever the observations are integers whose
/// partial sums stay below 2⁵³, which covers every counter-valued family in
/// this workspace).
///
/// The hot path is one `log2`, one atomic increment, and one CAS-loop
/// float add — no locks, no allocation.
#[derive(Debug)]
pub struct Histogram {
    /// `counts[0]` is the underflow bucket (`v ≤ MIN_BOUND`), `counts[1..=LADDER]`
    /// the geometric ladder, `counts[LADDER + 1]` the overflow bucket.
    counts: Box<[AtomicU64]>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Worst-case relative overshoot of a reported quantile versus the true
    /// sample quantile: `2^(1/8) − 1`.
    pub const RELATIVE_ERROR: f64 = 0.090_507_732_665_257_66;

    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: (0..LADDER + 2).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    fn bucket_index(v: f64) -> usize {
        if v.is_nan() || v <= MIN_BOUND {
            return 0; // underflow; NaN also lands here harmlessly
        }
        let k = ((v / MIN_BOUND).log2() * BUCKETS_PER_OCTAVE as f64).ceil();
        // Compare in the float domain before casting: `k` can be huge or
        // +inf (e.g. `v / MIN_BOUND` overflowing), and an out-of-range
        // float→int cast must never reach the `as` below.
        if k.is_nan() || k >= LADDER as f64 + 0.5 {
            return LADDER + 1;
        }
        (k as usize).max(1)
    }

    /// Upper edge of bucket `i` (`MIN_BOUND` for the underflow bucket,
    /// `+∞` for the overflow bucket).
    fn bucket_bound(i: usize) -> f64 {
        if i == 0 {
            MIN_BOUND
        } else if i > LADDER {
            f64::INFINITY
        } else {
            MIN_BOUND * 2f64.powf(i as f64 / BUCKETS_PER_OCTAVE as f64)
        }
    }

    /// Record one observation. Negative and NaN values count into the
    /// underflow bucket and contribute `0` to the sum.
    pub fn observe(&self, v: f64) {
        let i = Self::bucket_index(v);
        self.counts[i].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let add = if v.is_finite() && v > 0.0 { v } else { 0.0 };
        if add != 0.0 {
            let mut cur = self.sum_bits.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(cur) + add).to_bits();
                match self.sum_bits.compare_exchange_weak(
                    cur,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        }
    }

    /// Record a `u64` observation (convenience for counter-valued samples).
    pub fn observe_u64(&self, v: u64) {
        self.observe(v as f64);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// The `q`-quantile (`q` in `[0, 1]`), reported as the upper edge of the
    /// bucket containing the true sample quantile — within
    /// [`Self::RELATIVE_ERROR`] above it for observations inside the bucket
    /// range. Returns `NaN` on an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return f64::NAN;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cum += c.load(Ordering::Relaxed);
            if cum >= rank {
                return Self::bucket_bound(i);
            }
        }
        f64::INFINITY
    }

    /// [`Self::quantile`] with an explicit `count == 0` guard: an empty
    /// histogram reports `0.0` instead of `NaN`. This is the variant every
    /// exposition path (Prometheus text, `/sessions` JSON, derived gauges)
    /// must use — `NaN` poisons both formats.
    pub fn quantile_or_zero(&self, q: f64) -> f64 {
        if self.count() == 0 {
            0.0
        } else {
            self.quantile(q)
        }
    }

    /// Non-empty buckets as `(upper_bound, cumulative_count)` pairs in
    /// ascending bound order — the shape Prometheus `_bucket{le=...}` lines
    /// want. The final implicit `+Inf` bucket equals [`Self::count`].
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            let c = c.load(Ordering::Relaxed);
            if c > 0 {
                cum += c;
                out.push((Self::bucket_bound(i), cum));
            }
        }
        out
    }
}

/// Exact sample percentile over an **ascending-sorted** slice, by linear
/// interpolation between closest ranks (the common "type 7" estimator).
/// Unlike [`Histogram::quantile`] this is exact, not bucketed — the history
/// layer uses it for per-workload p50/p90/p99 curves computed offline from
/// journal scans, where the full sample set is in hand and byte-for-byte
/// deterministic output matters. Returns 0.0 on an empty slice.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    match sorted {
        [] => 0.0,
        [only] => *only,
        _ => {
            let q = q.clamp(0.0, 1.0);
            let pos = q * (sorted.len() - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            let frac = pos - lo as f64;
            sorted[lo] + (sorted[hi] - sorted[lo]) * frac
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_exact_interpolated() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 4.0);
        assert_eq!(percentile(&v, 0.5), 2.5);
        assert!((percentile(&v, 0.9) - 3.7).abs() < 1e-12);
    }

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);

        let g = Gauge::new();
        g.set(5);
        g.dec();
        g.add(-2);
        assert_eq!(g.get(), 2);
        g.fetch_max(10);
        g.fetch_max(3);
        assert_eq!(g.get(), 10);
    }

    #[test]
    fn histogram_sum_count_exact_for_integers() {
        let h = Histogram::new();
        for v in [1u64, 5, 100, 1_000_000, 0] {
            h.observe_u64(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1_000_106.0);
    }

    #[test]
    fn histogram_quantile_within_bound() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.observe_u64(v);
        }
        let bound = (1.0 + Histogram::RELATIVE_ERROR) * (1.0 + 1e-9);
        let p50 = h.quantile(0.5);
        assert!((500.0..=500.0 * bound).contains(&p50));
        let p99 = h.quantile(0.99);
        assert!((990.0..=990.0 * bound).contains(&p99));
    }

    #[test]
    fn histogram_extremes() {
        let h = Histogram::new();
        assert!(h.quantile(0.5).is_nan());
        h.observe(0.0);
        h.observe(-3.0);
        h.observe(f64::NAN);
        h.observe(1e300); // overflow bucket
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1e300);
        assert_eq!(h.quantile(1.0), f64::INFINITY);
        assert_eq!(h.quantile(0.0), MIN_BOUND);
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets.first().unwrap().1, 3); // underflow holds 0, -3, NaN
        assert_eq!(buckets.last().unwrap(), &(f64::INFINITY, 4));
    }

    #[test]
    fn histogram_is_send_sync_and_concurrent() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Counter>();
        assert_send_sync::<Gauge>();
        assert_send_sync::<Histogram>();

        let h = std::sync::Arc::new(Histogram::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for v in 1..=1000u64 {
                        h.observe_u64(v);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
        // 4 × Σ1..1000 — integer partial sums, so the CAS float add is exact.
        assert_eq!(h.sum(), 4.0 * 500_500.0);
    }
}
