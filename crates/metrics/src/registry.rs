//! The [`MetricsRegistry`]: named metric families with label dimensions,
//! plus the Prometheus text-format exposition writer.
//!
//! Registration (name + label values → handle) takes one mutex and is meant
//! for setup paths and low-frequency label resolution (e.g. once per
//! operator per query at close time). The returned `Arc` handles are the
//! hot path: callers keep them and touch only atomics afterwards.

use crate::primitives::{Counter, Gauge, Histogram};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// Kind of a metric family, fixed at first registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone counter.
    Counter,
    /// Instantaneous signed value.
    Gauge,
    /// Log-bucketed distribution.
    Histogram,
}

impl MetricKind {
    fn exposition_name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Sorted `(label, value)` pairs identifying one child within a family.
type LabelSet = Vec<(String, String)>;

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Family {
    kind: MetricKind,
    help: String,
    children: BTreeMap<LabelSet, Metric>,
}

/// A process-wide collection of metric families, rendered on demand in the
/// Prometheus text exposition format (version 0.0.4).
///
/// Handles are get-or-create: asking twice for the same `(name, labels)`
/// returns the same underlying metric, so independent subsystems can share
/// a family without coordination.
#[derive(Default)]
pub struct MetricsRegistry {
    families: Mutex<BTreeMap<String, Family>>,
}

fn validate_name(name: &str) {
    let ok = !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':');
    assert!(ok, "invalid metric name {name:?}");
}

fn validate_label(name: &str) {
    let ok = !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
    assert!(ok, "invalid label name {name:?}");
    assert_ne!(name, "le", "label \"le\" is reserved for histogram buckets");
}

fn label_set(labels: &[(&str, &str)]) -> LabelSet {
    let mut out: LabelSet = labels
        .iter()
        .map(|(k, v)| {
            validate_label(k);
            ((*k).to_owned(), (*v).to_owned())
        })
        .collect();
    out.sort();
    out
}

/// Escape a label value per the exposition format: backslash, quote, LF.
fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn render_labels(out: &mut String, labels: &LabelSet, extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{v}\"");
    }
    out.push('}');
}

/// Render an `f64` the exposition format accepts (`+Inf`/`-Inf`/`NaN`
/// spellings included).
fn render_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_owned()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else if v.is_nan() {
        "NaN".to_owned()
    } else {
        format!("{v}")
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn child<T, F, G>(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: MetricKind,
        make: F,
        cast: G,
    ) -> Arc<T>
    where
        F: FnOnce() -> Metric,
        G: FnOnce(&Metric) -> Option<Arc<T>>,
    {
        validate_name(name);
        let key = label_set(labels);
        let mut families = self.families.lock().expect("metrics registry poisoned");
        let family = families.entry(name.to_owned()).or_insert_with(|| Family {
            kind,
            help: help.to_owned(),
            children: BTreeMap::new(),
        });
        assert_eq!(
            family.kind, kind,
            "metric {name:?} already registered as a {:?}",
            family.kind
        );
        let metric = family.children.entry(key).or_insert_with(make);
        cast(metric).expect("kind checked above")
    }

    /// Get or create a counter in family `name` with the given labels.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.child(
            name,
            help,
            labels,
            MetricKind::Counter,
            || Metric::Counter(Arc::new(Counter::new())),
            |m| match m {
                Metric::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// Get or create a gauge in family `name` with the given labels.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.child(
            name,
            help,
            labels,
            MetricKind::Gauge,
            || Metric::Gauge(Arc::new(Gauge::new())),
            |m| match m {
                Metric::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )
    }

    /// Get or create a histogram in family `name` with the given labels.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.child(
            name,
            help,
            labels,
            MetricKind::Histogram,
            || Metric::Histogram(Arc::new(Histogram::new())),
            |m| match m {
                Metric::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
    }

    /// Remove one child (the metric with exactly these labels) from family
    /// `name`. Returns `true` if it existed. Outstanding `Arc` handles stay
    /// valid but the metric no longer renders — this is how per-session
    /// gauges are retired on eviction instead of lingering at their last
    /// value forever. An emptied family keeps its name and kind (re-adding
    /// a child later must not change type).
    pub fn remove(&self, name: &str, labels: &[(&str, &str)]) -> bool {
        let key = label_set(labels);
        let mut families = self.families.lock().expect("metrics registry poisoned");
        families
            .get_mut(name)
            .is_some_and(|f| f.children.remove(&key).is_some())
    }

    /// Number of registered families.
    pub fn family_count(&self) -> usize {
        self.families
            .lock()
            .expect("metrics registry poisoned")
            .len()
    }

    /// Render every family in the Prometheus text exposition format,
    /// families sorted by name, children by label set. Histograms render
    /// cumulative `_bucket{le=...}` lines for non-empty buckets plus the
    /// mandatory `+Inf` bucket, `_sum`, and `_count`.
    pub fn render(&self) -> String {
        let families = self.families.lock().expect("metrics registry poisoned");
        let mut out = String::new();
        for (name, family) in families.iter() {
            let _ = writeln!(out, "# HELP {name} {}", family.help.replace('\n', " "));
            let _ = writeln!(out, "# TYPE {name} {}", family.kind.exposition_name());
            for (labels, metric) in &family.children {
                match metric {
                    Metric::Counter(c) => {
                        out.push_str(name);
                        render_labels(&mut out, labels, None);
                        let _ = writeln!(out, " {}", c.get());
                    }
                    Metric::Gauge(g) => {
                        out.push_str(name);
                        render_labels(&mut out, labels, None);
                        let _ = writeln!(out, " {}", g.get());
                    }
                    Metric::Histogram(h) => {
                        for (bound, cum) in h.cumulative_buckets() {
                            if bound == f64::INFINITY {
                                continue; // the +Inf line below covers it
                            }
                            let _ = write!(out, "{name}_bucket");
                            render_labels(&mut out, labels, Some(("le", &render_f64(bound))));
                            let _ = writeln!(out, " {cum}");
                        }
                        let _ = write!(out, "{name}_bucket");
                        render_labels(&mut out, labels, Some(("le", "+Inf")));
                        let _ = writeln!(out, " {}", h.count());
                        let _ = write!(out, "{name}_sum");
                        render_labels(&mut out, labels, None);
                        let _ = writeln!(out, " {}", render_f64(h.sum()));
                        let _ = write!(out, "{name}_count");
                        render_labels(&mut out, labels, None);
                        let _ = writeln!(out, " {}", h.count());
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_same_handle() {
        let r = MetricsRegistry::new();
        let a = r.counter("lqs_test_total", "help", &[("op", "scan")]);
        let b = r.counter("lqs_test_total", "help", &[("op", "scan")]);
        a.inc();
        assert_eq!(b.get(), 1);
        // Different labels → different child, same family.
        let c = r.counter("lqs_test_total", "help", &[("op", "sort")]);
        assert_eq!(c.get(), 0);
        assert_eq!(r.family_count(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = MetricsRegistry::new();
        r.counter("lqs_test_total", "help", &[]);
        r.gauge("lqs_test_total", "help", &[]);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_name_panics() {
        MetricsRegistry::new().counter("9bad", "help", &[]);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn le_label_reserved() {
        MetricsRegistry::new().histogram("lqs_h", "help", &[("le", "x")]);
    }

    #[test]
    fn render_counter_gauge_format() {
        let r = MetricsRegistry::new();
        r.counter("b_total", "counts b", &[("q", "tpch-q01")])
            .add(3);
        r.gauge("a_now", "gauges a", &[]).set(-2);
        let text = r.render();
        // Families sorted by name; label values quoted.
        let expected = "# HELP a_now gauges a\n# TYPE a_now gauge\na_now -2\n\
                        # HELP b_total counts b\n# TYPE b_total counter\nb_total{q=\"tpch-q01\"} 3\n";
        assert_eq!(text, expected);
    }

    #[test]
    fn render_histogram_cumulative_and_exact() {
        let r = MetricsRegistry::new();
        let h = r.histogram("lat", "latency", &[("kind", "poll")]);
        h.observe(1.0);
        h.observe(2.0);
        h.observe(1e13); // beyond the ladder: lands in the overflow bucket
        let text = r.render();
        assert!(text.contains("# TYPE lat histogram"));
        assert!(text.contains("lat_bucket{kind=\"poll\",le=\"+Inf\"} 3"));
        assert!(text.contains("lat_sum{kind=\"poll\"} 10000000000003"));
        assert!(text.contains("lat_count{kind=\"poll\"} 3"));
        // Cumulative: the bucket holding 2.0 must count 1.0 as well.
        let two_line = text
            .lines()
            .filter(|l| l.starts_with("lat_bucket") && !l.contains("+Inf"))
            .nth(1)
            .expect("two finite buckets");
        assert!(two_line.ends_with(" 2"), "line: {two_line}");
    }

    #[test]
    fn remove_retires_child_from_exposition() {
        let r = MetricsRegistry::new();
        let g = r.gauge("lqs_session_progress", "h", &[("session", "s1")]);
        g.set(42);
        r.gauge("lqs_session_progress", "h", &[("session", "s2")])
            .set(7);
        assert!(r.render().contains("session=\"s1\"} 42"));
        assert!(r.remove("lqs_session_progress", &[("session", "s1")]));
        let text = r.render();
        assert!(!text.contains("s1"), "evicted gauge still rendered: {text}");
        assert!(text.contains("session=\"s2\"} 7"));
        // Idempotent; unknown families are a no-op.
        assert!(!r.remove("lqs_session_progress", &[("session", "s1")]));
        assert!(!r.remove("no_such_family", &[]));
        // The old handle stays usable (writes just go nowhere visible).
        g.set(1);
    }

    #[test]
    fn exposition_never_contains_nan() {
        let r = MetricsRegistry::new();
        // The NaN hazards: an empty histogram's quantiles, and gauges
        // derived from them. quantile_or_zero is the guarded path.
        let h = r.histogram("lqs_poll_latency_ns", "h", &[]);
        assert!(h.quantile(0.99).is_nan()); // the unguarded value IS NaN...
        assert_eq!(h.quantile_or_zero(0.99), 0.0); // ...the guarded one is 0
        let g = r.gauge("lqs_poll_latency_ns_p99", "h", &[]);
        g.set(h.quantile_or_zero(0.99) as i64);
        let text = r.render();
        assert!(!text.contains("NaN"), "exposition contains NaN: {text}");
        // Still NaN-free once the histogram has data.
        h.observe(123.0);
        r.gauge("lqs_poll_latency_ns_p99", "h", &[])
            .set(h.quantile_or_zero(0.99) as i64);
        assert!(!r.render().contains("NaN"));
    }

    #[test]
    fn label_values_escaped() {
        let r = MetricsRegistry::new();
        r.counter("c_total", "h", &[("q", "a\"b\\c\nd")]).inc();
        let text = r.render();
        assert!(text.contains("c_total{q=\"a\\\"b\\\\c\\nd\"} 1"));
    }
}
