//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` for the shapes this workspace actually
//! uses — named-field structs, tuple structs, and fieldless enums — by
//! hand-parsing the derive input token stream (no `syn`/`quote`, so the
//! crate builds with nothing but the toolchain).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (the stub trait: `fn to_value(&self) -> Value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => render(&item).parse().expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

enum Item {
    /// Struct name + named field identifiers.
    Struct { name: String, fields: Vec<String> },
    /// Tuple struct name + arity.
    TupleStruct { name: String, arity: usize },
    /// Enum name + unit variant names.
    UnitEnum { name: String, variants: Vec<String> },
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes and visibility until `struct` / `enum`.
    let mut kind = None;
    while let Some(tt) = tokens.next() {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Attribute: consume the following bracket group.
                tokens.next();
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    kind = Some(s);
                    break;
                }
                // `pub`, `pub(crate)` path pieces etc. — skip.
            }
            _ => {}
        }
    }
    let kind = kind.ok_or("Serialize derive: expected struct or enum")?;
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("Serialize derive: expected type name".into()),
    };
    // Reject generics (not needed by this workspace).
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "Serialize derive stub does not support generic type `{name}`"
        ));
    }
    // Find the body group (skips `where` clauses we don't support anyway).
    let body = tokens.find_map(|tt| match tt {
        TokenTree::Group(g)
            if g.delimiter() == Delimiter::Brace || g.delimiter() == Delimiter::Parenthesis =>
        {
            Some(g)
        }
        _ => None,
    });
    let Some(body) = body else {
        return Err(format!("Serialize derive: `{name}` has no body"));
    };
    if kind == "enum" {
        let variants = parse_unit_variants(body.stream())?;
        return Ok(Item::UnitEnum { name, variants });
    }
    match body.delimiter() {
        Delimiter::Brace => Ok(Item::Struct {
            fields: parse_named_fields(body.stream()),
            name,
        }),
        _ => Ok(Item::TupleStruct {
            arity: count_tuple_fields(body.stream()),
            name,
        }),
    }
}

/// Field names of `{ a: T, b: U, ... }`, skipping attributes and visibility.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip leading attributes (`#[...]`, doc comments included).
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next(); // the bracket group
                }
                _ => break,
            }
        }
        // Visibility.
        if matches!(tokens.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            tokens.next();
            if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                tokens.next();
            }
        }
        // Field name.
        let Some(TokenTree::Ident(id)) = tokens.next() else {
            break;
        };
        fields.push(id.to_string());
        // Expect `:`, then consume the type until a top-level `,`.
        let mut angle_depth = 0i32;
        for tt in tokens.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
    fields
}

/// Arity of a tuple-struct body `(T, U, ...)`.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut arity = 0usize;
    let mut any = false;
    let mut angle_depth = 0i32;
    for tt in stream {
        any = true;
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => arity += 1,
                _ => {}
            }
        }
    }
    if any {
        arity + 1
    } else {
        0
    }
}

/// Variant names of a fieldless enum; errors on data-carrying variants.
fn parse_unit_variants(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                    tokens.next();
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(id)) = tokens.next() else {
            break;
        };
        variants.push(id.to_string());
        if matches!(tokens.peek(), Some(TokenTree::Group(_))) {
            return Err("Serialize derive stub only supports fieldless enum variants".into());
        }
    }
    Ok(variants)
}

fn render(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "__fields.push(({f:?}.to_string(), serde::Serialize::to_value(&self.{f})));\n"
                ));
            }
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         let mut __fields: Vec<(String, serde::Value)> = Vec::new();\n\
                         {pushes}\
                         serde::Value::Object(__fields)\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let mut pushes = String::new();
            for i in 0..*arity {
                pushes.push_str(&format!(
                    "__items.push(serde::Serialize::to_value(&self.{i}));\n"
                ));
            }
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         let mut __items: Vec<serde::Value> = Vec::new();\n\
                         {pushes}\
                         serde::Value::Array(__items)\n\
                     }}\n\
                 }}"
            )
        }
        Item::UnitEnum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                arms.push_str(&format!(
                    "{name}::{v} => serde::Value::String({v:?}.to_string()),\n"
                ));
            }
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
