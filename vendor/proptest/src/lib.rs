//! Offline stand-in for `proptest`, implementing the subset this workspace
//! uses: the `proptest!` macro, composable strategies (ranges, tuples,
//! `Just`, `any`, `prop_map`, `prop_recursive`, `prop_oneof!`,
//! `collection::vec`, `option::weighted`), and `prop_assert*`.
//!
//! Semantics differ from upstream in two deliberate ways: generation is
//! deterministic per (test name, case index) with no external entropy, and
//! failures are **not shrunk** — the failing case panics immediately with
//! the generated inputs' `Debug` rendering left to the assertion message.

pub mod strategy;
pub mod test_runner;

/// `proptest::collection` — collection strategies.
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};

    /// Strategy for `Vec<T>` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy {
            element,
            min: size.start,
            max: size.end.max(size.start + 1),
        }
    }
}

/// `proptest::option` — strategies for `Option<T>`.
pub mod option {
    use crate::strategy::{OptionStrategy, Strategy};

    /// `Some` with probability `p_some`, `None` otherwise.
    pub fn weighted<S: Strategy>(p_some: f64, inner: S) -> OptionStrategy<S> {
        OptionStrategy { p_some, inner }
    }

    /// `Some`/`None` with equal probability.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        weighted(0.5, inner)
    }
}

/// FNV-1a hash of a test name, for deterministic per-test seeding.
pub fn fnv(name: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` module alias used by `prop::collection::vec` etc.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::strategy;
    }
}

/// Define property tests. Each `fn name(x in strategy, ...)` runs
/// `ProptestConfig::cases` times with deterministically seeded inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{($cfg) $($rest)*}
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{($crate::test_runner::ProptestConfig::default()) $($rest)*}
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($parm:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    $crate::fnv(concat!(module_path!(), "::", stringify!($name))),
                    __case as u64,
                );
                $(let $parm = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
}

/// Assert within a property test (no shrinking; panics immediately).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality within a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality within a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice among strategies with a common value type. Each arm is
/// boxed; the (unused upstream) weighted form `w => strat` is accepted and
/// treated as weight-proportional.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn tree() -> impl Strategy<Value = u32> {
        Just(1u32).prop_recursive(3, 8, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| a + b)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in -5i64..15, n in 1usize..=4) {
            prop_assert!((-5..15).contains(&x));
            prop_assert!((1..=4).contains(&n));
        }

        #[test]
        fn vec_and_option(v in prop::collection::vec((prop::option::weighted(0.9, 0i64..10), 0i64..3), 0..40)) {
            prop_assert!(v.len() < 40);
            for (o, p) in v {
                if let Some(x) = o { prop_assert!((0..10).contains(&x)); }
                prop_assert!((0..3).contains(&p));
            }
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![Just(1u8), Just(2u8), (0u8..3).prop_map(|v| v + 10)]) {
            prop_assert!(x == 1 || x == 2 || (10..13).contains(&x));
        }

        #[test]
        fn recursive_bottoms_out(t in tree()) {
            // Depth 3 with binary branching: at most 2^3 leaves of value 1.
            prop_assert!((1..=8).contains(&t), "t={}", t);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::deterministic(1, 2);
        let mut b = crate::test_runner::TestRng::deterministic(1, 2);
        let s = crate::collection::vec(0i64..100, 0..10);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
