//! Deterministic RNG and per-test configuration.

/// Configuration accepted by `proptest!`'s `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` cases (upstream-compatible constructor).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; keep CI fast while still randomized.
        ProptestConfig { cases: 64 }
    }
}

/// xoshiro256++ seeded from (test-name hash, case index) — every test case
/// regenerates the same inputs on every run and machine.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Deterministic stream for one test case.
    pub fn deterministic(name_hash: u64, case: u64) -> Self {
        let mut x = name_hash ^ case.wrapping_mul(0x9e3779b97f4a7c15);
        let mut next = || {
            x = x.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.s = s;
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}
