//! Composable value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Build a recursive strategy: `self` is the leaf, and `f` wraps an
    /// inner strategy into one more level. `depth` bounds nesting;
    /// `_desired_size`/`_expected_branch_size` are accepted for
    /// upstream-compatibility but unused.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf: BoxedStrategy<Self::Value> = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let next_level = f(current).boxed();
            // Mix in the leaf so generated sizes vary below the depth bound.
            current = Union::weighted(vec![(1, leaf.clone()), (3, next_level)]).boxed();
        }
        current
    }

    /// Type-erase into a clonable, shareable strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Object-safe view of [`Strategy`].
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, reference-counted strategy (clonable, like upstream's).
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform or weighted choice among boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Uniform choice.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        Self::weighted(arms.into_iter().map(|a| (1, a)).collect())
    }

    /// Weight-proportional choice.
    pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w as u64).sum::<u64>().max(1);
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut draw = rng.below(self.total);
        for (w, arm) in &self.arms {
            if draw < *w as u64 {
                return arm.generate(rng);
            }
            draw -= *w as u64;
        }
        self.arms.last().expect("non-empty").1.generate(rng)
    }
}

/// `collection::vec` adapter.
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) min: usize,
    pub(crate) max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.max - self.min).max(1) as u64;
        let len = self.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `option::weighted` adapter.
pub struct OptionStrategy<S> {
    pub(crate) p_some: f64,
    pub(crate) inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.next_f64() < self.p_some {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u64 + 1;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I, 9 J)
}

/// Types with a canonical `any::<T>()` strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_f64()
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<bool>()`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}
