//! Offline stand-in for `criterion`, covering the subset this workspace
//! uses: `Criterion`, `benchmark_group`/`bench_function`, `Bencher::iter` /
//! `iter_batched`, `Throughput`, `BatchSize`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple: a short warm-up, then repeated timed
//! batches with the median batch reported as ns/iter (median resists
//! one-off scheduler noise better than the mean). There is no statistical
//! regression analysis or HTML output — results print to stdout.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Units processed per iteration, used to derive a rate in the report.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (rows, events, ...) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Hint for how much setup output to buffer in `iter_batched`. The stub
/// runs one setup per timed iteration regardless, so the variants only
/// exist for source compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Input of the same magnitude as one iteration's work.
    PerIteration,
}

/// Top-level benchmark driver.
pub struct Criterion {
    warm_up: Duration,
    measure: Duration,
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(300),
            measure: Duration::from_millis(900),
            samples: 15,
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== group: {name} ==");
        BenchmarkGroup {
            criterion: self,
            throughput: None,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(self, name, None, f);
        self
    }
}

/// A named set of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(self.criterion, name, self.throughput, f);
        self
    }

    /// End the group (prints nothing; exists for source compatibility).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; owns the timing loop.
pub struct Bencher<'a> {
    criterion: &'a Criterion,
    /// Median ns per iteration, filled in by `iter`/`iter_batched`.
    ns_per_iter: Option<f64>,
}

impl Bencher<'_> {
    /// Time `routine` in batches; the median batch becomes the result.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up: run untimed until the warm-up budget elapses.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.criterion.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = self.criterion.warm_up.as_nanos() as f64 / warm_iters.max(1) as f64;

        // Size each timed batch so samples fill the measurement budget.
        let budget_ns = self.criterion.measure.as_nanos() as f64;
        let batch = ((budget_ns / self.criterion.samples as f64 / per_iter.max(1.0)) as u64).max(1);

        let mut per_iter_samples = Vec::with_capacity(self.criterion.samples);
        for _ in 0..self.criterion.samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            per_iter_samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        per_iter_samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = Some(per_iter_samples[per_iter_samples.len() / 2]);
    }

    /// Time `routine` on fresh input from `setup`, excluding setup time.
    /// One setup runs per timed iteration (the `BatchSize` hint is ignored).
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.criterion.warm_up {
            let input = setup();
            black_box(routine(input));
        }

        // Batches of 1: setup time must stay outside the timed window.
        let samples = (self.criterion.samples * 3).max(9);
        let mut per_iter_samples = Vec::with_capacity(samples);
        for _ in 0..samples {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            per_iter_samples.push(t.elapsed().as_nanos() as f64);
        }
        per_iter_samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = Some(per_iter_samples[per_iter_samples.len() / 2]);
    }
}

fn run_bench<F>(criterion: &Criterion, name: &str, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        criterion,
        ns_per_iter: None,
    };
    f(&mut bencher);
    match bencher.ns_per_iter {
        Some(ns) => {
            let rate = match throughput {
                Some(Throughput::Elements(n)) => {
                    format!("  ({:.1} Melem/s)", n as f64 / ns * 1e3)
                }
                Some(Throughput::Bytes(n)) => {
                    format!("  ({:.1} MiB/s)", n as f64 / ns * 1e9 / (1 << 20) as f64)
                }
                None => String::new(),
            };
            println!("{name:<40} {:>14} ns/iter{rate}", format_ns(ns));
        }
        None => println!("{name:<40} (no measurement: bencher never ran iter)"),
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}e9", ns / 1e9)
    } else {
        let int = ns.round() as u64;
        // Thousands separators for readability.
        let s = int.to_string();
        let mut out = String::new();
        for (i, c) in s.chars().enumerate() {
            if i > 0 && (s.len() - i).is_multiple_of(3) {
                out.push(',');
            }
            out.push(c);
        }
        out
    }
}

/// Collect benchmark functions into one runner (source-compatible subset:
/// the `Criterion::default()`-configured form).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_produces_measurement() {
        let mut criterion = Criterion {
            warm_up: Duration::from_millis(5),
            measure: Duration::from_millis(10),
            samples: 5,
        };
        let mut g = criterion.benchmark_group("test");
        g.throughput(Throughput::Elements(10));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }
}
