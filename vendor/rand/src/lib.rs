//! Offline stand-in for `rand` 0.8, covering the API this workspace uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `gen`, `gen_range` (half-open and inclusive integer/float
//! ranges), and `gen_bool`.
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — deterministic for a
//! given seed, which is all the workload generators require. Streams differ
//! from the real `rand` crate's, so regenerated datasets are reproducible
//! against *this* stub, not against upstream `rand`.

use std::ops::{Range, RangeInclusive};

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface (subset of `rand::Rng`).
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample a value of a [`Standard`]-distributed type (`rng.gen::<f64>()`
    /// yields a uniform value in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range (`0..n`, `0..=n`, `0.0..x`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample(self) < p
    }
}

/// Types samplable from raw bits (stand-in for `Standard: Distribution<T>`).
pub trait Standard {
    /// Draw one value.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for i64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for usize {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges a value can be drawn from (stand-in for `rand::distributions`'
/// `SampleRange`).
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

/// Types with uniform sampling over a bounded interval. Kept generic so the
/// blanket [`SampleRange`] impls below mirror upstream's single-impl shape,
/// which is what lets integer-literal ranges (`0..4`) unify with the use
/// site's expected type (e.g. `usize` for slice indexing).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
            fn sample_inclusive<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_int_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty gen_range");
                lo + (f64::sample(rng) as $t) * (hi - lo)
            }
            fn sample_inclusive<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty gen_range");
                lo + (f64::sample(rng) as $t) * (hi - lo)
            }
        }
    )*};
}
impl_float_uniform!(f32, f64);

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, seedable generator — xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the xoshiro authors recommend.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(10);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i64..15);
            assert!((-5..15).contains(&v));
            let w = rng.gen_range(1usize..=3);
            assert!((1..=3).contains(&w));
            let f = rng.gen_range(0.0f64..1000.0);
            assert!((0.0..1000.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_rate() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits={hits}");
    }

    #[test]
    fn uniformish_spread() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((1_700..2_300).contains(&c), "count {c}");
        }
    }
}
