//! Offline stand-in for `serde_json` over the vendored `serde` stub's
//! [`Value`] model: compact/pretty rendering plus a small recursive-descent
//! JSON parser for [`from_str`].

pub use serde::Value;

/// Parse or render error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    /// Byte offset of a parse error, when known.
    pub offset: Option<usize>,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.offset {
            Some(at) => write!(f, "{} at byte {at}", self.msg),
            None => write!(f, "{}", self.msg),
        }
    }
}

impl std::error::Error for Error {}

/// Serialize to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json())
}

/// Serialize to pretty JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json_pretty())
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Parse a JSON document into a [`Value`].
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error {
            msg: msg.to_string(),
            offset: Some(self.pos),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        if float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid number"))
        } else {
            match text.parse::<i64>() {
                Ok(i) => Ok(Value::Int(i)),
                // Integer overflow: fall back to float like serde_json's
                // arbitrary-precision-off behaviour.
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| self.err("invalid number")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this repo's
                            // output; map lone surrogates to replacement.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we consumed.
                    let start = self.pos - 1;
                    let len = utf8_len(c);
                    if start + len > self.bytes.len() {
                        return Err(self.err("invalid utf-8"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let src = r#"{"a": [1, 2.5, "x\n", true, null], "b": {"c": -7}}"#;
        let v = from_str(src).unwrap();
        assert_eq!(v["a"][0], 1i64);
        assert_eq!(v["a"][1], 2.5f64);
        assert_eq!(v["a"][2], "x\n");
        assert_eq!(v["b"]["c"], -7i64);
        let re = from_str(&v.to_json_pretty()).unwrap();
        assert_eq!(v, re);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("nul").is_err());
        assert!(from_str("1 2").is_err());
    }

    #[test]
    fn pretty_output_shape() {
        let v = from_str(r#"{"k":[1]}"#).unwrap();
        assert_eq!(v.to_json_pretty(), "{\n  \"k\": [\n    1\n  ]\n}");
    }
}
