//! Offline stand-in for `serde`, providing exactly what this workspace uses:
//! a [`Serialize`] trait rendering into a JSON [`Value`] model, plus the
//! `#[derive(Serialize)]` macro (re-exported from the sibling
//! `serde_derive` stub).
//!
//! The real serde separates serialization from data formats; this stub
//! collapses the pipeline to "convert to a JSON value", which is the only
//! format the repo emits. `serde_json` (also vendored) renders and parses
//! these values.

// Let the derive macro's generated `serde::...` paths resolve inside this
// crate's own tests.
extern crate self as serde;

pub use serde_derive::Serialize;

/// A JSON value. Object fields keep insertion order so serialized structs
/// read in declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Object field lookup; `None` for non-objects / missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element lookup.
    pub fn get_index(&self, i: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(i),
            _ => None,
        }
    }

    /// The value as `f64` if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as `i64` if an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as `u64` if a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as `&str` if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool` if a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is an array, and its length.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Render as compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, None, 0);
        out
    }

    /// Render as pretty JSON with two-space indentation.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, Some(2), 0);
        out
    }

    fn write_json(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::Float(f) => write_f64(out, *f),
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    item.write_json(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push(']');
            }
            Value::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write_json(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        let s = format!("{f}");
        out.push_str(&s);
        // JSON numbers need a decimal point or exponent to round-trip as
        // floats; `{}` formats 2.0 as "2".
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no Inf/NaN; mirror serde_json's lossy `null`.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        self.get_index(i).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

macro_rules! impl_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match self {
                    Value::Int(i) => *i == *other as i64,
                    Value::Float(f) => *f == *other as f64,
                    _ => false,
                }
            }
        }
    )*};
}
impl_eq_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Conversion to the JSON value model — the stub's whole serialization story.
pub trait Serialize {
    /// Render `self` as a JSON value.
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64, u8, u16, u32, usize, isize);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        if *self <= i64::MAX as u64 {
            Value::Int(*self as i64)
        } else {
            Value::Float(*self as f64)
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

/// Map keys must render as JSON strings.
pub trait ObjectKey {
    /// The field name to use.
    fn object_key(&self) -> String;
}

impl ObjectKey for String {
    fn object_key(&self) -> String {
        self.clone()
    }
}

impl ObjectKey for &str {
    fn object_key(&self) -> String {
        self.to_string()
    }
}

macro_rules! impl_key_int {
    ($($t:ty),*) => {$(
        impl ObjectKey for $t {
            fn object_key(&self) -> String {
                self.to_string()
            }
        }
    )*};
}
impl_key_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl<K: ObjectKey, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.object_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: ObjectKey, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.object_key(), v.to_value()))
                .collect(),
        )
    }
}

macro_rules! impl_ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
impl_ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(3i64.to_value().to_json(), "3");
        assert_eq!(2.5f64.to_value().to_json(), "2.5");
        assert_eq!(2.0f64.to_value().to_json(), "2.0");
        assert_eq!("a\"b".to_value().to_json(), "\"a\\\"b\"");
        assert_eq!(true.to_value().to_json(), "true");
        assert_eq!(Option::<i64>::None.to_value().to_json(), "null");
    }

    #[test]
    fn collections_render() {
        let v = vec![(String::from("x"), 1.5f64)];
        assert_eq!(v.to_value().to_json(), "[[\"x\",1.5]]");
        let mut m = std::collections::BTreeMap::new();
        m.insert("k".to_string(), 7u64);
        assert_eq!(m.to_value().to_json(), "{\"k\":7}");
    }

    #[test]
    fn indexing_and_eq() {
        let v = Value::Array(vec![Value::Object(vec![(
            "workload".to_string(),
            Value::String("W1".to_string()),
        )])]);
        assert_eq!(v[0]["workload"], "W1");
        assert_eq!(v[0]["missing"], Value::Null);
        assert_eq!(Value::Int(3), 3u32);
    }

    #[test]
    fn derive_on_named_struct() {
        #[derive(Serialize)]
        struct S {
            a: i64,
            b: Vec<f64>,
        }
        let s = S { a: 1, b: vec![0.5] };
        assert_eq!(s.to_value().to_json(), "{\"a\":1,\"b\":[0.5]}");
    }
}
