//! Execution tracing end to end: run a query with a recording sink, then
//! export the event stream as JSONL and as Chrome trace-event JSON
//! (loadable in `chrome://tracing` / Perfetto).
//!
//! Run with: `cargo run --release --example trace_export [out_dir]`

use lqs::prelude::*;

fn main() {
    let mut orders = Table::new(
        "orders",
        Schema::new(vec![
            Column::new("cust", DataType::Int),
            Column::new("amount", DataType::Int),
        ]),
    );
    for i in 0..20_000i64 {
        orders
            .insert(vec![Value::Int(i % 500), Value::Int(i % 997)])
            .unwrap();
    }
    let mut cust = Table::new(
        "customers",
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("segment", DataType::Int),
        ]),
    );
    for i in 0..500i64 {
        cust.insert(vec![Value::Int(i), Value::Int(i % 7)]).unwrap();
    }
    let mut db = Database::new();
    let orders = db.add_table_analyzed(orders);
    let cust = db.add_table_analyzed(cust);

    let mut b = PlanBuilder::new(&db);
    let c = b.table_scan(cust);
    let o = b.table_scan_filtered(orders, Expr::col(1).lt(Expr::lit(800i64)), true);
    let join = b.hash_join(JoinKind::Inner, c, o, vec![0], vec![0]);
    let agg = b.hash_aggregate(join, vec![1], vec![Aggregate::of_col(AggFunc::Sum, 3)]);
    let sort = b.sort(agg, vec![SortKey::desc(1)]);
    let plan = b.finish(sort);

    let sink = RingBufferSink::new(1 << 16);
    let run = execute_traced(&db, &plan, &ExecOptions::default(), &sink);
    let events = sink.into_events();
    let names = plan_node_names(&plan);
    println!(
        "traced {} events over {} snapshots ({} rows returned)",
        events.len(),
        run.snapshots.len(),
        run.rows_returned
    );

    let out_dir = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    let jsonl_path = format!("{out_dir}/trace.jsonl");
    let chrome_path = format!("{out_dir}/trace.chrome.json");
    std::fs::write(&jsonl_path, to_jsonl(&events, &names)).expect("write jsonl");
    std::fs::write(&chrome_path, to_chrome_trace(&events, &names)).expect("write chrome trace");
    println!("wrote {jsonl_path} and {chrome_path}");
}
