//! Batch-mode progress (§4.7): for columnstore pipelines the GetNext model
//! breaks down (operators process whole segments at a time), so LQS bases
//! progress on the fraction of column segments processed, with totals drawn
//! from the `sys.column_store_segments` analog.
//!
//! Run with: `cargo run --release --example columnstore_progress`

use lqs::prelude::*;
use lqs::workloads::{tpch, PhysicalDesign, WorkloadScale};

fn main() {
    let scale = WorkloadScale {
        data_scale: 1.0,
        query_limit: usize::MAX,
        seed: 42,
    };
    let t = tpch::build_db(scale, PhysicalDesign::Columnstore);

    // The simulated sys.column_store_segments DMV.
    let segs = t.db.column_store_segments();
    println!("sys.column_store_segments ({} rows):", segs.len());
    let mut per_table = std::collections::BTreeMap::new();
    for r in &segs {
        *per_table
            .entry(t.db.table(r.table).name().to_string())
            .or_insert(0usize) += 1;
    }
    for (table, n) in &per_table {
        println!("  {table:<12} {n:>4} segments");
    }

    // TPC-H Q1 over the columnstore design: a batch-mode scan + aggregate.
    let queries = tpch::queries(&t);
    let q = queries.iter().find(|q| q.name == "tpch-q01").expect("q01");
    println!("\nplan:\n{}", q.plan.display_tree());

    let run = execute(&t.db, &q.plan, &ExecOptions::default());
    let estimator = ProgressEstimator::new(&q.plan, &t.db, EstimatorConfig::full());
    // The scan is the leaf of the plan.
    let scan = q
        .plan
        .nodes()
        .iter()
        .find(|n| matches!(n.op, PhysicalOp::ColumnstoreScan { .. }))
        .expect("columnstore scan")
        .id;

    println!(
        "{:>6} {:>22} {:>16} {:>14}",
        "time", "segments processed", "scan progress", "query progress"
    );
    for i in (0..run.snapshots.len()).step_by((run.snapshots.len() / 12).max(1)) {
        let s = &run.snapshots[i];
        let report = estimator.estimate(s);
        println!(
            "{:>5.0}% {:>22} {:>15.1}% {:>13.1}%",
            run.time_fraction(s) * 100.0,
            s.node(scan.0).segments_processed,
            report.nodes[scan.0].progress * 100.0,
            report.query_progress * 100.0
        );
    }
    println!(
        "\nnote: scan progress advances in segment-sized steps — the batch-mode\n\
         granularity the paper's §4.7 technique works at."
    );
}
