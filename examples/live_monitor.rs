//! Live Query Statistics, terminal edition: renders the information of the
//! paper's Figures 2–4 as text — the plan tree with a per-operator progress
//! bar, elapsed time, rows-so-far vs estimate, and pipeline activity
//! (completed / executing / not started), sampled as the query "runs".
//!
//! Run with: `cargo run --release --example live_monitor`

use lqs::exec::{DmvSnapshot, QueryRun};
use lqs::plan::{NodeId, PhysicalPlan, PipelineSet};
use lqs::prelude::*;
use lqs::workloads::{tpch, PhysicalDesign, WorkloadScale};

fn bar(p: f64, width: usize) -> String {
    let filled = (p * width as f64).round() as usize;
    format!(
        "[{}{}]",
        "#".repeat(filled.min(width)),
        "-".repeat(width.saturating_sub(filled))
    )
}

fn render(
    plan: &PhysicalPlan,
    pipes: &PipelineSet,
    run: &QueryRun,
    s: &DmvSnapshot,
    report: &lqs::progress::ProgressReport,
    node: NodeId,
    depth: usize,
) {
    let n = plan.node(node);
    let np = &report.nodes[node.0];
    let c = s.node(node.0);
    let status = if c.is_closed() {
        "done   "
    } else if c.is_open() {
        "running"
    } else {
        "waiting"
    };
    let elapsed_ms = match (c.open_ns, c.close_ns) {
        (Some(o), Some(cl)) => (cl - o) as f64 / 1e6,
        (Some(o), None) => (s.ts_ns.saturating_sub(o)) as f64 / 1e6,
        _ => 0.0,
    };
    println!(
        "{:indent$}{:<30} {} {:>5.1}%  {:>8} rows of {:<8} est={:<8} {:>7.1}ms  {}  P{}",
        "",
        n.op.display_name(),
        bar(np.progress, 16),
        np.progress * 100.0,
        c.rows_output,
        format!("{:.0}", run.true_n(node.0)),
        format!("{:.0}", np.refined_n),
        elapsed_ms,
        status,
        pipes.pipeline_of(node).0,
        indent = depth * 2
    );
    for &ch in &n.children {
        render(plan, pipes, run, s, report, ch, depth + 1);
    }
}

fn main() {
    let scale = WorkloadScale {
        data_scale: 0.5,
        query_limit: usize::MAX,
        seed: 42,
    };
    let t = tpch::build_db(scale, PhysicalDesign::RowStore);
    let queries = tpch::queries(&t);
    // TPC-H Q1, the query shown in the paper's Figure 2.
    let q = queries.iter().find(|q| q.name == "tpch-q01").expect("q01");
    let run = execute(&t.db, &q.plan, &ExecOptions::default());
    let estimator = ProgressEstimator::new(&q.plan, &t.db, EstimatorConfig::full());
    let pipes = PipelineSet::decompose(&q.plan);

    for frac in [0.05, 0.25, 0.5, 0.75, 0.95] {
        let i = ((run.snapshots.len() as f64 * frac) as usize).min(run.snapshots.len() - 1);
        let s = &run.snapshots[i];
        let report = estimator.estimate(s);
        println!(
            "\n======== {}  |  elapsed {:>6.1} virtual ms  |  overall query progress: {:>5.1}% ========",
            q.name,
            s.ts_ns as f64 / 1e6,
            report.query_progress * 100.0
        );
        render(&q.plan, &pipes, &run, s, &report, q.plan.root(), 0);
        // Pipeline activity summary (the Figure 3 view).
        print!("pipelines: ");
        for p in pipes.pipelines() {
            let any_open = p.nodes.iter().any(|n| s.node(n.0).is_open());
            let all_closed = p.nodes.iter().all(|n| s.node(n.0).is_closed());
            let state = if all_closed {
                "completed"
            } else if any_open {
                "EXECUTING"
            } else {
                "pending"
            };
            print!("P{}={state}  ", p.id.0);
        }
        println!();
    }
}
