//! The paper's motivating DBA scenario (§1): a nested-loops join runs for a
//! long time while its progress estimate stays low; comparing the rows seen
//! so far on the outer side with the optimizer's estimate reveals a
//! cardinality-estimation problem live, mid-query.
//!
//! We engineer exactly that situation: a filter whose predicate is highly
//! correlated (two attributes always equal), which the optimizer's
//! independence assumption underestimates ~100x, feeding the outer side of
//! an index nested-loops join.
//!
//! Run with: `cargo run --release --example troubleshoot_cardinality`

use lqs::prelude::*;

fn main() {
    // orders(id, status_a, status_b, customer): status_a == status_b always,
    // breaking the optimizer's independence assumption.
    let mut orders = Table::new(
        "orders",
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("status_a", DataType::Int),
            Column::new("status_b", DataType::Int),
            Column::new("customer", DataType::Int),
        ]),
    );
    for i in 0..40_000i64 {
        let s = i % 10;
        orders
            .insert(vec![
                Value::Int(i),
                Value::Int(s),
                Value::Int(s),
                Value::Int(i % 2000),
            ])
            .unwrap();
    }
    let mut customers = Table::new(
        "customers",
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("segment", DataType::Int),
        ]),
    );
    for i in 0..2000i64 {
        customers
            .insert(vec![Value::Int(i), Value::Int(i % 7)])
            .unwrap();
    }
    let mut db = Database::new();
    let orders_id = db.add_table_analyzed(orders);
    let customers_id = db.add_table_analyzed(customers);
    let cust_pk = db.create_btree_index("pk_customers", customers_id, vec![0], true);

    // Correlated conjunction: the optimizer multiplies the two ~10%
    // selectivities, estimating ~1% when the true selectivity is 10%.
    let mut b = PlanBuilder::new(&db);
    let pred = Expr::col(1)
        .eq(Expr::lit(3i64))
        .and(Expr::col(2).eq(Expr::lit(3i64)));
    let scan = b.table_scan_filtered(orders_id, pred, true);
    let seek = b.index_seek(cust_pk, SeekRange::eq(vec![SeekKey::OuterRef(3)]));
    let nl = b.nested_loops(JoinKind::Inner, scan, seek, None, 128);
    let agg = b.hash_aggregate(nl, vec![5], vec![Aggregate::count_star()]);
    let plan = b.finish(agg);

    println!(
        "plan (note the optimizer's estimate at the scan):\n{}",
        plan.display_tree()
    );

    let run = execute(&db, &plan, &ExecOptions::default());
    let naive = ProgressEstimator::new(&plan, &db, EstimatorConfig::tgn());
    let lqs = ProgressEstimator::new(&plan, &db, EstimatorConfig::full());

    let scan_est = plan.node(scan).est_total_rows();
    println!("optimizer estimate for the filtered scan: {scan_est:.0} rows");
    println!(
        "true cardinality                        : {:.0} rows\n",
        run.true_n(scan.0)
    );

    println!(
        "{:>6} {:>14} {:>16} {:>16} {:>18}",
        "time", "scan rows", "naive progress", "LQS progress", "LQS refined-N(scan)"
    );
    let mut alerted = false;
    for i in (0..run.snapshots.len()).step_by((run.snapshots.len() / 12).max(1)) {
        let s = &run.snapshots[i];
        let rn = naive.estimate(s);
        let rl = lqs.estimate(s);
        let k_scan = s.node(scan.0).rows_output;
        println!(
            "{:>5.0}% {:>14} {:>15.1}% {:>15.1}% {:>18.0}",
            run.time_fraction(s) * 100.0,
            k_scan,
            rn.query_progress * 100.0,
            rl.query_progress * 100.0,
            rl.nodes[scan.0].refined_n,
        );
        // The DBA moment: rows observed on the outer side already exceed the
        // optimizer's *total* estimate while the join is far from done.
        if !alerted && (k_scan as f64) > scan_est && rl.query_progress < 0.8 {
            alerted = true;
            println!(
                "        ^^^ rows seen ({k_scan}) already exceed the optimizer estimate ({scan_est:.0})"
            );
            println!("            -> cardinality estimation problem detected mid-query (paper §1)");
        }
    }
    assert!(alerted, "the misestimate should be observable mid-query");
}
