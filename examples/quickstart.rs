//! Quickstart: build a database, author a plan, execute it on the virtual
//! clock, and replay its DMV snapshots through the LQS progress estimator.
//!
//! Run with: `cargo run --release --example quickstart`

use lqs::prelude::*;

fn main() {
    // 1. A small orders table.
    let mut table = Table::new(
        "orders",
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("customer", DataType::Int),
            Column::new("amount", DataType::Int),
        ]),
    );
    for i in 0..50_000i64 {
        table
            .insert(vec![
                Value::Int(i),
                Value::Int((i * i) % 1000), // skewed customer ids
                Value::Int(i % 500),
            ])
            .unwrap();
    }
    let mut db = Database::new();
    let orders = db.add_table_analyzed(table);

    // 2. A plan: filtered scan → hash aggregate → sort. (Like the real LQS
    //    client, the estimator works from compiled plans, not SQL.)
    let mut b = PlanBuilder::new(&db);
    let scan = b.table_scan_filtered(orders, Expr::col(2).lt(Expr::lit(400i64)), true);
    let agg = b.hash_aggregate(
        scan,
        vec![1],
        vec![Aggregate::of_col(AggFunc::Sum, 2), Aggregate::count_star()],
    );
    let sort = b.sort(agg, vec![SortKey::desc(1)]);
    let plan = b.finish(sort);
    println!("plan:\n{}", plan.display_tree());

    // 3. Execute. The engine charges deterministic virtual time and records
    //    a DMV snapshot trace (the analog of polling
    //    sys.dm_exec_query_profiles every 500 ms).
    let run = execute(&db, &plan, &ExecOptions::default());
    println!(
        "executed: {} rows returned, {:.2} virtual ms, {} DMV snapshots\n",
        run.rows_returned,
        run.duration_ns as f64 / 1e6,
        run.snapshots.len()
    );

    // 4. Replay snapshots through the estimator, as the SSMS client would.
    let estimator = ProgressEstimator::new(&plan, &db, EstimatorConfig::full());
    println!("{:>8} {:>10} {:>10}", "time", "estimate", "true");
    for i in (0..run.snapshots.len()).step_by((run.snapshots.len() / 10).max(1)) {
        let s = &run.snapshots[i];
        let report = estimator.estimate(s);
        println!(
            "{:>7.0}% {:>9.1}% {:>9.1}%",
            run.time_fraction(s) * 100.0,
            report.query_progress * 100.0,
            run.time_fraction(s) * 100.0
        );
    }

    // 5. Per-operator progress at the midpoint (Equation 1 of the paper).
    let mid = &run.snapshots[run.snapshots.len() / 2];
    let report = estimator.estimate(mid);
    println!("\nper-operator progress at t=50%:");
    for np in &report.nodes {
        println!(
            "  {:<28} {:>6.1}%   (k={:.0}, N-est={:.0})",
            np.name,
            np.progress * 100.0,
            np.k,
            np.refined_n
        );
    }
}
